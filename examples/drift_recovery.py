"""Drift detection and recovery: the temporal allocator at work.

Runs DaCapo-Spatiotemporal and DaCapo-Spatial side by side on a scenario
with geometry drifts and shows how the temporal policy -- drift detection,
buffer reset, and escalated labeling (Nl -> Nldd) -- speeds up recovery.

Run:
    python examples/drift_recovery.py
"""

import numpy as np

from repro.core import build_system, run_on_scenario
from repro.data import build_scenario


def main() -> None:
    duration = 600.0
    stream = build_scenario("S5", duration_s=duration)
    print(f"scenario S5: {len(stream.segments)} segments, "
          f"drifts at {[f'{t:.0f}s' for t in stream.drift_times()]}")

    results = {}
    for name in ("DaCapo-Spatial", "DaCapo-Spatiotemporal"):
        system = build_system(name, "resnet18_wrn50")
        results[name] = run_on_scenario(system, stream, seed=0)

    st = results["DaCapo-Spatiotemporal"]
    sp = results["DaCapo-Spatial"]

    print(f"\nDaCapo-Spatial:        {sp.average_accuracy():.3f}")
    print(f"DaCapo-Spatiotemporal: {st.average_accuracy():.3f}")
    print(f"drifts detected by the temporal allocator: "
          f"{[f'{t:.0f}s' for t in st.drift_detections()]}")

    # Compare the accuracy trajectories around every detected drift.
    starts, st_series = st.accuracy_series(window_s=15.0)
    _, sp_series = sp.accuracy_series(window_s=15.0)
    gain = st_series - sp_series

    print("\ntime     spatial  spatiotemporal  gain")
    for t, a, b, g in zip(starts, sp_series, st_series, gain):
        marker = ""
        if any(abs(t - d) < 30 for d in stream.drift_times()):
            marker = "  <-- near drift"
        print(f"{t:6.0f}s   {a:.3f}       {b:.3f}      {g:+.3f}{marker}")

    best = int(np.argmax(gain))
    print(
        f"\nlargest recovery gain: +{gain[best]:.3f} in the window at "
        f"{starts[best]:.0f}s"
    )

    # The escalation is visible in the phase trace: labeling phases right
    # after a detection carry Nldd - Nl extra samples.
    escalations = [
        p for p in st.phases
        if p.kind.value == "label" and p.samples > st.config.num_label
    ]
    print(f"escalated labeling phases (Nldd bursts): {len(escalations)}")


if __name__ == "__main__":
    main()
