"""Spatial allocation explorer: sweep the T-SA/B-SA row split.

For each student model, sweeps every possible partition of the 16x16 DPE
array and reports the three kernel rates, marking the split the offline
spatial allocator picks (minimum rows for B-SA to hold 30 FPS, everything
else to T-SA).

Run:
    python examples/partition_sweep.py
"""

from repro.accelerator import AcceleratorSimulator, SystolicArray
from repro.core.spatial import allocate_partition
from repro.models import MODEL_PAIRS, get_model
from repro.mx import MX6, MX9

FRAME_RATE = 30.0


def main() -> None:
    array = SystolicArray()
    sim = AcceleratorSimulator()

    for pair in MODEL_PAIRS.values():
        student = get_model(pair.student)
        teacher = get_model(pair.teacher)
        chosen = allocate_partition(array, student, FRAME_RATE)

        print(f"\n=== pair {pair.name}: student {pair.student}, "
              f"teacher {pair.teacher}")
        print("rows_bsa | infer_fps | ok?  | label_sps (T-SA) | train_sps (T-SA)")
        for rows_bsa in range(1, array.rows):
            tsa, bsa = array.split(array.rows - rows_bsa)
            fps = sim.inference_throughput(student, MX6, bsa, batch=1)
            label = sim.inference_throughput(teacher, MX6, tsa, batch=8)
            train = sim.training_throughput(student, MX9, tsa, batch=16)
            mark = " <-- allocator" if rows_bsa == chosen.rows_bsa else ""
            ok = "yes" if fps >= FRAME_RATE else "no"
            print(
                f"{rows_bsa:8d} | {fps:9.1f} | {ok:4s} | {label:16.1f} | "
                f"{train:11.1f}{mark}"
            )
        print(f"allocator decision: {chosen.describe()}")


if __name__ == "__main__":
    main()
