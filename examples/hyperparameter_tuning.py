"""Offline hyperparameter tuning (paper section VI-D).

The paper tunes the resource-allocation hyperparameters once per
autonomous system by exhaustive offline search.  This example runs a small
search for one model pair on two calibration scenarios and reports the
ranked outcomes.

Run:
    python examples/hyperparameter_tuning.py
"""

from repro.core.tuning import tune_hyperparameters


def main() -> None:
    outcome = tune_hyperparameters(
        "resnet18_wrn50",
        scenarios=("S3", "S5"),
        search_space={
            "num_label": (256, 384),
            "drift_threshold": (-0.12, -0.08, -0.05),
        },
        duration_s=240.0,
    )

    print("ranked configurations (mean accuracy over S3+S5):")
    for config, score in outcome.trials:
        print(
            f"  Nl={config.num_label:4d}  Vthr={config.drift_threshold:+.2f}"
            f"  -> {score:.3f}"
        )
    best = outcome.best
    print(
        f"\nchosen: Nl={best.num_label}, Vthr={best.drift_threshold} "
        f"(score {outcome.best_score:.3f})"
    )
    print(
        "The paper reports the tuned settings are robust across scenarios; "
        "re-run with other calibration scenarios to check."
    )


if __name__ == "__main__":
    main()
