"""Quickstart: run DaCapo on a drifting driving scenario.

Builds the full stack -- scenario stream, spatial allocation, student and
teacher proxies, the spatiotemporal scheduler -- runs a five-minute stream,
and prints what happened.

Run:
    python examples/quickstart.py
"""

from repro.core import build_system, run_on_scenario
from repro.core.phases import PhaseKind


def main() -> None:
    # "S5" drifts label distribution, time of day, and location (Table II).
    system = build_system("DaCapo-Spatiotemporal", "resnet18_wrn50")
    print(f"spatial allocation: {system.platform.partition.describe()}")
    print(
        f"inference: {system.inference_fps:.1f} FPS on B-SA "
        f"(stream is 30 FPS)"
    )
    print(
        f"T-SA rates: labeling {system.labeling_sps():.1f} samples/s, "
        f"retraining {system.training_sps():.1f} samples/s"
    )

    result = run_on_scenario(system, "S5", seed=0, duration_s=300)

    print(f"\naverage accuracy: {result.average_accuracy():.3f}")
    print(f"frame drops:      {result.frame_drop_rate:.1%}")
    print(f"energy:           {result.energy_j:.1f} J "
          f"({result.average_power_w:.3f} W)")
    retrain, label = result.retrain_label_ratio()
    print(f"T-SA time split:  {retrain:.0%} retraining / {label:.0%} labeling")

    print("\nphase trace (first 12 phases):")
    for phase in result.phases[:12]:
        drift = "  <-- drift detected" if phase.drift_detected else ""
        print(
            f"  {phase.start_s:6.1f}s - {phase.end_s:6.1f}s  "
            f"{phase.kind.value:8s} {phase.samples:5d} samples{drift}"
        )

    starts, series = result.accuracy_series(window_s=15.0)
    print("\naccuracy over time (15 s windows):")
    for t, acc in zip(starts, series):
        bar = "#" * int(acc * 40)
        print(f"  {t:6.0f}s  {acc:.2f} {bar}")


if __name__ == "__main__":
    main()
