"""Energy budgeting for a battery-operated autonomous system.

Compares the energy a 20-minute continuous-learning mission costs on each
platform and translates it into battery life -- the deployment argument
behind the paper's 254x power-ratio headline.

Run:
    python examples/energy_budget.py
"""

from repro.core import build_system, run_on_scenario
from repro.platform import EnergyAccount, energy_ratio

MISSION_S = 1200.0
BATTERY_WH = 100.0  # a typical small-UAV battery


def main() -> None:
    systems = {
        "OrinLow-Ekya": "OrinLow-Ekya",
        "OrinHigh-Ekya": "OrinHigh-Ekya",
        "DaCapo-Spatiotemporal": "DaCapo-Spatiotemporal",
    }
    accounts = {}
    print(f"20-minute mission on scenario S5 ({BATTERY_WH:.0f} Wh battery)\n")
    print(f"{'system':24s} {'accuracy':>8s} {'power':>9s} {'energy':>10s} "
          f"{'battery life':>13s}")
    for label, name in systems.items():
        system = build_system(name, "resnet18_wrn50")
        result = run_on_scenario(system, "S5", seed=0, duration_s=MISSION_S)
        account = EnergyAccount(label)
        account.record(result.duration_s, result.average_power_w)
        accounts[label] = account
        battery_h = BATTERY_WH / result.average_power_w
        print(
            f"{label:24s} {result.average_accuracy():8.3f} "
            f"{result.average_power_w:8.2f}W {account.energy_j:9.0f}J "
            f"{battery_h:12.1f}h"
        )

    ratio = energy_ratio(
        accounts["OrinHigh-Ekya"], accounts["DaCapo-Spatiotemporal"]
    )
    print(f"\nOrinHigh uses {ratio:.0f}x more energy than DaCapo "
          f"(paper: 254x)")


if __name__ == "__main__":
    main()
