"""Figure 10 benchmark: accuracy over time and the drift-case zooms.

Shape assertions: DaCapo-Spatiotemporal's mean tracks at or above
DaCapo-Spatial's; EOMU retrains more often than Ekya; there exist windows
where Spatiotemporal leads Spatial substantially (drift recovery) --
and typically also windows where it trails (the paper's suboptimal cases).
"""

import numpy as np

from repro.experiments import run_fig10


def test_fig10(benchmark, save_report, bench_duration):
    result = benchmark.pedantic(
        run_fig10, kwargs={"duration_s": bench_duration},
        rounds=1, iterations=1,
    )
    save_report(result)

    by_key = {(r["pair"], r["system"]): r for r in result.rows}
    for pair in ("resnet18_wrn50", "resnet34_wrn101"):
        st = by_key[(pair, "DaCapo-Spatiotemporal")]
        sp = by_key[(pair, "DaCapo-Spatial")]
        ekya = by_key[(pair, "OrinHigh-Ekya")]
        eomu = by_key[(pair, "OrinHigh-EOMU")]

        assert st["mean_acc"] >= sp["mean_acc"] - 0.01
        assert eomu["retrainings"] > ekya["retrainings"]

        series = result.extras["series"][pair]
        gain = np.asarray(series["DaCapo-Spatiotemporal"]) - np.asarray(
            series["DaCapo-Spatial"]
        )
        assert gain.max() > 0.05  # clear drift-recovery wins exist
