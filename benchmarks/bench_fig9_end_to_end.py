"""Figure 9 benchmark: the headline end-to-end accuracy matrix.

Shape assertions (the paper's qualitative claims):

- DaCapo-Spatiotemporal posts the best gmean for every model pair;
- OrinLow-Ekya never posts the best gmean;
- DaCapo-Ekya trails the partitioned DaCapo variants on the ViT pair
  (precision sensitivity, section VII-B);
- the geometry-drifting scenarios (S3-S6) separate systems more than the
  label-only ones (S1-S2).
"""

from repro.experiments import run_fig9
from repro.experiments.fig9 import FIG9_PAIRS, FIG9_SYSTEMS


def test_fig9(benchmark, save_report, bench_duration):
    result = benchmark.pedantic(
        run_fig9, kwargs={"duration_s": bench_duration},
        rounds=1, iterations=1,
    )
    save_report(result)
    gmeans = {
        (row["pair"], row["system"]): row["gmean"] for row in result.rows
    }

    for pair in FIG9_PAIRS:
        ranked = sorted(
            FIG9_SYSTEMS, key=lambda s: gmeans[(pair, s)], reverse=True
        )
        assert ranked[0] == "DaCapo-Spatiotemporal", (pair, ranked)
        assert ranked[-1] in ("OrinLow-Ekya", "DaCapo-Ekya"), (pair, ranked)

    # ViT precision sensitivity: time-shared DaCapo (all-MX execution,
    # no dedicated partition) loses to the spatial variants.
    assert (
        gmeans[("vit_b32_b16", "DaCapo-Ekya")]
        < gmeans[("vit_b32_b16", "DaCapo-Spatial")]
    )

    # Drift-heavy scenarios separate systems more than label-only ones.
    for row in result.rows:
        if row["system"] == "DaCapo-Spatiotemporal":
            assert min(row["S1"], row["S2"]) > min(row["S4"], row["S5"])
