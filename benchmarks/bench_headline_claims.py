"""Headline-claims benchmark: accuracy gains and the 254x power ratio."""

import pytest

from repro.experiments import run_headline


def test_headline(benchmark, save_report, bench_duration):
    result = benchmark.pedantic(
        run_headline, kwargs={"duration_s": bench_duration},
        rounds=1, iterations=1,
    )
    save_report(result)
    # Accuracy: DaCapo-Spatiotemporal leads both GPU baselines overall.
    assert result.extras["dacapo"] > result.extras["ekya"]
    assert result.extras["dacapo"] > result.extras["eomu"]
    # Power: the 254x ratio is exact (Table IV).
    assert result.extras["ratio_high"] == pytest.approx(254, rel=0.01)
