"""Ablation benchmark: array scaling and chiplet packaging (section VII-A)."""

from repro.experiments import run_ablation_scaling


def test_ablation_scaling(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_scaling, rounds=1, iterations=1)
    save_report(result)
    by_config = {r["config"]: r for r in result.rows}

    proto = by_config["16x16 (prototype)"]
    big = by_config["32x32"]
    # More DPEs mean more throughput and more power, sub-linearly on the
    # throughput side (tiling skew + memory roofline).
    assert big["training_sps"] > 2 * proto["training_sps"]
    assert big["power_w"] > 2 * proto["power_w"]
    assert big["inference_fps"] < 4 * proto["inference_fps"]

    # Chiplets: linear power, near-linear throughput with coordination loss.
    quad = by_config["4x 16x16 chiplets"]
    assert quad["power_w"] == 4 * proto["power_w"]
    assert quad["training_sps"] < 4 * proto["training_sps"]
    assert quad["training_sps"] > 3 * proto["training_sps"]
