"""Hot-path performance benchmark: the PR-over-PR perf trajectory tracker.

Times the three layers the perf overhaul targets -- the MX quantization
kernel, the SGD training loop, the accelerator timing queries -- plus an
end-to-end short Figure 9 cell and the parallel runner's scaling, and
writes everything to ``benchmarks/results/BENCH_perf_hotpaths.json`` so
future PRs can diff absolute numbers.

``seed_reference`` holds wall times measured on the unoptimized seed tree
(commit 8ebcf26) on the reference machine; the end-to-end assertions
compare against it.  Re-measure and update it if the substrate changes
machines.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_hotpaths.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

import repro.learn.student as student_mod
import repro.learn.teacher as teacher_mod
from repro.accelerator import (
    AcceleratorSimulator,
    SystolicArray,
    clear_timing_caches,
)
from repro.core import SystemCell, build_system, run_cells, run_on_scenario, warm_model_caches
from repro.learn import MLPClassifier
from repro.learn.train import TrainConfig, train_sgd
from repro.models.zoo import get_model
from repro.mx import MX6, MX9, quantize

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_perf_hotpaths.json"

#: Wall times of the same workloads on the seed tree (single core).
SEED_REFERENCE = {
    "fig9_cell_s": 3.15,  # build_system + 1200 s DaCapo-Spatiotemporal/S4
    "fig9_cell_run_s": 1.36,  # the run_on_scenario part alone
}

#: The short end-to-end cell every measurement uses.
CELL = dict(
    system="DaCapo-Spatiotemporal",
    pair="resnet18_wrn50",
    scenario="S4",
    duration_s=1200.0,
)

PARALLEL_GRID_SYSTEMS = (
    "OrinLow-Ekya",
    "OrinHigh-Ekya",
    "OrinHigh-EOMU",
    "DaCapo-Ekya",
    "DaCapo-Spatial",
    "DaCapo-Spatiotemporal",
)
PARALLEL_GRID_SCENARIOS = ("S1", "S4")


def _best_of(fn, repeats=5):
    """Best wall time of ``repeats`` runs (least noisy for short kernels)."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _clear_process_caches():
    """Reset every in-process memo so a cell pays its full cold cost."""
    student_mod._pretrained_mlp.cache_clear()
    teacher_mod._pretrained_mlp.cache_clear()
    clear_timing_caches()


def bench_quantize() -> dict:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(256, 1024))
    w = rng.normal(size=(1024, 256))
    t_act = _best_of(lambda: quantize(x, MX6))
    t_w = _best_of(lambda: quantize(w, MX9, axis=0))
    return {
        "activations_mx6_ns_per_elem": t_act / x.size * 1e9,
        "weights_axis0_mx9_ns_per_elem": t_w / w.size * 1e9,
    }


def bench_train_sgd() -> dict:
    rng = np.random.default_rng(1)
    x = rng.normal(size=(512, 64))
    y = rng.integers(0, 10, 512)
    config = TrainConfig(batch_size=16, epochs=3, fmt=MX9)

    def run():
        mlp = MLPClassifier.create(64, (32,), 10, np.random.default_rng(2))
        train_sgd(mlp, x, y, config, np.random.default_rng(3))

    wall = _best_of(run, repeats=3)
    return {
        "mx9_samples_per_s": config.epochs * len(x) / wall,
        "wall_s": wall,
    }


def bench_forward_timing() -> dict:
    sim = AcceleratorSimulator()
    sub = SystolicArray().full()
    model = get_model("resnet18")

    clear_timing_caches()
    t0 = time.perf_counter()
    sim.forward_timing(model, MX6, sub, 1)
    cold = time.perf_counter() - t0
    warm = _best_of(lambda: sim.forward_timing(model, MX6, sub, 1), repeats=20)
    return {"cold_s": cold, "warm_s": warm}


def bench_fig9_cell() -> dict:
    def cell():
        system = build_system(CELL["system"], CELL["pair"], seed=0)
        return run_on_scenario(
            system, CELL["scenario"], seed=0, duration_s=CELL["duration_s"]
        )

    # Populate the on-disk pretrain cache (new in this PR; the seed had
    # none), then drop every in-process memo: "cold" is what a fresh worker
    # process pays per cell on a machine that has run any sweep before.
    cell()
    _clear_process_caches()
    t0 = time.perf_counter()
    cell()
    cold = time.perf_counter() - t0

    # Steady state: pretrained models memoized (as within any sweep).
    t0 = time.perf_counter()
    result = cell()
    warm = time.perf_counter() - t0
    return {
        "cold_s": cold,
        "warm_s": warm,
        "accuracy": result.average_accuracy(),
        "speedup_vs_seed_cold": SEED_REFERENCE["fig9_cell_s"] / cold,
        "speedup_vs_seed_warm_run": SEED_REFERENCE["fig9_cell_run_s"] / warm,
    }


def bench_parallel_scaling() -> dict:
    # Full-length (1200 s) streams: short cells would be dominated by pool
    # startup rather than simulation work.  Several seeds per (system,
    # scenario) pair keep all four workers busy past the skew between the
    # millisecond GPU cells and the ~0.6 s DaCapo cells.
    cells = [
        SystemCell(system, CELL["pair"], scenario, seed, 1200.0)
        for system in PARALLEL_GRID_SYSTEMS
        for scenario in PARALLEL_GRID_SCENARIOS
        for seed in (0, 1)
    ]
    warm_model_caches(cells)
    walls = {}
    for jobs in (1, 2, 4):
        t0 = time.perf_counter()
        run_cells(cells, jobs=jobs)
        walls[jobs] = time.perf_counter() - t0
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return {
        "grid_cells": len(cells),
        "cores": cores,
        "wall_s_by_jobs": {str(j): w for j, w in walls.items()},
        "speedup_2": walls[1] / walls[2],
        "speedup_4": walls[1] / walls[4],
    }


def test_perf_hotpaths():
    report = {
        "seed_reference": SEED_REFERENCE,
        "quantize": bench_quantize(),
        "train_sgd": bench_train_sgd(),
        "forward_timing": bench_forward_timing(),
        "fig9_cell": bench_fig9_cell(),
        "parallel": bench_parallel_scaling(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    # Acceptance: the end-to-end cell is >= 3x the seed on a single core.
    assert report["fig9_cell"]["speedup_vs_seed_cold"] >= 3.0, report
    # The memoized timing layer answers repeat queries effectively for free.
    assert (
        report["forward_timing"]["warm_s"]
        < report["forward_timing"]["cold_s"]
    ), report
    # The parallel runner scales near-linearly in the cores it can use.
    # Wall-clock gains need physical cores: on a single-CPU machine only
    # the pool overhead is checkable (the serial==parallel equivalence is
    # covered by tests/core/test_parallel.py on any machine).
    parallel = report["parallel"]
    for jobs in (2, 4):
        usable = min(jobs, parallel["cores"])
        if usable > 1:
            assert parallel[f"speedup_{jobs}"] > 0.6 * usable, report
        else:
            assert parallel[f"speedup_{jobs}"] > 0.65, report


if __name__ == "__main__":
    test_perf_hotpaths()
    print(OUTPUT.read_text())
