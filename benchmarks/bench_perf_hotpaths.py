"""Hot-path performance benchmark: the PR-over-PR perf trajectory tracker.

Times the layers the perf work targets -- the MX quantization kernel, the
SGD training loop, the accelerator timing queries, stream materialization
(naive vs vectorized vs memmap-open), a shared-stream grid slice vs the
per-cell-materialization baseline, an end-to-end short Figure 9 cell with
its phase-level breakdown, the parallel runner's scaling, and the
float64/float32 numeric-policy A/B (stream bytes, training throughput,
end-to-end cell, subprocess peak RSS) -- and writes everything to
``benchmarks/results/BENCH_perf_hotpaths.json`` (suffixed with the policy
name when run under ``REPRO_DTYPE=float32``) so future PRs can diff
absolute numbers.

``seed_reference`` holds wall times measured on the unoptimized seed tree
(commit 8ebcf26) on the reference machine; the end-to-end assertions
compare against it.  Re-measure and update it if the substrate changes
machines.

``REPRO_BENCH_QUICK=1`` shrinks repeats and the parallel grids for CI
smoke runs (same JSON schema, noisier numbers).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_hotpaths.py -q
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import repro.learn.student as student_mod
import repro.learn.teacher as teacher_mod
from repro import profiling
from repro.numeric import active_policy, use_policy
from repro.accelerator import (
    AcceleratorSimulator,
    SystolicArray,
    clear_timing_caches,
)
from repro.core import (
    SystemCell,
    build_system,
    default_jobs,
    run_cells,
    run_on_scenario,
    warm_model_caches,
)
from repro.data import build_scenario, caching_disabled, get_store
from repro.data.stream import FrameWindow
from repro.learn import MLPClassifier
from repro.learn.train import TrainConfig, train_sgd
from repro.models.zoo import get_model
from repro.mx import MX6, MX9, quantize

RESULTS_DIR = Path(__file__).parent / "results"


def _output_path() -> Path:
    """Per-policy JSON so the float32 CI leg never clobbers the default."""
    policy = active_policy()
    suffix = "" if policy.name == "float64" else f"_{policy.name}"
    return RESULTS_DIR / f"BENCH_perf_hotpaths{suffix}.json"


OUTPUT = _output_path()

#: CI smoke mode: fewer repeats, smaller grids, same JSON schema.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

#: Wall times of the same workloads on the seed tree (single core).
SEED_REFERENCE = {
    "fig9_cell_s": 3.15,  # build_system + 1200 s DaCapo-Spatiotemporal/S4
    "fig9_cell_run_s": 1.36,  # the run_on_scenario part alone
}

#: The short end-to-end cell every measurement uses.
CELL = dict(
    system="DaCapo-Spatiotemporal",
    pair="resnet18_wrn50",
    scenario="S4",
    duration_s=1200.0,
)

PARALLEL_GRID_SYSTEMS = (
    "OrinLow-Ekya",
    "OrinHigh-Ekya",
    "OrinHigh-EOMU",
    "DaCapo-Ekya",
    "DaCapo-Spatial",
    "DaCapo-Spatiotemporal",
)
# Two scenarios even in quick mode: with one stream signature the sharded
# runner's jobs=2 split is forced to divide a single scenario's systems,
# whereas two signatures split into identically composed (balanced) shards.
PARALLEL_GRID_SCENARIOS = ("S1", "S4")
PARALLEL_GRID_SEEDS = (0,) if QUICK else (0, 1)
PARALLEL_JOBS = (1, 2) if QUICK else (1, 2, 4)


def _best_of(fn, repeats=5):
    """Best wall time of ``repeats`` runs (least noisy for short kernels)."""
    if QUICK:
        repeats = min(repeats, 2)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _clear_process_caches():
    """Reset every in-process memo so a cell pays its full cold cost."""
    student_mod._pretrained_mlp.cache_clear()
    teacher_mod._pretrained_mlp.cache_clear()
    clear_timing_caches()
    get_store().clear()


def bench_quantize() -> dict:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(256, 1024))
    w = rng.normal(size=(1024, 256))
    t_act = _best_of(lambda: quantize(x, MX6))
    t_w = _best_of(lambda: quantize(w, MX9, axis=0))
    return {
        "activations_mx6_ns_per_elem": t_act / x.size * 1e9,
        "weights_axis0_mx9_ns_per_elem": t_w / w.size * 1e9,
    }


def bench_train_sgd() -> dict:
    rng = np.random.default_rng(1)
    x = rng.normal(size=(512, 64))
    y = rng.integers(0, 10, 512)
    config = TrainConfig(batch_size=16, epochs=3, fmt=MX9)

    def run():
        mlp = MLPClassifier.create(64, (32,), 10, np.random.default_rng(2))
        train_sgd(mlp, x, y, config, np.random.default_rng(3))

    wall = _best_of(run, repeats=3)
    return {
        "mx9_samples_per_s": config.epochs * len(x) / wall,
        "wall_s": wall,
    }


def bench_forward_timing() -> dict:
    sim = AcceleratorSimulator()
    sub = SystolicArray().full()
    model = get_model("resnet18")

    clear_timing_caches()
    t0 = time.perf_counter()
    sim.forward_timing(model, MX6, sub, 1)
    cold = time.perf_counter() - t0
    warm = _best_of(lambda: sim.forward_timing(model, MX6, sub, 1), repeats=20)
    return {"cold_s": cold, "warm_s": warm}


def _naive_materialize(stream, seed: int) -> FrameWindow:
    """The seed tree's generator: per-segment lists + a final concatenate."""
    model = stream.model
    features, labels, times = [], [], []
    start = 0.0
    for index, segment in enumerate(stream.segments):
        count = int(round(segment.duration_s * stream.fps))
        rng = np.random.default_rng((seed, index))
        priors = model.class_priors(segment.domain)
        y = rng.choice(model.num_classes, size=count, p=priors)
        noise = rng.normal(
            scale=model.sigma(segment.domain),
            size=(count, model.feature_dim),
        )
        x = model.class_means(segment.domain)[y] + noise
        t = start + np.arange(count) / stream.fps
        features.append(x)
        labels.append(y)
        times.append(t)
        start += segment.duration_s
    return FrameWindow(
        np.concatenate(features),
        np.concatenate(labels),
        np.concatenate(times),
    )


def bench_materialize() -> dict:
    """Single-stream generation: naive vs vectorized vs memmap reopen."""
    stream = build_scenario(CELL["scenario"], duration_s=CELL["duration_s"])
    seed = 0

    naive = _naive_materialize(stream, seed)
    vectorized = stream.generate(seed)
    # The naive reference generator always draws float64; under float32
    # the vectorized stream is those same draws rounded once, so the
    # comparison is exact at float64 and approximate (post-cast allclose)
    # at float32 -- the JSON records which mode was used so "matched"
    # never overstates what was checked.
    if vectorized.features.dtype == np.float64:
        comparison = "exact"
        features_match = np.array_equal(naive.features, vectorized.features)
    else:
        comparison = "allclose_1e-5_vs_float64_cast"
        features_match = np.allclose(
            vectorized.features,
            naive.features.astype(vectorized.features.dtype),
            rtol=1e-5, atol=1e-5,
        )
    matches_reference = (
        features_match
        and np.array_equal(naive.labels, vectorized.labels)
        and np.array_equal(naive.times, vectorized.times)
    )

    t_naive = _best_of(lambda: _naive_materialize(stream, seed))
    t_vectorized = _best_of(lambda: stream.generate(seed))

    # Warm memmap open from the disk tier (a fresh process's cost).
    stream.materialize(seed)

    def reopen():
        get_store().clear()
        return stream.materialize(seed)

    t_memmap_open = _best_of(reopen)
    is_memmap = isinstance(reopen().features, np.memmap)

    return {
        "frames": stream.num_frames,
        "naive_ms": t_naive * 1e3,
        "vectorized_ms": t_vectorized * 1e3,
        "memmap_open_ms": t_memmap_open * 1e3,
        "vectorized_speedup": t_naive / t_vectorized,
        "memmap_backed": is_memmap,
        "reference_match": matches_reference,
        "reference_comparison": comparison,
    }


def bench_shared_grid() -> dict:
    """A fig9 grid slice: shared-stream substrate vs per-cell baseline.

    The baseline regenerates the stream for every cell (the pre-substrate
    behavior, forced via ``caching_disabled``); the shared runs hit the
    artifact store, serially and -- when the machine has the cores -- on the
    sharded parallel runner.
    """
    cells = [
        SystemCell(system, CELL["pair"], scenario, 0, CELL["duration_s"])
        for scenario in PARALLEL_GRID_SCENARIOS
        for system in PARALLEL_GRID_SYSTEMS
    ]
    warm_model_caches(cells)
    cores = default_jobs()

    def timed(fn):
        best, outputs = float("inf"), None
        for _ in range(1 if QUICK else 2):
            t0 = time.perf_counter()
            outputs = fn()
            best = min(best, time.perf_counter() - t0)
        return best, outputs

    def baseline():
        with caching_disabled():
            return run_cells(cells, jobs=1)

    t_baseline, baseline_results = timed(baseline)

    get_store().clear()
    t_shared, shared_results = timed(lambda: run_cells(cells, jobs=1))

    # Sharing must not change a single bit of any cell's outcome.
    for a, b in zip(baseline_results, shared_results):
        assert np.array_equal(a.correct, b.correct), (a.system, a.scenario)
        assert np.array_equal(a.dropped, b.dropped), (a.system, a.scenario)
        assert a.phases == b.phases, (a.system, a.scenario)

    report = {
        "grid_cells": len(cells),
        "cores": cores,
        "per_cell_baseline_s": t_baseline,
        "shared_serial_s": t_shared,
        "serial_shared_speedup": t_baseline / t_shared,
    }
    if cores >= 2:
        jobs = min(4, cores)
        t_sharded, _ = timed(lambda: run_cells(cells, jobs=jobs))
        report["parallel_jobs"] = jobs
        report["shared_parallel_s"] = t_sharded
        report["parallel_speedup_vs_percell_serial"] = t_baseline / t_sharded
    return report


def bench_fig9_cell() -> dict:
    def cell():
        system = build_system(CELL["system"], CELL["pair"], seed=0)
        return run_on_scenario(
            system, CELL["scenario"], seed=0, duration_s=CELL["duration_s"]
        )

    # Populate the on-disk caches (pretrained models + stream), then drop
    # every in-process memo: "cold" is what a fresh worker process pays per
    # cell on a machine that has run any sweep before.
    cell()
    _clear_process_caches()
    t0 = time.perf_counter()
    cell()
    cold = time.perf_counter() - t0

    # Steady state: pretrained models and the stream memoized in-process
    # (as within any sweep), with the phase-level profile attached.
    profiler = profiling.enable()
    t0 = time.perf_counter()
    result = cell()
    warm = time.perf_counter() - t0
    profiling.disable()
    breakdown = profiler.snapshot()

    return {
        "cold_s": cold,
        "warm_s": warm,
        "accuracy": result.average_accuracy(),
        "speedup_vs_seed_cold": SEED_REFERENCE["fig9_cell_s"] / cold,
        "speedup_vs_seed_warm_run": SEED_REFERENCE["fig9_cell_run_s"] / warm,
        "phase_breakdown": breakdown,
        "profiled_share_of_warm": (
            sum(entry["total_s"] for entry in breakdown.values()) / warm
        ),
    }


#: Workload the RSS probe runs in a subprocess (its own address space, so
#: the accounting is per-policy).  Disk caching is off so the streams stay
#: resident instead of memmap-backed.  The probe reports the VmRSS *delta*
#: around materializing a multi-camera set of streams, after a warmed
#: baseline (imports, system build, a short run): the windows are large
#: anonymous mmaps, so the delta attributes cleanly, whereas absolute
#: peak RSS also counts file-backed library pages whose residency swings
#: with the machine's page-cache state (measured: identical peaks for
#: both policies on a warm page cache).
_RSS_PROBE = """
import gc, os
from repro.core import build_system, run_on_scenario
from repro.data import build_scenario

def rss_kib():
    pages = int(open("/proc/self/statm").read().split()[1])
    return pages * os.sysconf("SC_PAGE_SIZE") // 1024

system = build_system("DaCapo-Spatiotemporal", "resnet18_wrn50", seed=0)
run_on_scenario(system, build_scenario("S4", duration_s=60.0), seed=0)
gc.collect()
baseline_kib = rss_kib()

streams = [
    build_scenario(name, duration_s={duration}) for name in ("S1", "S4")
]
windows = [stream.materialize(seed) for stream in streams for seed in (0, 1)]
gc.collect()
print(rss_kib() - baseline_kib)
"""


def _probe_stream_rss_growth(policy_name: str, duration_s: float) -> int:
    """Resident-set growth (KiB) of live streams under one policy."""
    env = dict(os.environ)
    env["REPRO_DTYPE"] = policy_name
    env["REPRO_CACHE_DIR"] = ""  # keep streams in RAM, not memmaps
    out = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE.format(duration=duration_s)],
        env=env, capture_output=True, text=True, check=True,
    )
    return int(out.stdout.strip())


def bench_dtype_ab() -> dict:
    """The float64/float32 A/B: bandwidth and throughput, measured.

    Per policy: raw stream generation (wall + resident bytes), the MX9
    training loop, a warm end-to-end Figure 9 cell, and the subprocess
    peak-RSS probe.  This is what turns the "float32 halves traffic"
    claim from an assertion into a recorded measurement.
    """
    duration_s = 300.0 if QUICK else CELL["duration_s"]
    # A wider proxy than the tiny default so the GEMMs (where float32's
    # SIMD advantage lives) dominate the Python batch loop.
    rng = np.random.default_rng(1)
    x64 = rng.normal(size=(1024, 256))
    y = rng.integers(0, 10, 1024)
    train_config = TrainConfig(batch_size=64, epochs=2, fmt=MX9)

    report: dict = {}
    for policy_name in ("float64", "float32"):
        with use_policy(policy_name):
            stream = build_scenario(CELL["scenario"], duration_s=duration_s)
            window = stream.generate(0)
            stream_bytes = (
                window.features.nbytes
                + window.labels.nbytes
                + window.times.nbytes
            )
            t_generate = _best_of(lambda: stream.generate(0))

            x = x64.astype(window.features.dtype)

            def run_train():
                mlp = MLPClassifier.create(
                    256, (128,), 10, np.random.default_rng(2)
                )
                train_sgd(mlp, x, y, train_config, np.random.default_rng(3))

            t_train = _best_of(run_train, repeats=3)

            _clear_process_caches()

            def cell():
                system = build_system(CELL["system"], CELL["pair"], seed=0)
                return run_on_scenario(
                    system, CELL["scenario"], seed=0, duration_s=duration_s
                )

            cell()  # warm the per-policy caches
            t_cell = _best_of(cell, repeats=2)

            report[policy_name] = {
                "stream_bytes": stream_bytes,
                "generate_ms": t_generate * 1e3,
                "train_sgd_samples_per_s": (
                    train_config.epochs * len(x) / t_train
                ),
                "fig9_cell_warm_s": t_cell,
                "stream_rss_growth_kib": _probe_stream_rss_growth(
                    policy_name, duration_s
                ),
            }

    f64, f32 = report["float64"], report["float32"]
    report["float32_vs_float64"] = {
        "stream_bytes_ratio": f64["stream_bytes"] / f32["stream_bytes"],
        "generate_speedup": f64["generate_ms"] / f32["generate_ms"],
        "train_step_speedup": (
            f32["train_sgd_samples_per_s"] / f64["train_sgd_samples_per_s"]
        ),
        "fig9_cell_speedup": (
            f64["fig9_cell_warm_s"] / f32["fig9_cell_warm_s"]
        ),
        "peak_rss_reduction_kib": (
            f64["stream_rss_growth_kib"] - f32["stream_rss_growth_kib"]
        ),
    }
    return report


def bench_parallel_scaling() -> dict:
    # Full-length (1200 s) streams: short cells would be dominated by pool
    # startup rather than simulation work.  Several seeds per (system,
    # scenario) pair keep all workers busy past the skew between the
    # millisecond GPU cells and the ~0.5 s DaCapo cells.
    cells = [
        SystemCell(system, CELL["pair"], scenario, seed, 1200.0)
        for system in PARALLEL_GRID_SYSTEMS
        for scenario in PARALLEL_GRID_SCENARIOS
        for seed in PARALLEL_GRID_SEEDS
    ]
    warm_model_caches(cells)
    walls = {}
    for jobs in PARALLEL_JOBS:
        t0 = time.perf_counter()
        run_cells(cells, jobs=jobs)
        walls[jobs] = time.perf_counter() - t0
    report = {
        "grid_cells": len(cells),
        "cores": default_jobs(),
        "wall_s_by_jobs": {str(j): w for j, w in walls.items()},
    }
    for jobs in PARALLEL_JOBS[1:]:
        report[f"speedup_{jobs}"] = walls[1] / walls[jobs]
    return report


def test_perf_hotpaths():
    report = {
        "quick_mode": QUICK,
        "numeric_policy": active_policy().name,
        "seed_reference": SEED_REFERENCE,
        "quantize": bench_quantize(),
        "train_sgd": bench_train_sgd(),
        "forward_timing": bench_forward_timing(),
        "materialize": bench_materialize(),
        "shared_grid": bench_shared_grid(),
        "fig9_cell": bench_fig9_cell(),
        "parallel": bench_parallel_scaling(),
        "dtype_ab": bench_dtype_ab(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    # Invariants asserted in every mode: the phase breakdown is present and
    # non-overlapping (sums under wall), the memoized timing layer answers
    # repeat queries faster than cold, and the vectorized generator plus
    # the memmap tier match the naive reference -- bit-exactly at float64,
    # allclose-after-cast at float32, as recorded in reference_comparison
    # (sharing bit-identity is asserted inside bench_shared_grid itself).
    assert report["fig9_cell"]["phase_breakdown"], report
    assert report["fig9_cell"]["profiled_share_of_warm"] <= 1.0, report
    assert (
        report["forward_timing"]["warm_s"]
        < report["forward_timing"]["cold_s"]
    ), report
    materialize = report["materialize"]
    assert materialize["reference_match"], materialize
    assert materialize["memmap_backed"], materialize

    # The dtype A/B must show the structural bandwidth win in every mode:
    # a float32 stream carries close to half the bytes (features halve;
    # int64 labels and float64 timestamps are policy-invariant).
    ab = report["dtype_ab"]["float32_vs_float64"]
    assert ab["stream_bytes_ratio"] > 1.7, report["dtype_ab"]

    if QUICK:
        # CI smoke on shared runners: record the trajectory, skip the
        # wall-clock floors -- 1-2 repeats under noisy neighbors would
        # make unrelated PRs flake.
        return

    # Acceptance: the end-to-end cell is >= 3x the seed on a single core.
    assert report["fig9_cell"]["speedup_vs_seed_cold"] >= 3.0, report
    # The vectorized generator is measurably faster, and the memmap reopen
    # beats regeneration outright.
    assert materialize["vectorized_speedup"] > 1.05, materialize
    assert materialize["memmap_open_ms"] < materialize["vectorized_ms"], (
        materialize
    )
    # The shared-stream grid beats the per-cell-materialization baseline.
    # With >= 3 usable workers the combined sharding + sharing win clears
    # 2x outright; with exactly 2, pool startup on a ~2 s grid caps the
    # theoretical 2.1x, so only a conservative bound is assertable; on a
    # single-core machine only the serial sharing win is measurable.
    shared = report["shared_grid"]
    assert shared["serial_shared_speedup"] > 1.0, shared
    if shared["cores"] >= 2:
        floor = 2.0 if shared["parallel_jobs"] >= 3 else 1.4
        assert shared["parallel_speedup_vs_percell_serial"] >= floor, shared
    # The float32 fast path must out-run float64 where the arithmetic
    # dominates (the MX9 training loop) and shrink the peak footprint of
    # the stream-heavy probe; the end-to-end cell must at least not
    # regress (it amortizes policy-invariant work like RNG and teacher
    # labeling bookkeeping).
    assert ab["train_step_speedup"] > 1.05, report["dtype_ab"]
    assert ab["peak_rss_reduction_kib"] > 0, report["dtype_ab"]
    # The end-to-end cell mixes dtype-sensitive GEMMs with policy-
    # invariant overhead (RNG, scheduling, window bookkeeping), so on a
    # noisy single-core box only a no-regression floor is assertable;
    # the measured ratio is recorded above for the trajectory.
    assert ab["fig9_cell_speedup"] > 0.8, report["dtype_ab"]

    # The parallel runner scales near-linearly in the cores it can use.
    # Wall-clock gains need physical cores: on a single-CPU machine only
    # the pool overhead is checkable (the serial==parallel equivalence is
    # covered by tests/core/test_parallel.py on any machine).
    parallel = report["parallel"]
    for jobs in PARALLEL_JOBS[1:]:
        usable = min(jobs, parallel["cores"])
        if usable > 1:
            assert parallel[f"speedup_{jobs}"] > 0.6 * usable, report
        else:
            assert parallel[f"speedup_{jobs}"] > 0.65, report


if __name__ == "__main__":
    test_perf_hotpaths()
    print(OUTPUT.read_text())
