"""Ablation benchmark: time-sharing vs spatial vs spatiotemporal."""

from repro.experiments import run_ablation_partitioning


def test_ablation_partitioning(benchmark, save_report, bench_duration):
    result = benchmark.pedantic(
        run_ablation_partitioning,
        kwargs={"duration_s": bench_duration},
        rounds=1, iterations=1,
    )
    save_report(result)
    accuracy = {r["system"]: r["accuracy"] for r in result.rows}
    # Each design layer adds accuracy on a drifting scenario.
    assert (
        accuracy["DaCapo-Spatiotemporal"]
        > accuracy["DaCapo-Ekya"] - 0.005
    )
    assert (
        accuracy["DaCapo-Spatiotemporal"] >= accuracy["DaCapo-Spatial"]
    )
