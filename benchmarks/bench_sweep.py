"""Fleet-sweep benchmark: the shipped two-camera smoke spec, both dtypes.

Runs ``examples/fleet_smoke.toml`` (one DaCapo system on two scenario
"cameras" under both numeric policies) through the sweep subsystem with
``--jobs 2`` semantics and emits the machine-readable document as
``benchmarks/results/BENCH_sweep_fleet.json`` -- the artifact CI uploads
alongside the existing bench JSONs.  Shape assertions check the planner's
stream dedup (a fleet shares materializations, it does not multiply them)
and that the aggregate rows round-trip through the JSON emission.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.sweep import compile_plan, load_spec, run_sweep, write_outputs

RESULTS_DIR = Path(__file__).parent / "results"
EXAMPLES = Path(__file__).resolve().parents[1] / "examples"
OUTPUT = RESULTS_DIR / "BENCH_sweep_fleet.json"


def test_fleet_smoke_sweep(save_report):
    spec = load_spec(EXAMPLES / "fleet_smoke.toml")
    plan = compile_plan(spec)
    estimate = plan.estimate(jobs=2)

    # The two-camera fleet: 2 policies x 2 scenarios, one system/pair/seed.
    assert estimate.cells == 4
    # Stream dedup: every cell has its own (policy, scenario, duration)
    # stream here, but the planner prices materialized seconds separately
    # from total seconds so sharing shows up when cells overlap.
    assert estimate.distinct_streams == 4
    assert estimate.distinct_stream_seconds <= estimate.stream_seconds

    start = time.perf_counter()
    result = run_sweep(plan, jobs=2)
    wall_s = time.perf_counter() - start
    save_report(result)

    document = result.extras["document"]
    assert document["policies"] == ["float64", "float32"]
    assert len(document["cells"]) == 4
    # The override shortens camera S4 to 60 s in both policy groups.
    durations = {
        (row["policy"], row["scenario"]): row["duration_s"]
        for row in document["cells"]
    }
    assert durations[("float64", "S4")] == 60.0
    assert durations[("float32", "S4")] == 60.0
    assert durations[("float64", "S1")] == 120.0
    # Aggregate: one row per (policy, scenario), accuracies sane.
    assert len(document["aggregate"]) == 4
    for row in document["aggregate"]:
        assert 0.0 <= row["accuracy_mean"] <= 1.0

    paths = write_outputs(result, RESULTS_DIR)
    emitted = json.loads(
        (RESULTS_DIR / "sweep_fleet_smoke.json").read_text()
    )
    # Round-trip: the emitted JSON carries the same rows bit-exactly.
    assert emitted["aggregate"] == document["aggregate"]
    assert emitted["cells"] == document["cells"]

    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps({
        "wall_s": wall_s,
        "estimate": estimate.as_dict(),
        "document": document,
        "outputs": [path.name for path in paths],
    }, indent=2) + "\n")
