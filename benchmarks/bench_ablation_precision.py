"""Ablation benchmark: the MX precision tradeoff (workflow step 2)."""

from repro.experiments import run_ablation_precision


def test_ablation_precision(benchmark, save_report):
    result = benchmark.pedantic(
        run_ablation_precision, rounds=1, iterations=1
    )
    save_report(result)
    by_fmt = {r["format"]: r for r in result.rows}
    # Lower precision is faster on every kernel...
    for metric in ("inference_fps", "labeling_sps", "training_sps"):
        assert (
            by_fmt["MX4"][metric]
            > by_fmt["MX6"][metric]
            > by_fmt["MX9"][metric]
        )
    # ...but numerically worse (which is why training uses MX9).
    assert (
        by_fmt["MX4"]["sqnr_db"]
        < by_fmt["MX6"]["sqnr_db"]
        < by_fmt["MX9"]["sqnr_db"]
    )
