"""Figure 11 benchmark: temporal resource allocation decisions.

Shape assertions: DaCapo-Spatiotemporal allocates a larger share of
training-side time to labeling than DaCapo-Spatial, and improves accuracy,
for every model pair (the paper reports +12.7% labeling share and +5.9%
accuracy on average).
"""

from repro.experiments import run_fig11


def test_fig11(benchmark, save_report, bench_duration):
    result = benchmark.pedantic(
        run_fig11, kwargs={"duration_s": bench_duration},
        rounds=1, iterations=1,
    )
    save_report(result)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["label_share_delta"] > 0.0, row
        assert row["acc_improvement"] > -0.01, row
    # On average the temporal policy must pay off.
    mean_gain = sum(r["acc_improvement"] for r in result.rows) / 3
    assert mean_gain > 0.0
