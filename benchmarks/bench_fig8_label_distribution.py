"""Figure 8 benchmark: label distributions across scenario segments."""

import numpy as np

from repro.data import ALL_CLASSES
from repro.experiments import run_fig8


def test_fig8(benchmark, save_report):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    save_report(result)
    rows = result.rows
    assert len(rows) == 10  # 600 s / 60 s segments

    for row in rows:
        shares = np.array([row[c] for c in ALL_CLASSES])
        np.testing.assert_allclose(shares.sum(), 1.0, atol=1e-9)
        # Traffic-only segments have zero mass outside the first 5 classes.
        if "traffic_only" in row["domain"]:
            assert shares[5:].sum() == 0.0

    # The distributions genuinely differ across segments (the figure's
    # point): at least two distinct label histograms appear.
    histograms = {
        tuple(np.round([row[c] for c in ALL_CLASSES], 2)) for row in rows
    }
    assert len(histograms) >= 2
