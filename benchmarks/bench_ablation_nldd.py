"""Ablation benchmark: the Nldd (drift labeling) multiplier sweep."""

from repro.experiments import run_ablation_nldd


def test_ablation_nldd(benchmark, save_report, bench_duration):
    result = benchmark.pedantic(
        run_ablation_nldd, kwargs={"duration_s": bench_duration},
        rounds=1, iterations=1,
    )
    save_report(result)
    by_mult = {r["nldd_multiplier"]: r for r in result.rows}
    assert set(by_mult) == {1, 2, 4, 8}
    # Larger multipliers spend monotonically more time labeling.
    shares = [by_mult[m]["label_share"] for m in (1, 2, 4, 8)]
    assert all(b >= a - 0.02 for a, b in zip(shares, shares[1:]))
    # Extreme escalation crowds out retraining and costs accuracy.
    best = max(r["accuracy"] for r in result.rows)
    assert by_mult[8]["accuracy"] <= best - 0.01
    # The paper's choice (4) stays within a few points of the sweep's best
    # (in this substrate the buffer reset does most of the drift response,
    # so the escalation benefit is flat -- recorded in EXPERIMENTS.md).
    assert by_mult[4]["accuracy"] >= best - 0.05
