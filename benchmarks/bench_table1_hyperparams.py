"""Table I benchmark: hyperparameter table generation."""

from repro.experiments import run_table1


def test_table1(benchmark, save_report):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_report(result)
    symbols = {row["symbol"]: row["value"] for row in result.rows}
    # Section VI-B relations.
    assert symbols["Nv"] == symbols["Nt"] // 3
    assert symbols["Nldd"] == 4 * symbols["Nl"]
    assert symbols["Vthr"] < 0
