"""Figure 12 benchmark: extreme data-drift scenarios.

Shape assertions: DaCapo beats both EOMU and Ekya on ES1 and ES2, and
EOMU retrains more frequently than Ekya (its drift tolerance mechanism).
"""

from repro.experiments import run_fig12


def test_fig12(benchmark, save_report, bench_duration):
    result = benchmark.pedantic(
        run_fig12, kwargs={"duration_s": bench_duration},
        rounds=1, iterations=1,
    )
    save_report(result)
    by_key = {(r["scenario"], r["system"]): r for r in result.rows}
    for scenario in ("ES1", "ES2"):
        dacapo = by_key[(scenario, "DaCapo")]["accuracy"]
        eomu = by_key[(scenario, "EOMU")]["accuracy"]
        ekya = by_key[(scenario, "Ekya")]["accuracy"]
        assert dacapo > eomu, (scenario, dacapo, eomu)
        assert dacapo > ekya, (scenario, dacapo, ekya)
        assert (
            by_key[(scenario, "EOMU")]["retrainings"]
            > by_key[(scenario, "Ekya")]["retrainings"]
        )
