"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures, writes
the formatted report to ``benchmarks/results/<experiment>.txt``, and
asserts the *shape* properties the paper claims (orderings and ratios, not
absolute values -- the substrate is a simulator, not the authors' testbed).

Stream length is controlled by ``REPRO_BENCH_DURATION`` (seconds, default
600).  Set it to 1200 to reproduce the paper's full 20-minute scenarios.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_duration() -> float:
    """Scenario stream length used by the heavy end-to-end benchmarks."""
    return float(os.environ.get("REPRO_BENCH_DURATION", "600"))


@pytest.fixture(scope="session")
def save_report():
    """Write an experiment's report under ``benchmarks/results/``."""

    def _save(result) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.name}.txt"
        path.write_text(result.report)
        return path

    return _save
