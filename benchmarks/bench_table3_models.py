"""Table III benchmark: model statistics vs the paper's numbers."""

import pytest

from repro.experiments import run_table3


def test_table3(benchmark, save_report):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    save_report(result)
    for row in result.rows:
        assert row["params_M"] == pytest.approx(
            row["paper_params_M"], rel=0.005
        )
        assert row["gflops"] == pytest.approx(
            row["paper_gflops"], rel=0.005
        )
