"""Figure 2 benchmark: the GPU dilemma.

Shape assertions: no frame drops on the RTX 3090; teacher drops frames on
Orin; teacher beats the frozen student on the big GPU; Ekya recovers most
of the gap on the RTX 3090 but falls behind on Orin.
"""

from repro.experiments import run_fig2


def _lookup(rows, pair, platform, system):
    return next(
        r for r in rows
        if r["pair"] == pair and r["platform"] == platform
        and r["system"] == system
    )


def test_fig2(benchmark, save_report, bench_duration):
    result = benchmark.pedantic(
        run_fig2, kwargs={"duration_s": bench_duration},
        rounds=1, iterations=1,
    )
    save_report(result)
    rows = result.rows

    for row in rows:
        if row["platform"] == "RTX3090":
            assert row["frame_drop_rate"] == 0.0

    for pair in ("resnet18_wrn50", "resnet34_wrn101"):
        teacher_orin = _lookup(rows, pair, "OrinHigh", "teacher")
        assert teacher_orin["frame_drop_rate"] > 0.0

        student_rtx = _lookup(rows, pair, "RTX3090", "student")
        teacher_rtx = _lookup(rows, pair, "RTX3090", "teacher")
        assert teacher_rtx["accuracy"] > student_rtx["accuracy"]

        # Frame drops push Orin's teacher below the RTX 3090's.
        teacher_gap = teacher_rtx["accuracy"] - teacher_orin["accuracy"]
        assert teacher_gap > 0.05

        ekya_rtx = _lookup(rows, pair, "RTX3090", "ekya")
        ekya_orin = _lookup(rows, pair, "OrinHigh", "ekya")
        assert ekya_rtx["accuracy"] >= ekya_orin["accuracy"] - 0.01
