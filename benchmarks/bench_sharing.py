"""Cross-camera sharing benchmark: realized reuse on a correlated fleet.

Runs the reference fleet (four cameras on one S4 intersection, the
``examples/fleet_shared.toml`` grid) twice -- once independently, once
through the cluster sharing path -- and emits
``benchmarks/results/BENCH_sharing.json`` with the realized label/retrain
cost of each path.  The claims asserted:

- **Sublinear cost**: the cluster's total label + retrain work is at
  least 1.5x cheaper than the sum of independent runs (three of four
  cameras ride the founder's labels and per-domain deltas).
- **Accuracy holds**: no camera loses more than one accuracy point to
  sharing (in practice later members *gain* -- they inherit the
  founder's learning instead of starting cold).
- **Bit-identity stays pinned**: both paths reproduce the frozen digests
  in ``tests/reference/digests_sharing.json`` (quick fleet only; the
  full fleet extends beyond the frozen grid).

Cost is counted in realized work units, not simulated schedule seconds
(the schedule is identical by design -- sharing skips the *compute*
inside committed phases): teacher-labeled samples plus retrain
sample-epochs actually run.  The independent leg runs each camera inside
its own singleton cluster runtime, which counts its work without
changing a single bit of its output -- the digest assertion doubles as
proof.

``REPRO_BENCH_QUICK=1`` (CI) keeps the frozen four-camera fleet; the
local default widens to eight cameras.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.exec.shard import SystemCell, cell_key, run_cell
from repro.numeric import active_policy
from repro.reference import run_digest
from repro.share.policy import resolve_sharing, use_sharing
from repro.share.reference import (
    run_shared_cells,
    sharing_reference_cells,
    sharing_reference_path,
)
from repro.share.runtime import ClusterRuntime

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_sharing.json"

#: Acceptance floor: shared label+retrain work must beat independent by this.
MIN_COST_RATIO = 1.5
#: No camera may lose more than one accuracy point to sharing.
MAX_ACCURACY_DROP = 0.01


def fleet_cells():
    if QUICK:
        return sharing_reference_cells()
    return [
        SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", s, 240.0)
        for s in range(8)
    ]


def run_independent_cells(cells, sharing):
    """Each camera in its own singleton cluster: full cost, zero reuse."""
    runtimes = {}
    results = []
    with use_sharing(sharing):
        for index, cell in enumerate(cells):
            runtime = ClusterRuntime(sharing, f"i{index}")
            runtimes[f"i{index}"] = runtime
            with runtime.activate(cell):
                results.append(run_cell(cell))
    return results, runtimes


def work_units(runtimes) -> dict[str, int]:
    labels = sum(r.counters["labels_computed"] for r in runtimes.values())
    retrain = sum(r.counters["retrain_samples"] for r in runtimes.values())
    return {
        "label_samples": labels,
        "retrain_sample_epochs": retrain,
        "cost": labels + retrain,
    }


def test_sharing_cost_and_accuracy():
    policy = active_policy().name
    sharing = resolve_sharing("cluster")
    cells = fleet_cells()

    start = time.perf_counter()
    ind_results, ind_runtimes = run_independent_cells(cells, sharing)
    ind_wall = time.perf_counter() - start
    start = time.perf_counter()
    shr_results, shr_runtimes = run_shared_cells(cells, sharing)
    shr_wall = time.perf_counter() - start

    ind_digests = {
        cell_key(policy, cell): run_digest(result)
        for cell, result in zip(cells, ind_results)
    }
    shr_digests = {
        cell_key(policy, cell): run_digest(result)
        for cell, result in zip(cells, shr_results)
    }
    if QUICK and policy == "float64":
        frozen = json.loads(sharing_reference_path().read_text())["digests"]
        # Digest match proves the singleton runtimes changed nothing.
        assert ind_digests == frozen["independent"]
        assert shr_digests == frozen["shared"]

    independent = work_units(ind_runtimes)
    shared = work_units(shr_runtimes)
    counters = {
        cid: dict(runtime.counters) for cid, runtime in shr_runtimes.items()
    }
    assert shared["cost"] > 0 and independent["cost"] > 0
    cost_ratio = independent["cost"] / shared["cost"]

    accuracy = {}
    for cell, ind, shr in zip(cells, ind_results, shr_results):
        key = cell_key(policy, cell)
        accuracy[key] = {
            "independent": ind.average_accuracy(),
            "shared": shr.average_accuracy(),
            "delta": shr.average_accuracy() - ind.average_accuracy(),
        }

    document = {
        "quick": QUICK,
        "policy": policy,
        "sharing": sharing.name,
        "fleet": {
            "cameras": len(cells),
            "scenario": "S4",
            "duration_s": cells[0].duration_s,
        },
        "independent": dict(independent, wall_s=ind_wall),
        "shared": dict(shared, wall_s=shr_wall),
        "cluster_counters": counters,
        "cost_ratio": cost_ratio,
        "accuracy": accuracy,
        "digests": {"independent": ind_digests, "shared": shr_digests},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")

    # The paper-level claims: sublinear fleet cost, accuracy preserved.
    assert cost_ratio >= MIN_COST_RATIO, (
        f"sharing saved only {cost_ratio:.2f}x "
        f"(independent {independent['cost']} vs shared {shared['cost']})"
    )
    for key, row in accuracy.items():
        assert row["delta"] >= -MAX_ACCURACY_DROP, (
            f"{key} lost {-row['delta']:.3f} accuracy to sharing"
        )
