"""Ablation benchmark: output-stationary vs weight-stationary dataflow."""

from repro.experiments import run_ablation_dataflow


def test_ablation_dataflow(benchmark, save_report):
    result = benchmark.pedantic(run_ablation_dataflow, rounds=1, iterations=1)
    save_report(result)
    by_flow = {r["dataflow"]: r for r in result.rows}
    assert set(by_flow) == {"output_stationary", "weight_stationary"}
    # Both dataflows sustain the 30 FPS stream on the allocated B-SA.
    for row in by_flow.values():
        assert row["inference_fps"] >= 30
    # The two designs genuinely differ per kernel (the design choice is
    # not a no-op), each staying within 2x of the other.
    for metric in ("inference_fps", "labeling_sps", "training_sps"):
        ratio = (
            by_flow["output_stationary"][metric]
            / by_flow["weight_stationary"][metric]
        )
        assert 0.5 < ratio < 2.0
