"""Fleet-service benchmark: what resident, crash-safe serving costs.

The service recomputes each stream as a growing prefix (window ``i``
reruns stream-seconds ``[0, end_i)``), which is what buys bit-exact
crash recovery with a stateless compute layer.  This benchmark prices
that choice against the batch sweep baseline on the same grid:

- ``batch_s``: one ``run_cells`` pass over the full-duration cells.
- ``service_s``: an eager ``FleetService`` session over the same cells,
  windowed -- every stream computed window by window, journal fsyncs
  included.

It asserts the contract that makes the price worth paying: each
stream's *final* window digest is bit-identical to the batch result, so
a served session ends at exactly the sweep's numbers.  A second section
runs one oversubscribed paced stream and records what the degradation
ladder sheds, pricing graceful degradation rather than asserting
timing (CI runners are too noisy for deadline guarantees).

A third section prices the incremental-window alternative
(``window_mode="incremental"``): per-window wall time of chained
snapshot-resumed runs against the growing prefix runs, asserting the
incremental curve stays flat (O(window) per window) while the prefix
curve grows with the window index -- and that every per-window digest
matches, since the speedup is only admissible at bit-identity.

``REPRO_BENCH_QUICK=1`` (CI) shrinks the grid; emits
``benchmarks/results/BENCH_service.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.core.parallel import run_cells
from repro.exec import SystemCell
from repro.exec.shard import cell_key, run_cell, run_cell_incremental
from repro.reference import run_digest
from repro.service import FleetService, ServiceConfig
from repro.service.pacing import window_count
from repro.service.session import session_path

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_service.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

WINDOW_S = 30.0


def bench_grid() -> list[SystemCell]:
    duration = 60.0 if QUICK else 120.0
    scenarios = ("S1",) if QUICK else ("S1", "S4")
    return [
        SystemCell(
            "DaCapo-Spatiotemporal", "resnet18_wrn50", scenario, 0, duration
        )
        for scenario in scenarios
    ]


def window_records(out: Path) -> dict[tuple[str, int], dict]:
    records = {}
    for line in session_path(out).read_text().splitlines():
        record = json.loads(line)
        if record.get("kind") == "window":
            records[(record["stream"], record["index"])] = record
    return records


def test_service_overhead_and_final_window_identity(tmp_path):
    cells = bench_grid()
    windows_per_stream = window_count(cells[0].duration_s, WINDOW_S)

    start = time.perf_counter()
    batch = run_cells(cells, jobs=1)
    batch_s = time.perf_counter() - start
    batch_digests = {
        cell_key("float64", cell): run_digest(result)
        for cell, result in zip(cells, batch)
    }

    out = tmp_path / "service"
    start = time.perf_counter()
    code = FleetService(
        ServiceConfig(out_dir=out, window_s=WINDOW_S), cells
    ).run()
    service_s = time.perf_counter() - start
    assert code == 0

    records = window_records(out)
    assert len(records) == len(cells) * windows_per_stream
    # The contract: a served stream's final window is bit-identical to
    # the batch sweep's full-cell result.
    for key, digest in batch_digests.items():
        final = records[(key, windows_per_stream - 1)]
        assert final["mode"] == "fresh"
        assert final["digest"] == digest

    total_windows = len(records)
    overhead = service_s - batch_s
    # Sanity bound, not a perf target: prefix recompute over W windows
    # costs at most ~W/2 x the batch pass plus journal/loop slack.
    assert service_s < batch_s * (windows_per_stream + 1) + 60.0

    oversub = tmp_path / "oversub"
    cell = bench_grid()[0]
    start = time.perf_counter()
    code = FleetService(
        ServiceConfig(
            out_dir=oversub, window_s=WINDOW_S, speedup=100000.0
        ),
        [cell],
    ).run()
    oversub_s = time.perf_counter() - start
    assert code == 0
    state = json.loads((oversub / "state.json").read_text())
    stream = next(iter(state["streams"].values()))
    # The ladder must have engaged (windows arrive ~0.3 ms apart) and
    # the daemon still retired the stream cleanly.
    assert stream["retired"]
    assert stream["misses"] > 0

    _merge_output({
        "quick": QUICK,
        "streams": len(cells),
        "window_s": WINDOW_S,
        "windows_per_stream": windows_per_stream,
        "batch_s": batch_s,
        "service_s": service_s,
        "service_overhead_s": overhead,
        "service_overhead_per_window_s": overhead / total_windows,
        "oversubscribed": {
            "wall_s": oversub_s,
            "misses": stream["misses"],
            "dropped_frames": stream["dropped_frames"],
            "drop_rate": stream["drop_rate"],
            "final_level": stream["level"],
        },
    })


def test_incremental_vs_prefix_window_curve():
    # Segment-aligned 60 s windows on an 8-window stream: the shape the
    # incremental service dispatches.  Prefix cost grows with the window
    # index (window i re-simulates [0, end_i)); incremental cost is one
    # window's worth of stream regardless of i.
    n_windows = 8
    window_s = 60.0
    cell = SystemCell(
        "DaCapo-Ekya", "resnet18_wrn50", "S1", 0, n_windows * window_s
    )
    run_cell(replace(cell, duration_s=window_s))  # warm the model caches

    prefix_times: list[float] = []
    incremental_times: list[float] = []
    snapshot = None
    for i in range(n_windows):
        end = window_s * (i + 1)
        start = time.perf_counter()
        prefix_result = run_cell(replace(cell, duration_s=end))
        prefix_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        incremental_result, snapshot = run_cell_incremental(
            replace(cell, duration_s=end),
            snapshot=snapshot,
            emit_snapshot=True,
        )
        incremental_times.append(time.perf_counter() - start)
        # The speedup is only admissible at bit-identity.
        assert run_digest(incremental_result) == run_digest(prefix_result), i

    prefix_total = sum(prefix_times)
    incremental_total = sum(incremental_times)
    speedup = prefix_total / incremental_total
    # O(W) vs O(W^2): at 8 windows the prefix sum is 4.5x the stream, so
    # even with fixed per-window setup the ratio clears 2x comfortably.
    assert speedup >= 2.0, (prefix_times, incremental_times)
    # Flatness (lenient -- CI wall clocks are noisy): every steady-state
    # incremental window stays below the final, largest prefix window.
    assert max(incremental_times[1:]) < prefix_times[-1], (
        prefix_times, incremental_times,
    )

    _merge_output({
        "incremental": {
            "windows": n_windows,
            "window_s": window_s,
            "prefix_window_s": prefix_times,
            "incremental_window_s": incremental_times,
            "prefix_total_s": prefix_total,
            "incremental_total_s": incremental_total,
            "speedup": speedup,
        },
    })


def _merge_output(section: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if OUTPUT.exists():
        data = json.loads(OUTPUT.read_text())
    data.update(section)
    OUTPUT.write_text(json.dumps(data, indent=2) + "\n")
