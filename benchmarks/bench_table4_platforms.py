"""Table IV benchmark: platform specs and the power-ratio claims."""

import pytest

from repro.experiments import run_table4


def test_table4(benchmark, save_report):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_report(result)
    assert result.extras["ratio_high"] == pytest.approx(254, rel=0.01)
    assert result.extras["ratio_low"] == pytest.approx(127, rel=0.01)
    dacapo = next(r for r in result.rows if r["device"] == "DaCapo")
    assert dacapo["area_mm2"] == "2.501"
    assert dacapo["power_w"] == "0.236"
