"""Dispatch-overhead benchmark: what each execution backend costs.

Runs one small fixed grid through every backend -- serial (the floor),
the process pool, and the subprocess workers speaking the JSON-lines
protocol -- asserting the results are bit-identical everywhere, and emits
``benchmarks/results/BENCH_dispatch.json`` with per-backend wall time and
the overhead each transport adds over serial (absolute and per shard).

On CI's single/dual-core runners the multi-process backends are *slower*
than serial on a grid this small (spawn + pretrain-cache misses dominate);
the benchmark therefore asserts identity and bounded-sanity, and records
the overhead trajectory rather than enforcing a speedup.

``REPRO_BENCH_QUICK=1`` (CI) shrinks the grid; locally the default grid
gives steadier numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.parallel import run_cells
from repro.exec import SystemCell, plan_shards
from repro.reference import run_digest

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_dispatch.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

#: (backend label, run_cells kwargs) per transport; two workers keeps the
#: comparison honest on CI's small runners.
BACKENDS = (
    ("serial", {"jobs": 1}),
    ("process:2", {"jobs": 2, "backend": "process:2"}),
    ("subprocess:2", {"jobs": 2, "backend": "subprocess:2"}),
)


def bench_grid() -> list[SystemCell]:
    duration = 60.0 if QUICK else 120.0
    systems = ("OrinHigh-Ekya", "DaCapo-Spatiotemporal")
    scenarios = ("S1",) if QUICK else ("S1", "S4")
    return [
        SystemCell(system, "resnet18_wrn50", scenario, 0, duration)
        for scenario in scenarios
        for system in systems
    ]


def test_dispatch_overhead():
    cells = bench_grid()
    num_shards = len(plan_shards(cells, 2))

    measurements: dict[str, dict] = {}
    digests: dict[str, list[str]] = {}
    for label, kwargs in BACKENDS:
        start = time.perf_counter()
        results = run_cells(cells, **kwargs)
        wall_s = time.perf_counter() - start
        measurements[label] = {"wall_s": wall_s}
        digests[label] = [run_digest(result) for result in results]

    # The contract that makes backends *pluggable*: identical bits
    # everywhere, so transport choice is purely an operational decision.
    assert digests["process:2"] == digests["serial"]
    assert digests["subprocess:2"] == digests["serial"]

    serial_s = measurements["serial"]["wall_s"]
    for label, entry in measurements.items():
        overhead = entry["wall_s"] - serial_s
        entry["overhead_vs_serial_s"] = overhead
        entry["overhead_per_shard_s"] = overhead / num_shards
        # Sanity bound, not a perf target: dispatch must never cost an
        # order of magnitude over doing the work (spawn + warm caches
        # are seconds, the grid is tens of seconds).
        assert entry["wall_s"] < serial_s * 10 + 60.0

    RESULTS_DIR.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps({
        "quick": QUICK,
        "cells": len(cells),
        "shards": num_shards,
        "backends": measurements,
    }, indent=2) + "\n")
