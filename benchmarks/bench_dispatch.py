"""Dispatch-overhead benchmark: what each execution backend costs.

Runs one small fixed grid through every backend -- serial (the floor),
the process pool, the subprocess workers speaking the JSON-lines
protocol, and the pull-model file-system queue -- asserting the results
are bit-identical everywhere, and emits
``benchmarks/results/BENCH_dispatch.json`` with per-backend wall time and
the overhead each transport adds over serial (absolute and per shard).

A second section prices *fault recovery*: the same grid re-run under
armed fault plans (a worker death on every multi-process backend, a hang
caught by the subprocess watchdog, a hang caught by queue lease expiry),
recording the wall-time premium each recovery path costs over that
backend's clean run -- with the recovered results still bit-identical.

On CI's single/dual-core runners the multi-process backends are *slower*
than serial on a grid this small (spawn + pretrain-cache misses dominate);
the benchmark therefore asserts identity and bounded-sanity, and records
the overhead trajectory rather than enforcing a speedup.

``REPRO_BENCH_QUICK=1`` (CI) shrinks the grid; locally the default grid
gives steadier numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.parallel import run_cells
from repro.exec import SystemCell, faults, plan_shards
from repro.reference import run_digest

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_dispatch.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

#: (backend label, run_cells kwargs) per transport; two workers keeps the
#: comparison honest on CI's small runners.
BACKENDS = (
    ("serial", {"jobs": 1}),
    ("process:2", {"jobs": 2, "backend": "process:2"}),
    ("subprocess:2", {"jobs": 2, "backend": "subprocess:2"}),
    ("queue:2", {"jobs": 2, "backend": "queue:2"}),
)

#: Per-backend fault scenarios for the recovery section: the fault kind
#: to arm and the env knobs that make its recovery path fast enough to
#: benchmark (short watchdog deadline / lease TTL instead of the
#: production defaults).
FAULT_SCENARIOS = (
    ("process:2", "worker_death", "die-once", {}),
    ("subprocess:2", "worker_death", "die-once", {}),
    ("subprocess:2", "watchdog_hang", "hang", {"REPRO_SHARD_TIMEOUT": "3"}),
    ("queue:2", "worker_death", "die-once", {}),
    ("queue:2", "lease_expiry_hang", "hang", {"REPRO_LEASE_TTL": "2"}),
)


def bench_grid() -> list[SystemCell]:
    duration = 60.0 if QUICK else 120.0
    systems = ("OrinHigh-Ekya", "DaCapo-Spatiotemporal")
    scenarios = ("S1",) if QUICK else ("S1", "S4")
    return [
        SystemCell(system, "resnet18_wrn50", scenario, 0, duration)
        for scenario in scenarios
        for system in systems
    ]


def test_dispatch_overhead():
    cells = bench_grid()
    num_shards = len(plan_shards(cells, 2))

    measurements: dict[str, dict] = {}
    digests: dict[str, list[str]] = {}
    for label, kwargs in BACKENDS:
        start = time.perf_counter()
        results = run_cells(cells, **kwargs)
        wall_s = time.perf_counter() - start
        measurements[label] = {"wall_s": wall_s}
        digests[label] = [run_digest(result) for result in results]

    # The contract that makes backends *pluggable*: identical bits
    # everywhere, so transport choice is purely an operational decision.
    assert digests["process:2"] == digests["serial"]
    assert digests["subprocess:2"] == digests["serial"]
    assert digests["queue:2"] == digests["serial"]

    serial_s = measurements["serial"]["wall_s"]
    for label, entry in measurements.items():
        overhead = entry["wall_s"] - serial_s
        entry["overhead_vs_serial_s"] = overhead
        entry["overhead_per_shard_s"] = overhead / num_shards
        # Sanity bound, not a perf target: dispatch must never cost an
        # order of magnitude over doing the work (spawn + warm caches
        # are seconds, the grid is tens of seconds).
        assert entry["wall_s"] < serial_s * 10 + 60.0

    RESULTS_DIR.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps({
        "quick": QUICK,
        "cells": len(cells),
        "shards": num_shards,
        "backends": measurements,
    }, indent=2) + "\n")


def test_fault_recovery_overhead(tmp_path, monkeypatch):
    """Price each recovery path against its backend's clean run.

    Every scenario arms a one-firing fault plan, reruns the grid, and
    records the wall-time premium the recovery cost -- a retried shard
    after a worker death, a watchdog kill after a hang, a lease-expiry
    reclaim after a hang.  Recovered results must stay bit-identical to
    serial: fault tolerance is free of numeric consequences by design.
    """
    cells = bench_grid()
    serial = [run_digest(r) for r in run_cells(cells, jobs=1)]

    recovery: dict[str, dict] = {}
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    for backend in dict.fromkeys(s[0] for s in FAULT_SCENARIOS):
        start = time.perf_counter()
        results = run_cells(cells, jobs=2, backend=backend)
        recovery[backend] = {"clean_s": time.perf_counter() - start}
        assert [run_digest(r) for r in results] == serial

    for backend, label, kind, env in FAULT_SCENARIOS:
        plan = faults.save_plan(
            faults.FaultPlan((faults.FaultEntry(kind),), seed=9),
            tmp_path / f"{backend.replace(':', '-')}-{label}.json",
        )
        with monkeypatch.context() as patch:
            patch.setenv(faults.FAULT_PLAN_ENV, str(plan))
            for name, value in env.items():
                patch.setenv(name, value)
            start = time.perf_counter()
            results = run_cells(cells, jobs=2, backend=backend)
            wall_s = time.perf_counter() - start
        assert [run_digest(r) for r in results] == serial
        assert not list(faults.tokens_dir(plan).iterdir())  # it fired
        entry = recovery[backend]
        entry[f"{label}_s"] = wall_s
        entry[f"{label}_overhead_s"] = wall_s - entry["clean_s"]

    RESULTS_DIR.mkdir(exist_ok=True)
    document = (
        json.loads(OUTPUT.read_text()) if OUTPUT.exists() else {"quick": QUICK}
    )
    document["fault_recovery"] = recovery
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
