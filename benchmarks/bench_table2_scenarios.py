"""Table II benchmark: scenario construction."""

from repro.experiments import run_table2


def test_table2(benchmark, save_report):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_report(result)
    names = [row["name"] for row in result.rows]
    assert names == ["S1", "S2", "S3", "S4", "S5", "S6", "ES1", "ES2"]
    for row in result.rows:
        # 20-minute 30 FPS streams with actual drift events.
        assert row["frames"] == 36000
        assert row["drifts"] >= 3
    # Extreme scenarios compose all four drift types.
    assert "Weather" in result.rows[-1]["drift_types"]
