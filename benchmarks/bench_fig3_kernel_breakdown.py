"""Figure 3 benchmark: per-kernel FLOPs breakdown vs hyperparameters.

Shape assertions: retraining's FLOPs share surges as sampling rate and
epochs grow while inference's and labeling's shrink; total FLOPs increase
monotonically.
"""

from repro.experiments import run_fig3


def test_fig3(benchmark, save_report):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    save_report(result)
    rows = result.rows
    assert len(rows) == 3

    retrain_shares = [r["retraining_share"] for r in rows]
    inference_shares = [r["inference_share"] for r in rows]
    totals = [r["total_tflops"] for r in rows]

    assert retrain_shares == sorted(retrain_shares)
    assert inference_shares == sorted(inference_shares, reverse=True)
    assert totals == sorted(totals)
    # The paper's qualitative end points: retraining grows from a minority
    # share to the dominant share.
    assert retrain_shares[0] < 0.5
    assert retrain_shares[-1] > 0.6
