"""Batched multi-cell executor benchmark: the per-K speedup curve.

Runs a same-geometry fleet (K cameras on the ``resnet18_wrn50`` pair,
S4, seeds ``0..K-1``) through the serial per-cell path and through
``run_cells_batched`` at each K, and emits
``benchmarks/results/BENCH_batched.json`` with, per K:

- **numpy dispatches**: kernel-level calls counted by
  :mod:`repro.learn.ops` -- the quantity batching exists to collapse
  (K stacked requests become one einsum/matmul dispatch);
- **wall seconds** for both paths, caches pre-warmed so neither leg
  pays materialization;
- **digest identity**: every per-cell digest equal between paths, at
  every K -- the speedup is claimed on bit-identical results or not
  at all.

The claims asserted at the largest K: at least ``MIN_DISPATCH_RATIO``
fewer numpy dispatches (deterministic -- counted, not timed), and at
least ``MIN_WALL_RATIO`` wall speedup (full mode only; the quick CI
fleet is too short to clear timing noise, so quick runs only record
wall and assert the dispatch ratio).

``REPRO_BENCH_QUICK=1`` (CI) runs K in {1, 2, 4} at 120 s; the local
default runs K in {1, 2, 4, 8} at 240 s.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.batching import ON, use_batching
from repro.exec.batched import _warm_streams, run_cells_batched
from repro.exec.shard import (
    SystemCell,
    cell_key,
    run_cell,
    warm_model_caches,
)
from repro.learn.ops import dispatch_count, reset_dispatch
from repro.numeric import active_policy
from repro.reference import run_digest

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_batched.json"

KS = (1, 2, 4) if QUICK else (1, 2, 4, 8)
DURATION_S = 120.0 if QUICK else 240.0

#: Acceptance floors, asserted at the largest K.
MIN_DISPATCH_RATIO = 2.0
MIN_WALL_RATIO = 1.5


def fleet(k: int) -> list[SystemCell]:
    return [
        SystemCell(
            "DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", s, DURATION_S
        )
        for s in range(k)
    ]


def timed_serial(cells):
    reset_dispatch()
    start = time.perf_counter()
    results = [run_cell(cell) for cell in cells]
    wall = time.perf_counter() - start
    return results, wall, dispatch_count()


def timed_batched(cells):
    reset_dispatch()
    start = time.perf_counter()
    with use_batching(ON):
        pairs = run_cells_batched(cells)
    wall = time.perf_counter() - start
    return [result for result, _ in pairs], wall, dispatch_count()


def test_batched_speedup_curve():
    policy = active_policy().name
    cells = fleet(max(KS))
    # Neither leg pays materialization: pretrain and stream caches are
    # warmed up front, exactly as a resident service holds them.
    warm_model_caches(cells)
    _warm_streams(cells)

    curve = {}
    for k in KS:
        subset = cells[:k]
        serial_results, serial_wall, serial_calls = timed_serial(subset)
        batched_results, batched_wall, batched_calls = timed_batched(subset)
        digests = [run_digest(result) for result in serial_results]
        assert [run_digest(result) for result in batched_results] == (
            digests
        ), f"batched digests diverged at K={k}"
        curve[str(k)] = {
            "cells": [cell_key(policy, cell) for cell in subset],
            "serial": {"wall_s": serial_wall, "dispatches": serial_calls},
            "batched": {"wall_s": batched_wall, "dispatches": batched_calls},
            "dispatch_ratio": serial_calls / batched_calls,
            "wall_ratio": serial_wall / batched_wall,
            "digests": digests,
        }

    top = curve[str(max(KS))]
    document = {
        "quick": QUICK,
        "policy": policy,
        "duration_s": DURATION_S,
        "ks": list(KS),
        "floors": {
            "dispatch_ratio": MIN_DISPATCH_RATIO,
            "wall_ratio": None if QUICK else MIN_WALL_RATIO,
        },
        "curve": curve,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")

    assert curve["1"]["dispatch_ratio"] == 1.0  # K=1 is the serial path
    assert top["dispatch_ratio"] >= MIN_DISPATCH_RATIO, (
        f"batching collapsed only {top['dispatch_ratio']:.2f}x dispatches "
        f"at K={max(KS)} ({top['serial']['dispatches']} vs "
        f"{top['batched']['dispatches']})"
    )
    if not QUICK:
        assert top["wall_ratio"] >= MIN_WALL_RATIO, (
            f"batching sped wall only {top['wall_ratio']:.2f}x at "
            f"K={max(KS)}"
        )


if __name__ == "__main__":
    test_batched_speedup_curve()
    print(OUTPUT.read_text())
