"""Package-level consistency checks: public API imports and __all__ hygiene."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.mx",
    "repro.accelerator",
    "repro.models",
    "repro.platform",
    "repro.data",
    "repro.learn",
    "repro.core",
    "repro.experiments",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists {symbol!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_sorted_and_unique(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert len(set(exported)) == len(exported), f"{name} duplicates exports"


def test_version_matches_pyproject():
    import pathlib
    import re

    import repro

    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    text = pyproject.read_text()
    declared = re.search(r'^version = "([^"]+)"', text, re.M).group(1)
    assert repro.__version__ == declared


def test_public_entry_points_exist():
    from repro.core import build_system, run_on_scenario, validate_run
    from repro.experiments import run_experiment
    from repro.mx import MX4, MX6, MX9

    assert callable(build_system)
    assert callable(run_on_scenario)
    assert callable(validate_run)
    assert callable(run_experiment)
    assert MX4.bits_per_value < MX6.bits_per_value < MX9.bits_per_value
