"""Tests for the on-disk pretrained-MLP cache."""

import numpy as np
import pytest

from repro.learn import MLPClassifier
from repro.learn.cache import (
    CACHE_ENV,
    cache_dir,
    load_pretrained,
    store_pretrained,
)


def make_mlp(seed=11):
    return MLPClassifier.create(6, (8, 5), 4, np.random.default_rng(seed))


class TestDiskCache:
    def test_round_trip_is_bit_exact(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        mlp = make_mlp()
        store_pretrained("student", "resnet18", 0, 3, mlp)
        loaded = load_pretrained("student", "resnet18", 0, 3)
        assert loaded is not None
        assert loaded.num_layers == mlp.num_layers
        for a, b in zip(loaded.weights, mlp.weights):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(loaded.biases, mlp.biases):
            np.testing.assert_array_equal(a, b)

    def test_miss_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        assert load_pretrained("student", "resnet18", 0, 99) is None

    def test_keys_are_disjoint(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        store_pretrained("student", "resnet18", 0, 0, make_mlp(1))
        assert load_pretrained("teacher", "resnet18", 0, 0) is None
        assert load_pretrained("student", "resnet34", 0, 0) is None
        assert load_pretrained("student", "resnet18", 1, 0) is None
        assert load_pretrained("student", "resnet18", 0, 1) is None

    def test_pretrain_key_partitions_entries(self, tmp_path, monkeypatch):
        # Changing any pretraining hyperparameter (encoded in the key) must
        # miss rather than serve weights trained under the old recipe.
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        store_pretrained("student", "resnet18", 0, 0, make_mlp(), "800e8lr0.05h16")
        assert (
            load_pretrained("student", "resnet18", 0, 0, "800e12lr0.05h16")
            is None
        )
        assert (
            load_pretrained("student", "resnet18", 0, 0, "800e8lr0.05h16")
            is not None
        )

    def test_empty_env_disables_cache(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "")
        assert cache_dir() is None
        store_pretrained("student", "resnet18", 0, 0, make_mlp())
        assert load_pretrained("student", "resnet18", 0, 0) is None

    def test_corrupt_entry_falls_back_to_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        mlp = make_mlp()
        store_pretrained("student", "resnet18", 0, 0, mlp)
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"not a zip archive")
        assert load_pretrained("student", "resnet18", 0, 0) is None

    def test_pretraining_equals_cached_reload(self, tmp_path, monkeypatch):
        # A cold pretraining and a cache hit must produce identical weights.
        import repro.learn.student as student_mod

        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        student_mod._pretrained_mlp.cache_clear()
        cold = student_mod._pretrained_mlp("resnet18", 0, 1234, "float64")
        student_mod._pretrained_mlp.cache_clear()
        warm = student_mod._pretrained_mlp("resnet18", 0, 1234, "float64")
        for a, b in zip(cold.weights, warm.weights):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(cold.biases, warm.biases):
            np.testing.assert_array_equal(a, b)
        student_mod._pretrained_mlp.cache_clear()
