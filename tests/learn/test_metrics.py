"""Tests for accuracy metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn import accuracy, geometric_mean, windowed_accuracy


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(
            2 / 3
        )

    def test_empty_scores_zero(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_misaligned(self):
        with pytest.raises(ConfigurationError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestWindowedAccuracy:
    def test_windows_partition_time(self):
        times = np.array([0.0, 1.0, 16.0, 17.0])
        correct = np.array([1, 1, 0, 1])
        starts, series = windowed_accuracy(times, correct, window_s=15.0)
        assert len(starts) == 2
        assert series[0] == 1.0
        assert series[1] == 0.5

    def test_empty_windows_score_zero(self):
        times = np.array([0.0, 31.0])
        correct = np.array([1, 1])
        _, series = windowed_accuracy(times, correct, 15.0, duration_s=45.0)
        assert len(series) == 3
        assert series[1] == 0.0

    def test_duration_extends_series(self):
        times = np.array([0.0])
        correct = np.array([1])
        starts, series = windowed_accuracy(times, correct, 10.0, duration_s=60.0)
        assert len(starts) == 6

    def test_empty_input(self):
        starts, series = windowed_accuracy(np.array([]), np.array([]), 15.0)
        assert len(starts) == 0

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            windowed_accuracy(np.array([0.0]), np.array([1]), 0.0)

    def test_misaligned(self):
        with pytest.raises(ConfigurationError):
            windowed_accuracy(np.array([0.0]), np.array([1, 2]), 15.0)

    def test_frame_at_duration_boundary_clamped(self):
        times = np.array([29.999, 30.0])
        correct = np.array([1, 0])
        _, series = windowed_accuracy(times, correct, 15.0, duration_s=30.0)
        assert len(series) == 2
        assert series[1] == 0.5


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_equals_arithmetic_for_constant(self):
        assert geometric_mean(np.array([0.7, 0.7, 0.7])) == pytest.approx(0.7)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean(np.array([]))
        with pytest.raises(ConfigurationError):
            geometric_mean(np.array([0.5, 0.0]))
