"""Tests for the SGD training loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn import MLPClassifier, TrainConfig, train_sgd
from repro.mx import MX9


def separable_data(rng, n=200):
    x = np.concatenate(
        [rng.normal(-3, 1, (n // 2, 5)), rng.normal(3, 1, (n // 2, 5))]
    )
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


class TestTrainConfig:
    def test_paper_defaults(self):
        config = TrainConfig()
        assert config.learning_rate == 1e-3
        assert config.batch_size == 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(learning_rate=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(epochs=0)


class TestTrainSgd:
    def test_losses_per_epoch(self):
        rng = np.random.default_rng(0)
        x, y = separable_data(rng)
        mlp = MLPClassifier.create(5, (8,), 2, rng)
        losses = train_sgd(mlp, x, y, TrainConfig(5e-2, 16, epochs=5), rng)
        assert len(losses) == 5
        assert losses[-1] < losses[0]

    def test_learns_separable_problem(self):
        rng = np.random.default_rng(1)
        x, y = separable_data(rng)
        mlp = MLPClassifier.create(5, (8,), 2, rng)
        train_sgd(mlp, x, y, TrainConfig(5e-2, 16, epochs=10), rng)
        assert mlp.accuracy(x, y) > 0.97

    def test_mx9_training_still_learns(self):
        # The paper trains at MX9; quantized training must converge too.
        rng = np.random.default_rng(2)
        x, y = separable_data(rng)
        mlp = MLPClassifier.create(5, (8,), 2, rng)
        train_sgd(
            mlp, x, y, TrainConfig(5e-2, 16, epochs=10, fmt=MX9), rng
        )
        assert mlp.accuracy(x, y) > 0.95

    def test_deterministic_given_seed(self):
        rng_data = np.random.default_rng(3)
        x, y = separable_data(rng_data)
        results = []
        for _ in range(2):
            mlp = MLPClassifier.create(5, (8,), 2, np.random.default_rng(7))
            train_sgd(
                mlp, x, y, TrainConfig(5e-2, 16, 3), np.random.default_rng(9)
            )
            results.append(mlp.forward(x))
        np.testing.assert_array_equal(results[0], results[1])

    def test_empty_dataset_rejected(self):
        mlp = MLPClassifier.create(5, (8,), 2, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            train_sgd(
                mlp, np.zeros((0, 5)), np.zeros(0, dtype=int),
                TrainConfig(), np.random.default_rng(0),
            )

    def test_misaligned_rejected(self):
        mlp = MLPClassifier.create(5, (8,), 2, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            train_sgd(
                mlp, np.zeros((4, 5)), np.zeros(3, dtype=int),
                TrainConfig(), np.random.default_rng(0),
            )
