"""Tests for the student/teacher proxies and their CL dynamics.

These pin down the behavioural contract the end-to-end experiments rely on:
teacher > generalist student everywhere; specialization helps; drift hurts;
retraining recovers; ViTs are more precision-sensitive.
"""

import numpy as np
import pytest

from repro.data import Domain, DomainModel, Location, TimeOfDay
from repro.learn import make_student, make_teacher
from repro.mx import MX6, MX9

DM = DomainModel()
DAY = Domain()
NIGHT_HWY = Domain().with_(time=TimeOfDay.NIGHT, location=Location.HIGHWAY)


@pytest.fixture(scope="module")
def teacher():
    return make_teacher("wide_resnet50_2")


@pytest.fixture(scope="module")
def eval_sets():
    rng = np.random.default_rng(123)
    return {
        "day": DM.sample(DAY, 2000, rng),
        "night": DM.sample(NIGHT_HWY, 2000, rng),
    }


class TestTeacher:
    def test_accurate_in_every_domain(self, teacher, eval_sets):
        for x, y in eval_sets.values():
            assert teacher.accuracy(x, y) > 0.85

    def test_labels_are_mostly_correct_but_imperfect(self, teacher, eval_sets):
        x, y = eval_sets["day"]
        labels = teacher.label(x)
        agreement = float(np.mean(labels == y))
        assert 0.85 < agreement < 1.0

    def test_cached_pretraining(self):
        a = make_teacher("wide_resnet50_2")
        b = make_teacher("wide_resnet50_2")
        np.testing.assert_array_equal(a.mlp.weights[0], b.mlp.weights[0])

    def test_with_precision_shares_weights(self, teacher):
        mx = teacher.with_precision(MX6)
        assert mx.mlp is teacher.mlp
        assert mx.fmt is MX6


class TestStudent:
    def test_teacher_beats_student_outside_base_domain(
        self, teacher, eval_sets
    ):
        # The student pretrains only on the base (day/city) domain
        # (workflow step 1: "general dataset without deployment context"),
        # so away from it the all-domain teacher must dominate.
        student = make_student("resnet18")
        x, y = eval_sets["night"]
        assert teacher.accuracy(x, y) > student.accuracy(x, y) + 0.1

    def test_specialization_improves_in_domain(self, teacher, eval_sets):
        # Specializing onto a new (shifted) domain must lift accuracy there.
        student = make_student("resnet18")
        x_eval, y_eval = eval_sets["night"]
        before = student.accuracy(x_eval, y_eval)
        rng = np.random.default_rng(0)
        x, _ = DM.sample(NIGHT_HWY, 600, rng)
        student.retrain(x, teacher.label(x), epochs=5, rng=rng,
                        learning_rate=5e-2)
        assert student.accuracy(x_eval, y_eval) > before + 0.1

    def test_drift_hurts_and_retraining_recovers(self, teacher, eval_sets):
        student = make_student("resnet18")
        rng = np.random.default_rng(1)
        x, _ = DM.sample(DAY, 600, rng)
        student.retrain(x, teacher.label(x), epochs=5, rng=rng,
                        learning_rate=5e-2)
        x_day, y_day = eval_sets["day"]
        x_night, y_night = eval_sets["night"]
        in_domain = student.accuracy(x_day, y_day)
        drifted = student.accuracy(x_night, y_night)
        assert drifted < in_domain - 0.03

        xn, _ = DM.sample(NIGHT_HWY, 600, rng)
        student.retrain(xn, teacher.label(xn), epochs=5, rng=rng,
                        learning_rate=5e-2)
        recovered = student.accuracy(x_night, y_night)
        assert recovered > drifted + 0.03

    def test_snapshot_restore(self):
        student = make_student("resnet18")
        state = student.snapshot()
        rng = np.random.default_rng(2)
        x, y = DM.sample(DAY, 200, rng)
        student.retrain(x, y, epochs=2, rng=rng)
        student.restore(state)
        twin = make_student("resnet18")
        np.testing.assert_array_equal(
            student.mlp.weights[0], twin.mlp.weights[0]
        )

    def test_clones_are_independent(self):
        a = make_student("resnet18")
        b = a.clone()
        rng = np.random.default_rng(3)
        x, y = DM.sample(DAY, 200, rng)
        a.retrain(x, y, epochs=2, rng=rng)
        assert not np.allclose(a.mlp.weights[0], b.mlp.weights[0])


class TestPrecisionSensitivity:
    def test_vit_more_sensitive_than_cnn(self, eval_sets):
        x, y = eval_sets["day"]
        vit_fp = make_teacher("vit_b_16")
        vit_mx = make_teacher("vit_b_16", fmt=MX6)
        cnn_fp = make_teacher("wide_resnet50_2")
        cnn_mx = make_teacher("wide_resnet50_2", fmt=MX6)
        vit_loss = vit_fp.accuracy(x, y) - vit_mx.accuracy(x, y)
        cnn_loss = cnn_fp.accuracy(x, y) - cnn_mx.accuracy(x, y)
        assert vit_loss > cnn_loss

    def test_mx9_training_precision_configured(self):
        student = make_student(
            "resnet18", inference_fmt=MX6, training_fmt=MX9
        )
        assert student.inference_fmt is MX6
        assert student.training_fmt is MX9
