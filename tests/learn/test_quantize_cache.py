"""Equivalence tests: cached weight quantization == recomputed quantization."""

import numpy as np
import pytest

from repro.learn import MLPClassifier
from repro.learn.ops import relu
from repro.learn.quantized import effective_quantize
from repro.mx import MX6, MX9


def make_mlp(seed=0, hidden=(8,), classes=4, dim=6):
    return MLPClassifier.create(
        dim, hidden, classes, np.random.default_rng(seed)
    )


def uncached_forward(mlp, x, fmt, sensitivity=1.0):
    """The pre-cache forward pass: re-quantize weights on every call.

    Runs at the model's own dtype so the equivalence holds under any
    ambient numeric policy.
    """
    h = np.asarray(x, dtype=mlp.dtype)
    for i, (w, b) in enumerate(zip(mlp.weights, mlp.biases)):
        h_q = effective_quantize(h, fmt, sensitivity)
        w_q = effective_quantize(w, fmt, sensitivity, axis=0)
        h = h_q @ w_q + b
        if i < mlp.num_layers - 1:
            h = relu(h)
    return h


@pytest.mark.parametrize("fmt", [MX6, MX9], ids=lambda f: f.name)
@pytest.mark.parametrize("sensitivity", [1.0, 2.5])
class TestForwardCacheEquivalence:
    def test_repeated_forward_is_bit_identical(self, fmt, sensitivity):
        mlp = make_mlp()
        x = np.random.default_rng(1).normal(size=(20, 6))
        expected = uncached_forward(mlp, x, fmt, sensitivity)
        first = mlp.forward(x, fmt, sensitivity)  # fills the cache
        second = mlp.forward(x, fmt, sensitivity)  # served from the cache
        np.testing.assert_array_equal(first, expected)
        np.testing.assert_array_equal(second, expected)

    def test_forward_after_train_step(self, fmt, sensitivity):
        mlp = make_mlp()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(20, 6))
        y = rng.integers(0, 4, 20)
        mlp.forward(x, fmt, sensitivity)  # warm the cache pre-update
        mlp.train_step(x, y, lr=0.1, fmt=fmt, sensitivity=sensitivity)
        np.testing.assert_array_equal(
            mlp.forward(x, fmt, sensitivity),
            uncached_forward(mlp, x, fmt, sensitivity),
        )

    def test_forward_after_restore(self, fmt, sensitivity):
        mlp = make_mlp()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(20, 6))
        y = rng.integers(0, 4, 20)
        state = mlp.snapshot()
        before = mlp.forward(x, fmt, sensitivity)
        mlp.train_step(x, y, lr=0.5, fmt=fmt, sensitivity=sensitivity)
        mlp.forward(x, fmt, sensitivity)  # cache holds post-step weights
        mlp.restore(state)
        restored = mlp.forward(x, fmt, sensitivity)
        np.testing.assert_array_equal(restored, before)
        np.testing.assert_array_equal(
            restored, uncached_forward(mlp, x, fmt, sensitivity)
        )

    def test_clone_does_not_share_cache(self, fmt, sensitivity):
        mlp = make_mlp()
        rng = np.random.default_rng(4)
        x = rng.normal(size=(20, 6))
        y = rng.integers(0, 4, 20)
        mlp.forward(x, fmt, sensitivity)  # warm the original's cache
        twin = mlp.clone()
        twin.train_step(x, y, lr=0.5, fmt=fmt, sensitivity=sensitivity)
        # Training the clone neither poisons the original's cache...
        np.testing.assert_array_equal(
            mlp.forward(x, fmt, sensitivity),
            uncached_forward(mlp, x, fmt, sensitivity),
        )
        # ...nor does the clone serve the original's stale entries.
        np.testing.assert_array_equal(
            twin.forward(x, fmt, sensitivity),
            uncached_forward(twin, x, fmt, sensitivity),
        )


class TestCacheHousekeeping:
    def test_fp32_path_bypasses_cache(self):
        mlp = make_mlp()
        x = np.random.default_rng(5).normal(size=(4, 6))
        mlp.forward(x)
        assert not mlp._wq_cache

    def test_explicit_invalidation_after_manual_mutation(self):
        mlp = make_mlp()
        x = np.random.default_rng(6).normal(size=(4, 6))
        mlp.forward(x, MX6)
        assert mlp._wq_cache
        mlp.weights[0] = mlp.weights[0] * 2.0
        mlp.invalidate_quantization_cache()
        np.testing.assert_array_equal(
            mlp.forward(x, MX6), uncached_forward(mlp, x, MX6)
        )

    def test_distinct_formats_and_sensitivities_get_distinct_entries(self):
        mlp = make_mlp()
        x = np.random.default_rng(7).normal(size=(4, 6))
        mlp.forward(x, MX6, 1.0)
        mlp.forward(x, MX9, 1.0)
        mlp.forward(x, MX6, 2.5)
        keys = set(mlp._wq_cache)
        assert len(keys) == 3 * mlp.num_layers
