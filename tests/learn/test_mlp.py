"""Tests for the MLP classifier, including end-to-end gradient checking."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn import MLPClassifier
from repro.learn.ops import cross_entropy_loss
from repro.mx import MX6, MX9


def make_mlp(seed=0, hidden=(8,), classes=4, dim=6):
    return MLPClassifier.create(dim, hidden, classes, np.random.default_rng(seed))


class TestConstruction:
    def test_layer_shapes(self):
        mlp = make_mlp(hidden=(8, 5))
        assert [w.shape for w in mlp.weights] == [(6, 8), (8, 5), (5, 4)]
        assert mlp.num_classes == 4
        assert mlp.num_layers == 3

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier.create(0, (4,), 3, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            MLPClassifier.create(4, (4,), 1, np.random.default_rng(0))


class TestForward:
    def test_logit_shape(self):
        mlp = make_mlp()
        logits = mlp.forward(np.zeros((10, 6)))
        assert logits.shape == (10, 4)

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            make_mlp().forward(np.zeros(6))

    def test_quantized_forward_differs_slightly(self):
        mlp = make_mlp()
        x = np.random.default_rng(1).normal(size=(20, 6))
        fp = mlp.forward(x)
        q = mlp.forward(x, fmt=MX6)
        assert not np.allclose(fp, q)
        assert np.allclose(fp, q, atol=0.5)

    def test_sensitivity_scales_quantization_error(self):
        mlp = make_mlp()
        x = np.random.default_rng(2).normal(size=(20, 6))
        fp = mlp.forward(x)
        err1 = np.abs(mlp.forward(x, fmt=MX6, sensitivity=1.0) - fp).mean()
        err3 = np.abs(mlp.forward(x, fmt=MX6, sensitivity=3.0) - fp).mean()
        assert err3 > err1

    def test_predict_returns_class_indices(self):
        mlp = make_mlp()
        preds = mlp.predict(np.random.default_rng(3).normal(size=(30, 6)))
        assert preds.min() >= 0 and preds.max() < 4

    def test_accuracy_empty_is_zero(self):
        assert make_mlp().accuracy(np.zeros((0, 6)), np.zeros(0)) == 0.0


class TestTrainStep:
    def test_gradient_check_through_network(self):
        # Numerically verify dLoss/dW for every parameter of a tiny net.
        # Finite differences at eps=1e-6 need float64 parameters, so pin
        # the policy rather than inherit an ambient float32.
        from repro.numeric import use_policy

        with use_policy("float64"):
            mlp = MLPClassifier.create(3, (4,), 3, np.random.default_rng(4))
        x = np.random.default_rng(5).normal(size=(5, 3))
        y = np.array([0, 1, 2, 0, 1])

        # Analytic step with lr=1 equals the negative gradient.
        reference = mlp.clone()
        mlp.train_step(x, y, lr=1.0)
        analytic_grads = [
            ref_w - new_w
            for ref_w, new_w in zip(reference.weights, mlp.weights)
        ]

        eps = 1e-6
        for layer, grad in enumerate(analytic_grads):
            flat = grad.ravel()
            for idx in range(0, flat.size, 3):  # spot-check every 3rd entry
                probe = reference.clone()
                shape = probe.weights[layer].shape
                bump = np.zeros(shape).ravel()
                bump[idx] = eps
                probe.weights[layer] = probe.weights[layer] + bump.reshape(
                    shape
                )
                loss_plus = cross_entropy_loss(probe.forward(x), y)
                loss_base = cross_entropy_loss(reference.forward(x), y)
                numeric = (loss_plus - loss_base) / eps
                assert flat[idx] == pytest.approx(numeric, abs=1e-4)

    def test_loss_decreases_on_separable_data(self):
        rng = np.random.default_rng(6)
        x = np.concatenate([rng.normal(-3, 1, (50, 6)), rng.normal(3, 1, (50, 6))])
        y = np.array([0] * 50 + [1] * 50)
        mlp = MLPClassifier.create(6, (8,), 2, rng)
        first = mlp.train_step(x, y, lr=0.1)
        for _ in range(50):
            last = mlp.train_step(x, y, lr=0.1)
        assert last < first
        assert mlp.accuracy(x, y) > 0.95

    def test_invalid_lr(self):
        with pytest.raises(ConfigurationError):
            make_mlp().train_step(np.zeros((2, 6)), np.zeros(2, dtype=int), lr=0)

    def test_empty_batch(self):
        with pytest.raises(ConfigurationError):
            make_mlp().train_step(np.zeros((0, 6)), np.zeros(0, dtype=int), lr=0.1)


class TestSnapshot:
    def test_snapshot_restore_round_trip(self):
        mlp = make_mlp()
        state = mlp.snapshot()
        x = np.random.default_rng(7).normal(size=(20, 6))
        y = np.random.default_rng(8).integers(0, 4, 20)
        mlp.train_step(x, y, lr=0.5)
        changed = mlp.forward(x)
        mlp.restore(state)
        np.testing.assert_array_equal(
            mlp.forward(x), MLPClassifier(*state).forward(x)
        )
        assert not np.allclose(mlp.forward(x), changed)

    def test_snapshot_is_deep(self):
        mlp = make_mlp()
        state = mlp.snapshot()
        mlp.weights[0][0, 0] += 100.0
        assert state[0][0][0, 0] != mlp.weights[0][0, 0]

    def test_restore_shape_mismatch(self):
        mlp = make_mlp()
        other = make_mlp(hidden=(8, 8))
        with pytest.raises(ConfigurationError):
            mlp.restore(other.snapshot())

    def test_clone_is_independent(self):
        mlp = make_mlp()
        twin = mlp.clone()
        mlp.weights[0][0, 0] += 1.0
        assert twin.weights[0][0, 0] != mlp.weights[0][0, 0]
