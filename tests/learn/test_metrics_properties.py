"""Property-based tests for the accuracy metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn import geometric_mean, windowed_accuracy


@given(
    n=st.integers(1, 500),
    window=st.floats(1.0, 60.0),
    seed=st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_windowed_accuracy_reconstructs_frame_mean(n, window, seed):
    """The count-weighted mean of window accuracies equals the frame mean."""
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0, 120, size=n))
    correct = rng.random(n) < 0.7
    duration = 120.0
    starts, series = windowed_accuracy(times, correct, window, duration)
    counts = np.zeros(len(starts))
    idx = np.minimum((times // window).astype(int), len(starts) - 1)
    for i in idx:
        counts[i] += 1
    weighted = float(np.sum(series * counts) / n)
    np.testing.assert_allclose(weighted, float(np.mean(correct)), rtol=1e-9)


@given(
    n=st.integers(1, 500),
    window=st.floats(1.0, 60.0),
    seed=st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_windowed_accuracy_bounded(n, window, seed):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0, 300, size=n))
    correct = rng.random(n) < 0.5
    _, series = windowed_accuracy(times, correct, window)
    assert np.all(series >= 0.0) and np.all(series <= 1.0)


@given(
    values=st.lists(
        st.floats(0.01, 1.0, allow_nan=False), min_size=1, max_size=30
    )
)
@settings(max_examples=100, deadline=None)
def test_geometric_mean_between_min_and_max(values):
    arr = np.array(values)
    g = geometric_mean(arr)
    assert arr.min() - 1e-12 <= g <= arr.max() + 1e-12


@given(
    values=st.lists(
        st.floats(0.01, 1.0, allow_nan=False), min_size=1, max_size=30
    ),
    scale=st.floats(0.1, 10.0),
)
@settings(max_examples=100, deadline=None)
def test_geometric_mean_is_homogeneous(values, scale):
    arr = np.array(values)
    lhs = geometric_mean(arr * scale)
    rhs = geometric_mean(arr) * scale
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9)
