"""Per-slice bit-identity of the batched kernels against the serial path.

The batched executor's whole contract rests on these identities: every
stacked primitive must produce, slice by slice, exactly the bytes the
serial code produces.  No tolerances anywhere -- ``array_equal`` on the
raw float arrays.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn import MLPClassifier, TrainConfig, train_sgd
from repro.learn.executor import batched_forward, batched_predict
from repro.learn.mlp import BatchedMLPBank
from repro.learn.ops import (
    batched_cross_entropy_grad,
    batched_cross_entropy_loss,
    cross_entropy_grad,
    cross_entropy_loss,
    dispatch_count,
    reset_dispatch,
)
from repro.learn.train import train_sgd_batched
from repro.mx import MX6, MX9

K = 4


def make_models(k=K, in_dim=6, hidden=(8,), classes=3, dtype=np.float64):
    models = []
    for seed in range(k):
        rng = np.random.default_rng(100 + seed)
        model = MLPClassifier.create(in_dim, hidden, classes, rng)
        if dtype is not np.float64:
            model = model.astype(dtype)
        models.append(model)
    return models


def make_batches(k=K, n=32, in_dim=6, classes=3):
    xs, ys = [], []
    for seed in range(k):
        rng = np.random.default_rng(500 + seed)
        xs.append(rng.normal(size=(n, in_dim)))
        ys.append(rng.integers(0, classes, size=n))
    return xs, ys


class TestBatchedCrossEntropy:
    def test_loss_matches_per_slice(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(K, 16, 5))
        labels = rng.integers(0, 5, size=(K, 16))
        batched = batched_cross_entropy_loss(logits, labels)
        assert batched.shape == (K,)
        for k in range(K):
            serial = cross_entropy_loss(logits[k], labels[k])
            assert batched[k] == serial

    def test_grad_matches_per_slice(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(K, 16, 5))
        labels = rng.integers(0, 5, size=(K, 16))
        batched = batched_cross_entropy_grad(logits, labels)
        for k in range(K):
            serial = cross_entropy_grad(logits[k], labels[k])
            assert np.array_equal(batched[k], serial)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            batched_cross_entropy_loss(
                np.zeros((2, 4, 3)), np.zeros((2, 5), dtype=int)
            )
        with pytest.raises(ConfigurationError):
            batched_cross_entropy_grad(
                np.zeros((2, 0, 3)), np.zeros((2, 0), dtype=int)
            )


class TestBatchedBankForward:
    @pytest.mark.parametrize("fmt,sensitivity", [
        (None, 1.0), (MX9, 1.0), (MX6, 0.5),
    ])
    def test_forward_matches_per_slice(self, fmt, sensitivity):
        models = make_models()
        xs, _ = make_batches()
        stacked = np.stack(xs)
        bank = BatchedMLPBank(models)
        logits = bank.forward(stacked, fmt, sensitivity)
        for k, model in enumerate(models):
            serial = model.forward(xs[k], fmt, sensitivity)
            assert np.array_equal(logits[k], serial)

    def test_forward_float32_models(self):
        models = make_models(dtype=np.float32)
        xs, _ = make_batches()
        logits = BatchedMLPBank(models).forward(np.stack(xs), MX9, 1.0)
        assert logits.dtype == np.float32
        for k, model in enumerate(models):
            assert np.array_equal(logits[k], model.forward(xs[k], MX9, 1.0))

    def test_stack_cache_tracks_weight_versions(self):
        models = make_models()
        xs, ys = make_batches()
        bank = BatchedMLPBank(models)
        before = bank.forward(np.stack(xs), MX9, 1.0)
        # Mutate one member through the serial trainer; the bank must
        # restack instead of serving stale weights.
        rng = np.random.default_rng(9)
        train_sgd(models[0], xs[0], ys[0], TrainConfig(epochs=1), rng)
        after = bank.forward(np.stack(xs), MX9, 1.0)
        assert not np.array_equal(before[0], after[0])
        assert np.array_equal(after[0], models[0].forward(xs[0], MX9, 1.0))

    def test_geometry_and_dtype_validation(self):
        rng = np.random.default_rng(3)
        a = MLPClassifier.create(6, (8,), 3, rng)
        b = MLPClassifier.create(6, (9,), 3, rng)
        with pytest.raises(ConfigurationError):
            BatchedMLPBank([a, b])
        with pytest.raises(ConfigurationError):
            BatchedMLPBank([a.astype(np.float64), a.astype(np.float32)])
        with pytest.raises(ConfigurationError):
            BatchedMLPBank([])

    def test_executor_helpers(self):
        models = make_models()
        xs, _ = make_batches()
        stacked = np.stack(xs)
        logits = batched_forward(models, stacked, MX9, 1.0)
        preds = batched_predict(models, stacked, MX9, 1.0)
        for k, model in enumerate(models):
            assert np.array_equal(logits[k], model.forward(xs[k], MX9, 1.0))
            assert np.array_equal(preds[k], model.predict(xs[k], MX9, 1.0))


class TestBatchedTrain:
    @pytest.mark.parametrize("fmt", [None, MX9], ids=["fp", "mx9"])
    def test_train_matches_per_slice(self, fmt):
        config = TrainConfig(5e-2, 16, epochs=3, fmt=fmt)
        serial_models = make_models()
        batched_models = make_models()
        xs, ys = make_batches()
        serial_losses = [
            train_sgd(
                model, xs[k], ys[k], config, np.random.default_rng(40 + k)
            )
            for k, model in enumerate(serial_models)
        ]
        batched_losses = train_sgd_batched(
            batched_models,
            xs,
            ys,
            config,
            [np.random.default_rng(40 + k) for k in range(K)],
        )
        assert batched_losses == serial_losses
        for serial, batched in zip(serial_models, batched_models):
            for w_s, w_b in zip(serial.weights, batched.weights):
                assert np.array_equal(w_s, w_b)
            for b_s, b_b in zip(serial.biases, batched.biases):
                assert np.array_equal(b_s, b_b)

    def test_forward_after_batched_train_matches(self):
        # The quantized-weight cache must be invalidated by the scatter.
        config = TrainConfig(5e-2, 16, epochs=2, fmt=MX9)
        serial = make_models(k=1)[0]
        batched = make_models(k=2)
        xs, ys = make_batches(k=2)
        train_sgd(serial, xs[0], ys[0], config, np.random.default_rng(7))
        train_sgd_batched(
            batched, xs, ys, config,
            [np.random.default_rng(7), np.random.default_rng(8)],
        )
        probe = xs[0][:5]
        assert np.array_equal(
            serial.forward(probe, MX9, 1.0), batched[0].forward(probe, MX9, 1.0)
        )

    def test_validation(self):
        models = make_models(k=2)
        xs, ys = make_batches(k=2)
        rngs = [np.random.default_rng(0), np.random.default_rng(1)]
        with pytest.raises(ConfigurationError):
            train_sgd_batched(models, xs[:1], ys, TrainConfig(), rngs)
        with pytest.raises(ConfigurationError):
            train_sgd_batched([], [], [], TrainConfig(), [])
        ragged = [xs[0], xs[1][:-1]]
        with pytest.raises(ConfigurationError):
            train_sgd_batched(models, ragged, ys, TrainConfig(), rngs)


class TestDispatchCounter:
    def test_batched_forward_dispatches_fewer_calls(self):
        models = make_models()
        xs, _ = make_batches()
        stacked = np.stack(xs)
        bank = BatchedMLPBank(models)
        bank.forward(stacked, MX9, 1.0)  # warm the weight-stack cache
        for model in models:
            model.forward(xs[0], MX9, 1.0)  # warm per-model quant caches
        reset_dispatch()
        for k, model in enumerate(models):
            model.forward(xs[k], MX9, 1.0)
        serial_calls = dispatch_count()
        reset_dispatch()
        bank.forward(stacked, MX9, 1.0)
        batched_calls = dispatch_count()
        assert serial_calls == K * batched_calls
