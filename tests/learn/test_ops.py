"""Tests for the elementary NN ops, including gradient checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn import (
    cross_entropy_grad,
    cross_entropy_loss,
    he_init,
    relu,
    relu_grad,
    softmax,
)


class TestHeInit:
    def test_shape_and_scale(self):
        rng = np.random.default_rng(0)
        w = he_init(1000, 50, rng)
        assert w.shape == (1000, 50)
        assert np.std(w) == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            he_init(0, 5, np.random.default_rng(0))


class TestRelu:
    def test_values(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 2.0])

    def test_grad(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu_grad(x), [0.0, 0.0, 1.0])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        probs = softmax(rng.normal(size=(8, 5)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(8))

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_no_overflow_on_large_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(probs).all()


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        assert cross_entropy_loss(logits, np.array([0])) < 1e-6

    def test_uniform_loss(self):
        logits = np.zeros((4, 10))
        labels = np.arange(4)
        assert cross_entropy_loss(logits, labels) == pytest.approx(
            np.log(10)
        )

    def test_grad_matches_finite_differences(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        grad = cross_entropy_grad(logits.copy(), labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                bumped = logits.copy()
                bumped[i, j] += eps
                numeric = (
                    cross_entropy_loss(bumped, labels)
                    - cross_entropy_loss(logits, labels)
                ) / eps
                assert grad[i, j] == pytest.approx(numeric, abs=1e-4)

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            cross_entropy_loss(np.zeros((0, 3)), np.zeros(0, dtype=int))
        with pytest.raises(ConfigurationError):
            cross_entropy_grad(np.zeros((0, 3)), np.zeros(0, dtype=int))

    def test_misaligned_rejected(self):
        with pytest.raises(ConfigurationError):
            cross_entropy_loss(np.zeros((2, 3)), np.zeros(3, dtype=int))
