"""Tests for the functional MX execution path.

The critical property: at sensitivity 1.0 the fast path (quantization-error
injection inside ``MLPClassifier.forward``) is **bit-identical** to running
every layer through the real MX GEMMs -- the justification for using the
fast path throughout the system simulator.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learn import MLPClassifier, mx_forward, mx_predict
from repro.mx import FORMATS, MX6


def make_model(seed=0):
    return MLPClassifier.create(
        12, (10,), 5, np.random.default_rng(seed)
    )


class TestEquivalence:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_fast_path_matches_mx_gemms(self, fmt):
        model = make_model()
        x = np.random.default_rng(1).normal(size=(32, 12))
        reference = mx_forward(model, x, fmt)
        fast = model.forward(x, fmt=fmt, sensitivity=1.0)
        np.testing.assert_allclose(reference, fast, rtol=1e-12, atol=1e-12)

    def test_predictions_match(self):
        model = make_model(2)
        x = np.random.default_rng(3).normal(size=(64, 12))
        np.testing.assert_array_equal(
            mx_predict(model, x, MX6),
            model.predict(x, fmt=MX6, sensitivity=1.0),
        )

    def test_differs_from_fp32(self):
        model = make_model(4)
        x = np.random.default_rng(5).normal(size=(16, 12))
        assert not np.allclose(mx_forward(model, x, MX6), model.forward(x))

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            mx_forward(make_model(), np.zeros(12), MX6)
