"""Tests for the execution backends: parsing, equivalence, worker death."""

import json
import sys

import pytest

from repro.core.parallel import run_cells
from repro.errors import ConfigurationError
from repro.exec import (
    BACKEND_ENV,
    FAULT_TOKEN_ENV,
    ProcessPoolBackend,
    SerialBackend,
    ShardFailure,
    SubprocessWorkerBackend,
    SystemCell,
    active_backend_spec,
    make_backend,
    parse_backend,
    use_backend,
)
from repro.numeric import active_policy
from repro.reference import reference_path, run_digest

DURATION = 60.0

CELLS = [
    SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0, DURATION),
    SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S4", 0, DURATION),
    SystemCell("OrinHigh-EOMU", "resnet18_wrn50", "S1", 0, DURATION),
]


class TestParseBackend:
    def test_kinds(self):
        assert parse_backend("serial") == ("serial", None)
        assert parse_backend("process") == ("process", None)
        assert parse_backend("subprocess") == ("subprocess", None)
        assert parse_backend("process:4") == ("process", 4)
        assert parse_backend("SUBPROCESS:2") == ("subprocess", 2)

    @pytest.mark.parametrize(
        "spec",
        ["", "threads", "process:x", "process:0", "process:-1", "serial:2"],
    )
    def test_rejects_garbage(self, spec):
        with pytest.raises(ConfigurationError):
            parse_backend(spec)

    def test_make_backend_fills_default_workers(self):
        backend = make_backend("process", default_workers=3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 3
        backend = make_backend("subprocess:2", default_workers=5)
        assert isinstance(backend, SubprocessWorkerBackend)
        assert backend.workers == 2
        assert isinstance(make_backend("serial"), SerialBackend)


class TestAmbientSelection:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert active_backend_spec() is None

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "subprocess:2")
        assert active_backend_spec() == "subprocess:2"

    def test_env_garbage_fails_fast(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "quantum")
        with pytest.raises(ConfigurationError):
            active_backend_spec()

    def test_use_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process:4")
        with use_backend("serial"):
            assert active_backend_spec() == "serial"
        assert active_backend_spec() == "process:4"

    def test_use_backend_validates(self):
        with pytest.raises(ConfigurationError):
            with use_backend("warp"):
                pass


class TestBackendEquivalence:
    def test_explicit_serial_backend(self):
        serial = run_cells(CELLS, jobs=1)
        explicit = run_cells(CELLS, jobs=4, backend="serial")
        assert [run_digest(a) for a in serial] == [
            run_digest(b) for b in explicit
        ]

    def test_subprocess_matches_serial(self):
        serial = run_cells(CELLS, jobs=1)
        dispatched = run_cells(CELLS, backend="subprocess:2")
        assert [run_digest(a) for a in serial] == [
            run_digest(b) for b in dispatched
        ]

    def test_ambient_backend_reaches_run_cells(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        # jobs=4 would normally select the pool; the env forces serial.
        results = run_cells(CELLS[:2], jobs=4)
        expected = run_cells(CELLS[:2], jobs=1)
        assert [run_digest(a) for a in results] == [
            run_digest(b) for b in expected
        ]


class TestSmokeGridDigests:
    def test_subprocess_backend_matches_frozen_reference(self):
        """The acceptance bit-identity check: the frozen smoke digests
        reproduce through the subprocess transport (serial and process
        are covered by tests/test_reference_digests.py and the sweep
        suite)."""
        policy = active_policy()
        reference = json.loads(
            reference_path(policy.name).read_text()
        )["smoke"]
        cells = [
            SystemCell(system, "resnet18_wrn50", "S4", 0, 300.0)
            for system in (
                "OrinLow-Ekya", "OrinHigh-Ekya", "OrinHigh-EOMU",
                "DaCapo-Ekya", "DaCapo-Spatial", "DaCapo-Spatiotemporal",
            )
        ]
        results = run_cells(cells, backend="subprocess:2")
        for cell, result in zip(cells, results):
            key = (
                f"{cell.system}|{cell.pair}|{cell.scenario}"
                f"|seed{cell.seed}|{cell.duration_s:g}s"
            )
            assert reference[key]["digest"] == run_digest(result), key


class TestWorkerDeath:
    def test_subprocess_worker_death_retries_identically(
        self, tmp_path, monkeypatch
    ):
        token = tmp_path / "die"
        token.touch()
        monkeypatch.setenv(FAULT_TOKEN_ENV, str(token))
        dispatched = run_cells(CELLS, backend="subprocess:2")
        assert not token.exists()  # exactly one worker claimed it and died
        monkeypatch.delenv(FAULT_TOKEN_ENV)
        serial = run_cells(CELLS, jobs=1)
        assert [run_digest(a) for a in dispatched] == [
            run_digest(b) for b in serial
        ]

    def test_pool_worker_death_is_not_a_raw_broken_pool(
        self, tmp_path, monkeypatch
    ):
        # The satellite fix: a dying pool worker used to surface as an
        # opaque BrokenProcessPool traceback; now the scheduler retries
        # on a fresh pool and the results stay identical.
        token = tmp_path / "die"
        token.touch()
        monkeypatch.setenv(FAULT_TOKEN_ENV, str(token))
        dispatched = run_cells(CELLS, jobs=2, backend="process:2")
        assert not token.exists()
        monkeypatch.delenv(FAULT_TOKEN_ENV)
        serial = run_cells(CELLS, jobs=1)
        assert [run_digest(a) for a in dispatched] == [
            run_digest(b) for b in serial
        ]

    def test_persistent_death_raises_typed_failure_naming_cells(self):
        broken = SubprocessWorkerBackend(
            1,
            command=[sys.executable, "-c", "raise SystemExit(1)"],
            max_respawns=1,
        )
        try:
            with pytest.raises(ShardFailure) as excinfo:
                run_cells(CELLS[:1], backend=broken)
        finally:
            broken.close()
        message = str(excinfo.value)
        assert "DaCapo-Spatiotemporal" in message  # the shard's cells
        assert "attempts" in message

    def test_cell_exception_fails_fast_without_killing_the_worker(self):
        # A deterministic in-cell error is not a transport fault: the
        # healthy worker replies with an error message, the scheduler
        # surfaces it immediately (no retries), and the same backend
        # keeps serving good shards afterwards.
        backend = SubprocessWorkerBackend(1)
        bad = SystemCell("NoSuchSystem", "resnet18_wrn50", "S1", 0, DURATION)
        try:
            with pytest.raises(ShardFailure) as excinfo:
                run_cells([bad], backend=backend)
            assert excinfo.value.retriable is False
            assert excinfo.value.attempts == 1
            assert "NoSuchSystem" in str(excinfo.value)
            good = run_cells(CELLS[:1], backend=backend)
        finally:
            backend.close()
        assert run_digest(good[0]) == run_digest(
            run_cells(CELLS[:1], jobs=1)[0]
        )

    def test_hung_worker_is_killed_at_the_shard_deadline(self):
        # A worker that goes silent (wedged ssh channel) must not hang
        # the sweep: the watchdog kills it at the deadline, converting
        # the hang into the worker-death failure the scheduler retries.
        hung = SubprocessWorkerBackend(
            1,
            command=[sys.executable, "-c", "import time; time.sleep(600)"],
            max_respawns=0,
            shard_timeout_s=0.5,
        )
        try:
            with pytest.raises(ShardFailure) as excinfo:
                run_cells(CELLS[:1], backend=hung)
        finally:
            hung.close()
        # The run terminated (no hang) with a typed failure naming the
        # cells -- first the handshake deadline fired, then the spent
        # respawn budget reported the slot dead.
        assert "DaCapo-Spatiotemporal" in str(excinfo.value)

    def test_banner_on_stdout_is_a_typed_handshake_failure(self):
        # The ssh failure mode: a MOTD/banner line reaches the protocol
        # channel before (instead of) the hello.  Must surface as a
        # ShardFailure naming the cells -- never a crashed dispatch
        # thread recorded as a completed shard.
        chatty = SubprocessWorkerBackend(
            1,
            command=[
                sys.executable, "-c",
                "print('Welcome to edge-host!'); "
                "import time; time.sleep(60)",
            ],
            max_respawns=0,
            shard_timeout_s=5.0,
        )
        try:
            with pytest.raises(ShardFailure) as excinfo:
                run_cells(CELLS[:1], backend=chatty)
        finally:
            chatty.close()
        assert "DaCapo-Spatiotemporal" in str(excinfo.value)

    def test_shard_timeout_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "eventually")
        with pytest.raises(ConfigurationError, match="REPRO_SHARD_TIMEOUT"):
            SubprocessWorkerBackend(1)
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "120")
        assert SubprocessWorkerBackend(1).shard_timeout_s == 120.0

    def test_cell_exception_in_pool_reraises_the_original(self):
        # The pool has the original exception object in-process, so the
        # error contract matches the serial path at any worker count:
        # same type, with the shard context chained as the cause.
        bad = SystemCell("NoSuchSystem", "resnet18_wrn50", "S1", 0, DURATION)
        with pytest.raises(ConfigurationError) as excinfo:
            run_cells([bad, CELLS[0]], jobs=2, backend="process:2")
        assert isinstance(excinfo.value.__cause__, ShardFailure)
        assert excinfo.value.__cause__.retriable is False

    def test_shard_failure_collects_context(self):
        failure = ShardFailure(
            "boom",
            shard_key="k",
            cells=("a/b/c",),
            worker="w0:pid1",
            cause="EOF",
        )
        final = failure.with_attempts(3)
        assert final.attempts == 3
        assert "a/b/c" in str(final)
        assert "w0:pid1" in str(final)
        assert "EOF" in str(final)
        assert "attempts: 3" in str(final)


class TestWorkerExclusion:
    def test_excluded_subprocess_worker_is_retired_and_replaced(self):
        # The scheduler's exclusion contract, observed at the transport:
        # a worker named in ``excluded`` is killed before the batch runs,
        # and the retried shard is served by a fresh replacement -- never
        # by the excluded worker.
        from repro.exec import make_shard_specs
        from repro.numeric import active_policy

        backend = SubprocessWorkerBackend(1)
        specs = make_shard_specs(CELLS[:1], 1, active_policy().name)
        try:
            [first] = backend.run(specs)
            (old,) = backend._handles.values()
            old_id, old_proc = old.id, old.proc
            [second] = backend.run(
                specs, excluded=frozenset({old_id})
            )
            (replacement,) = backend._handles.values()
        finally:
            backend.close()
        assert old_proc.poll() is not None  # retired worker is dead
        assert replacement.id != old_id
        assert run_digest(first.results[0]) == run_digest(
            second.results[0]
        )
