"""Tests for the deterministic fault-injection layer (exec/faults.py)."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import faults
from repro.exec.faults import FaultEntry, FaultPlan, load_plan, save_plan


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEntry(kind="explode")

    def test_bad_times_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEntry(kind="die-once", times=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEntry(kind="slow-worker", delay_s=-1.0)

    def test_empty_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_mapping({"entries": []})

    def test_unknown_entry_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_mapping(
                {"entries": [{"kind": "hang", "when": "later"}]}
            )

    def test_non_int_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_mapping({"entries": ["hang"], "seed": "x"})

    def test_kind_string_shorthand(self):
        plan = FaultPlan.from_mapping({"entries": ["die-once", "hang"]})
        assert [e.kind for e in plan.entries] == ["die-once", "hang"]
        assert all(e.times == 1 for e in plan.entries)

    def test_mapping_round_trip(self):
        plan = FaultPlan(
            (
                FaultEntry("corrupt-result", times=2, match="abc"),
                FaultEntry("slow-worker", delay_s=0.5),
            ),
            seed=11,
        )
        assert FaultPlan.from_mapping(plan.as_mapping()) == plan


class TestArmingAndClaims:
    def test_save_plan_arms_one_token_per_firing(self, tmp_path):
        path = save_plan(
            FaultPlan(
                (FaultEntry("die-once", times=3), FaultEntry("hang"))
            ),
            tmp_path / "plan.json",
        )
        tokens = sorted(p.name for p in faults.tokens_dir(path).iterdir())
        assert tokens == [
            "000.000.token",
            "000.001.token",
            "000.002.token",
            "001.000.token",
        ]
        assert load_plan(path).entries[0].times == 3

    def test_resave_clears_stale_tokens(self, tmp_path):
        path = save_plan(
            FaultPlan((FaultEntry("die-once", times=3),)),
            tmp_path / "plan.json",
        )
        save_plan(FaultPlan((FaultEntry("hang"),)), path)
        assert [p.name for p in faults.tokens_dir(path).iterdir()] == [
            "000.000.token"
        ]

    def test_claim_is_exactly_once(self, tmp_path):
        path = save_plan(
            FaultPlan((FaultEntry("corrupt-result"),)),
            tmp_path / "plan.json",
        )
        assert faults._claim(path, 0, 0) is True
        assert faults._claim(path, 0, 0) is False

    def test_load_plan_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_plan(tmp_path / "nope.json")


@pytest.fixture
def armed(tmp_path, monkeypatch):
    """Arm a plan and point $REPRO_FAULT_PLAN at it."""

    def arm(*entries, seed=0):
        path = save_plan(
            FaultPlan(tuple(entries), seed=seed), tmp_path / "plan.json"
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(path))
        return path

    return arm


class TestInjectionSites:
    def test_no_plan_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
        faults.on_claim("anything")
        assert faults.reply_fault("anything") is None
        assert faults.journal_fault("anything") is None

    def test_slow_worker_fires_once_then_disarms(self, armed):
        armed(FaultEntry("slow-worker", delay_s=0.0))
        faults.on_claim("shard-a")  # claims the one firing; no delay
        assert faults.reply_fault("shard-a") is None

    def test_match_filter_gates_firing(self, armed):
        path = armed(FaultEntry("slow-worker", delay_s=0.0, match="xyz"))
        faults.on_claim("shard-a")  # no match: token stays armed
        assert len(list(faults.tokens_dir(path).iterdir())) == 1
        faults.on_claim("shard-xyz-1")
        assert len(list(faults.tokens_dir(path).iterdir())) == 0

    def test_reply_fault_mode_is_seeded(self, armed):
        armed(FaultEntry("corrupt-result"), seed=7)
        first = faults.reply_fault("shard-a")
        assert first in faults.CORRUPT_MODES
        # Re-arm the identical plan: same seeded choice every run.
        armed(FaultEntry("corrupt-result"), seed=7)
        assert faults.reply_fault("shard-b") == first

    def test_journal_fault_fraction_in_range(self, armed):
        armed(FaultEntry("torn-journal-write"), seed=3)
        torn = faults.journal_fault("line-context")
        assert torn is not None and 0.0 < torn < 1.0
        assert faults.journal_fault("line-context") is None


class TestCorruptReply:
    def reply(self):
        return {
            "v": 1,
            "kind": "result",
            "id": "k",
            "results": [
                {"times": {"data": "AAAA", "dtype": "f8", "shape": [0]}},
                {"times": {"data": "BBBB", "dtype": "f8", "shape": [0]}},
            ],
        }

    def test_truncate_drops_last_result(self):
        out = faults.corrupt_reply(self.reply(), "truncate")
        assert len(out["results"]) == 1

    def test_garble_breaks_base64(self):
        out = faults.corrupt_reply(self.reply(), "garble")
        assert len(out["results"]) == 2
        assert out["results"][0]["times"]["data"] == "!!not-base64!!"
        # The original message is not mutated.
        assert self.reply()["results"][0]["times"]["data"] == "AAAA"

    def test_empty_results_still_invalidated(self):
        out = faults.corrupt_reply({"results": []}, "garble")
        assert out["results"] == [{"corrupt": True}]


class TestLegacyDieToken:
    def test_unarmed_token_is_a_no_op(self, monkeypatch, tmp_path):
        monkeypatch.setenv(
            faults.FAULT_TOKEN_ENV, str(tmp_path / "absent")
        )
        faults.consume_die_token()  # must not exit: file does not exist
        monkeypatch.delenv(faults.FAULT_TOKEN_ENV)
        faults.consume_die_token()
