"""Tests for the pull-model queue backend: claims, leases, reclaim, faults."""

import threading
import time

import pytest

from repro.core.parallel import run_cells
from repro.errors import ConfigurationError
from repro.exec import (
    QueueBackend,
    ShardFailure,
    SystemCell,
    execute_cells,
    faults,
    make_backend,
    make_shard_specs,
    parse_backend,
    protocol,
    use_backend,
)
from repro.exec.queue import QueueLayout, queue_worker_main
from repro.reference import run_digest

DURATION = 60.0

CELLS = [
    SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0, DURATION),
    SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S4", 0, DURATION),
    SystemCell("OrinHigh-EOMU", "resnet18_wrn50", "S1", 0, DURATION),
]


@pytest.fixture(scope="module")
def serial_digests():
    return [run_digest(r) for r in run_cells(CELLS, jobs=1)]


class TestParseAndMake:
    def test_queue_spec_parses(self):
        assert parse_backend("queue") == ("queue", None)
        assert parse_backend("queue:3") == ("queue", 3)

    def test_make_backend_builds_queue(self, tmp_path):
        backend = make_backend(
            "queue:2", queue_dir=str(tmp_path / "q")
        )
        try:
            assert isinstance(backend, QueueBackend)
            assert backend.workers == 2
            assert backend.layout.root == tmp_path / "q"
            assert backend.layout.pending.is_dir()
        finally:
            backend.close()
        # A pinned directory is the caller's: close() must not remove it.
        assert (tmp_path / "q").is_dir()

    def test_owned_temp_directory_removed_on_close(self):
        backend = QueueBackend(1)
        root = backend.layout.root
        assert root.is_dir()
        backend.close()
        assert not root.exists()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            QueueBackend(0)

    def test_worker_refuses_a_non_queue_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            queue_worker_main(tmp_path / "not-a-queue", drain=True)


class TestQueueExecution:
    def test_bit_identical_to_serial(self, serial_digests):
        with use_backend("queue:2"):
            results = run_cells(CELLS, jobs=2)
        assert [run_digest(r) for r in results] == serial_digests

    def test_die_once_is_retried_and_killer_banned(
        self, serial_digests, tmp_path, monkeypatch
    ):
        plan = faults.save_plan(
            faults.FaultPlan((faults.FaultEntry("die-once"),), seed=5),
            tmp_path / "plan.json",
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(plan))
        backend = QueueBackend(2, directory=tmp_path / "q")
        try:
            results = execute_cells(CELLS, backend=backend, workers=2)
        finally:
            backend.close()
        assert [run_digest(r) for r in results] == serial_digests
        assert not list(faults.tokens_dir(plan).iterdir())
        # The scheduler excluded the dead worker; the backend banned it.
        assert len(list((tmp_path / "q" / "banned").iterdir())) == 1

    def test_hang_reclaimed_by_lease_expiry(
        self, serial_digests, tmp_path, monkeypatch
    ):
        plan = faults.save_plan(
            faults.FaultPlan((faults.FaultEntry("hang"),), seed=5),
            tmp_path / "plan.json",
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(plan))
        # The hung worker never heartbeats: its lease's mtime stays at
        # the claim instant, the TTL expires, and the shard is reclaimed
        # and re-enqueued for a surviving worker -- the acceptance path.
        backend = QueueBackend(
            2, directory=tmp_path / "q", lease_ttl_s=2.0
        )
        try:
            results = execute_cells(CELLS, backend=backend, workers=2)
        finally:
            backend.close()
        assert [run_digest(r) for r in results] == serial_digests
        assert len(list((tmp_path / "q" / "banned").iterdir())) == 1

    def test_corrupt_reply_rejected_and_recomputed(
        self, serial_digests, tmp_path, monkeypatch
    ):
        plan = faults.save_plan(
            faults.FaultPlan(
                (faults.FaultEntry("corrupt-result"),), seed=5
            ),
            tmp_path / "plan.json",
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(plan))
        backend = QueueBackend(2, directory=tmp_path / "q")
        try:
            results = execute_cells(CELLS, backend=backend, workers=2)
        finally:
            backend.close()
        assert [run_digest(r) for r in results] == serial_digests
        assert not list(faults.tokens_dir(plan).iterdir())

    def test_in_cell_error_is_non_retriable(self):
        backend = QueueBackend(1)
        try:
            with pytest.raises(ShardFailure) as excinfo:
                execute_cells(
                    [
                        SystemCell(
                            "NoSuchSystem",
                            "resnet18_wrn50",
                            "S1",
                            0,
                            DURATION,
                        )
                    ],
                    backend=backend,
                    workers=1,
                )
        finally:
            backend.close()
        assert not excinfo.value.retriable
        assert excinfo.value.attempts == 1


class TestPullModel:
    def test_external_drain_worker_serves_a_prefilled_queue(
        self, tmp_path, serial_digests
    ):
        """Any process can attach: pre-fill a queue, drain it, read results."""
        layout = QueueLayout(tmp_path / "q").create(
            lease_ttl_s=30.0, poll_s=0.05
        )
        specs = make_shard_specs(CELLS, 1, "float64")
        for spec in specs:
            protocol.write_message_file(
                layout.pending / layout.message_name(spec.key),
                protocol.encode_shard_request(spec),
            )
        assert queue_worker_main(layout.root, drain=True) == 0
        assert not list(layout.pending.iterdir())
        ordered = {}
        for spec in specs:
            message = protocol.read_message_file(
                layout.results / layout.message_name(spec.key)
            )
            assert message["kind"] == "result"
            assert message["worker"].startswith("q")
            decoded = protocol.decode_shard_result(message)
            assert len(decoded.results) == len(spec.cells)
            ordered.update(zip(spec.indices, decoded.results))
        results = [ordered[i] for i in range(len(CELLS))]
        assert [run_digest(r) for r in results] == serial_digests

    def test_banned_worker_never_claims_again(self, tmp_path):
        """The exclusion contract on the queue transport: once the
        scheduler names a worker in ``excluded``, the ban marker retires
        it before its next claim -- a retried shard can never land on it.
        """
        layout = QueueLayout(tmp_path / "q").create(
            lease_ttl_s=30.0, poll_s=0.02
        )
        spec_a, = make_shard_specs(CELLS[:1], 1, "float64")
        spec_b, = make_shard_specs(CELLS[1:2], 1, "float64")
        worker = threading.Thread(
            target=queue_worker_main, args=(layout.root,), daemon=True
        )
        worker.start()
        protocol.write_message_file(
            layout.pending / layout.message_name(spec_a.key),
            protocol.encode_shard_request(spec_a),
        )
        deadline = time.monotonic() + 60.0
        result_a = layout.results / layout.message_name(spec_a.key)
        while not result_a.exists():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        worker_id = protocol.read_message_file(result_a)["worker"]
        # Ban the only worker: it must retire at its next claim check.
        (layout.banned / worker_id).touch()
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        # Work offered after retirement stays unclaimed: the banned
        # worker is gone, and a retried shard can never land on it.
        protocol.write_message_file(
            layout.pending / layout.message_name(spec_b.key),
            protocol.encode_shard_request(spec_b),
        )
        time.sleep(0.2)
        pending = [p.name for p in layout.pending.iterdir()]
        assert pending == [layout.message_name(spec_b.key)]
