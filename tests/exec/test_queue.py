"""Tests for the pull-model queue backend: claims, leases, reclaim, faults."""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.parallel import run_cells
from repro.errors import ConfigurationError
from repro.exec import (
    QueueBackend,
    ShardFailure,
    SystemCell,
    execute_cells,
    faults,
    make_backend,
    make_shard_specs,
    parse_backend,
    protocol,
    use_backend,
)
from repro.exec.queue import QueueLayout, queue_worker_main
from repro.reference import run_digest

DURATION = 60.0

CELLS = [
    SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0, DURATION),
    SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S4", 0, DURATION),
    SystemCell("OrinHigh-EOMU", "resnet18_wrn50", "S1", 0, DURATION),
]


@pytest.fixture(scope="module")
def serial_digests():
    return [run_digest(r) for r in run_cells(CELLS, jobs=1)]


class TestParseAndMake:
    def test_queue_spec_parses(self):
        assert parse_backend("queue") == ("queue", None)
        assert parse_backend("queue:3") == ("queue", 3)

    def test_make_backend_builds_queue(self, tmp_path):
        backend = make_backend(
            "queue:2", queue_dir=str(tmp_path / "q")
        )
        try:
            assert isinstance(backend, QueueBackend)
            assert backend.workers == 2
            assert backend.layout.root == tmp_path / "q"
            assert backend.layout.pending.is_dir()
        finally:
            backend.close()
        # A pinned directory is the caller's: close() must not remove it.
        assert (tmp_path / "q").is_dir()

    def test_owned_temp_directory_removed_on_close(self):
        backend = QueueBackend(1)
        root = backend.layout.root
        assert root.is_dir()
        backend.close()
        assert not root.exists()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            QueueBackend(0)

    def test_worker_refuses_a_non_queue_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            queue_worker_main(tmp_path / "not-a-queue", drain=True)


class TestQueueExecution:
    def test_bit_identical_to_serial(self, serial_digests):
        with use_backend("queue:2"):
            results = run_cells(CELLS, jobs=2)
        assert [run_digest(r) for r in results] == serial_digests

    def test_die_once_is_retried_and_killer_banned(
        self, serial_digests, tmp_path, monkeypatch
    ):
        plan = faults.save_plan(
            faults.FaultPlan((faults.FaultEntry("die-once"),), seed=5),
            tmp_path / "plan.json",
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(plan))
        backend = QueueBackend(2, directory=tmp_path / "q")
        try:
            results = execute_cells(CELLS, backend=backend, workers=2)
        finally:
            backend.close()
        assert [run_digest(r) for r in results] == serial_digests
        assert not list(faults.tokens_dir(plan).iterdir())
        # The scheduler excluded the dead worker; the backend banned it.
        assert len(list((tmp_path / "q" / "banned").iterdir())) == 1

    def test_hang_reclaimed_by_lease_expiry(
        self, serial_digests, tmp_path, monkeypatch
    ):
        plan = faults.save_plan(
            faults.FaultPlan((faults.FaultEntry("hang"),), seed=5),
            tmp_path / "plan.json",
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(plan))
        # The hung worker never heartbeats: its lease's mtime stays at
        # the claim instant, the TTL expires, and the shard is reclaimed
        # and re-enqueued for a surviving worker -- the acceptance path.
        backend = QueueBackend(
            2, directory=tmp_path / "q", lease_ttl_s=2.0
        )
        try:
            results = execute_cells(CELLS, backend=backend, workers=2)
        finally:
            backend.close()
        assert [run_digest(r) for r in results] == serial_digests
        assert len(list((tmp_path / "q" / "banned").iterdir())) == 1

    def test_corrupt_reply_rejected_and_recomputed(
        self, serial_digests, tmp_path, monkeypatch
    ):
        plan = faults.save_plan(
            faults.FaultPlan(
                (faults.FaultEntry("corrupt-result"),), seed=5
            ),
            tmp_path / "plan.json",
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(plan))
        backend = QueueBackend(2, directory=tmp_path / "q")
        try:
            results = execute_cells(CELLS, backend=backend, workers=2)
        finally:
            backend.close()
        assert [run_digest(r) for r in results] == serial_digests
        assert not list(faults.tokens_dir(plan).iterdir())

    def test_in_cell_error_is_non_retriable(self):
        backend = QueueBackend(1)
        try:
            with pytest.raises(ShardFailure) as excinfo:
                execute_cells(
                    [
                        SystemCell(
                            "NoSuchSystem",
                            "resnet18_wrn50",
                            "S1",
                            0,
                            DURATION,
                        )
                    ],
                    backend=backend,
                    workers=1,
                )
        finally:
            backend.close()
        assert not excinfo.value.retriable
        assert excinfo.value.attempts == 1


class TestPullModel:
    def test_external_drain_worker_serves_a_prefilled_queue(
        self, tmp_path, serial_digests
    ):
        """Any process can attach: pre-fill a queue, drain it, read results."""
        layout = QueueLayout(tmp_path / "q").create(
            lease_ttl_s=30.0, poll_s=0.05
        )
        specs = make_shard_specs(CELLS, 1, "float64")
        for spec in specs:
            protocol.write_message_file(
                layout.pending / layout.message_name(spec.key),
                protocol.encode_shard_request(spec),
            )
        assert queue_worker_main(layout.root, drain=True) == 0
        assert not list(layout.pending.iterdir())
        ordered = {}
        for spec in specs:
            message = protocol.read_message_file(
                layout.results / layout.message_name(spec.key)
            )
            assert message["kind"] == "result"
            assert message["worker"].startswith("q")
            decoded = protocol.decode_shard_result(message)
            assert len(decoded.results) == len(spec.cells)
            ordered.update(zip(spec.indices, decoded.results))
        results = [ordered[i] for i in range(len(CELLS))]
        assert [run_digest(r) for r in results] == serial_digests

    def test_banned_worker_never_claims_again(self, tmp_path):
        """The exclusion contract on the queue transport: once the
        scheduler names a worker in ``excluded``, the ban marker retires
        it before its next claim -- a retried shard can never land on it.
        """
        layout = QueueLayout(tmp_path / "q").create(
            lease_ttl_s=30.0, poll_s=0.02
        )
        spec_a, = make_shard_specs(CELLS[:1], 1, "float64")
        spec_b, = make_shard_specs(CELLS[1:2], 1, "float64")
        worker = threading.Thread(
            target=queue_worker_main, args=(layout.root,), daemon=True
        )
        worker.start()
        protocol.write_message_file(
            layout.pending / layout.message_name(spec_a.key),
            protocol.encode_shard_request(spec_a),
        )
        deadline = time.monotonic() + 60.0
        result_a = layout.results / layout.message_name(spec_a.key)
        while not result_a.exists():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        worker_id = protocol.read_message_file(result_a)["worker"]
        # Ban the only worker: it must retire at its next claim check.
        (layout.banned / worker_id).touch()
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        # Work offered after retirement stays unclaimed: the banned
        # worker is gone, and a retried shard can never land on it.
        protocol.write_message_file(
            layout.pending / layout.message_name(spec_b.key),
            protocol.encode_shard_request(spec_b),
        )
        time.sleep(0.2)
        pending = [p.name for p in layout.pending.iterdir()]
        assert pending == [layout.message_name(spec_b.key)]


class TestHeartbeatHardening:
    """The phantom-hang fix: a dead beat thread must surface, loudly."""

    def make_lease(self, tmp_path):
        lease = tmp_path / "lease.json"
        lease.write_text("{}\n")
        return lease

    def test_unexpected_beat_error_sets_failed(self, tmp_path, monkeypatch):
        from repro.exec.queue import _Heartbeat

        lease = self.make_lease(tmp_path)

        def explode(path, *args, **kwargs):
            raise PermissionError(13, "read-only filesystem", str(path))

        monkeypatch.setattr("repro.exec.queue.os.utime", explode)
        heartbeat = _Heartbeat(lease, interval_s=0.01)
        heartbeat.start()
        deadline = time.monotonic() + 10.0
        while not heartbeat.failed:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        heartbeat.stop()
        assert "PermissionError" in heartbeat.error
        assert "read-only filesystem" in heartbeat.error

    def test_vanished_lease_is_a_quiet_exit(self, tmp_path):
        from repro.exec.queue import _Heartbeat

        lease = self.make_lease(tmp_path)
        lease.unlink()  # reclaimed from under us before the first beat
        heartbeat = _Heartbeat(lease, interval_s=0.01)
        heartbeat.start()
        time.sleep(0.1)
        heartbeat.stop()
        assert not heartbeat.failed
        assert heartbeat.error is None

    def test_retriable_error_reply_collects_as_retriable(self, tmp_path):
        """A worker's heartbeat-failure reply reaches the scheduler as a
        *retriable* failure, unlike an in-cell error (deterministic)."""
        backend = QueueBackend(
            1, directory=tmp_path / "q", spawn=False
        )
        try:
            spec, = make_shard_specs(CELLS[:1], 1, "float64")
            protocol.write_message_file(
                backend.layout.results / backend.layout.message_name(
                    spec.key
                ),
                {
                    "v": protocol.PROTOCOL_VERSION,
                    "kind": "error",
                    "id": spec.key,
                    "error": "lease heartbeat thread failed mid-shard: "
                             "PermissionError: [Errno 13] denied",
                    "traceback": None,
                    "worker": "q999-dead",
                    "retriable": True,
                },
            )
            outcome = backend._collect(spec, {})
            assert isinstance(outcome, ShardFailure)
            assert outcome.retriable
            assert "retriable fault" in outcome.message
        finally:
            backend.close()


class TestWorkerLifecycle:
    """Graceful shutdown and orphan containment for queue workers."""

    def fill_queue(self, tmp_path, duration):
        layout = QueueLayout(tmp_path / "q").create(
            lease_ttl_s=30.0, poll_s=0.02
        )
        cell = SystemCell(
            "DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0, duration
        )
        spec, = make_shard_specs([cell], 1, "float64")
        protocol.write_message_file(
            layout.pending / layout.message_name(spec.key),
            protocol.encode_shard_request(spec),
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        return layout, spec, env

    def test_sigterm_releases_lease_back_to_pending(self, tmp_path):
        # A long prefix (~seconds of compute) so SIGTERM lands mid-shard.
        layout, spec, env = self.fill_queue(tmp_path, 36000.0)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker",
             "--queue", str(layout.root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            name = layout.message_name(spec.key)
            deadline = time.monotonic() + 60.0
            while (layout.pending / name).exists():
                assert time.monotonic() < deadline, "never claimed"
                time.sleep(0.02)
            time.sleep(0.3)  # let the shard get into compute
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The lease was *released*, not abandoned: the message is back in
        # pending/ for the next worker, and no lease file remains.
        assert (layout.pending / name).exists()
        assert layout.lease_of(spec.key) is None
        # No result was posted for the interrupted shard.
        assert not (layout.results / name).exists()

    def test_orphaned_worker_exits_when_spawner_dies(self, tmp_path):
        from repro.exec.queue import PARENT_PID_ENV

        layout, spec, env = self.fill_queue(tmp_path, DURATION)
        parent = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(600)"]
        )
        env[PARENT_PID_ENV] = str(parent.pid)
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker",
             "--queue", str(layout.root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # The worker serves the queue normally while its named
            # parent is alive...
            name = layout.message_name(spec.key)
            deadline = time.monotonic() + 120.0
            while not (layout.results / name).exists():
                assert time.monotonic() < deadline
                assert worker.poll() is None, "worker died early"
                time.sleep(0.05)
            # ...and exits on its own once the parent is gone, instead
            # of polling a dead daemon's queue forever.
            parent.kill()
            parent.wait()
            assert worker.wait(timeout=60.0) == 0
        finally:
            for proc in (worker, parent):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

    def test_recreate_clears_stale_stop_marker(self, tmp_path):
        first = QueueBackend(1, directory=tmp_path / "q", spawn=False)
        first.close()
        assert (tmp_path / "q" / "stop").exists()
        # A resumed service session reuses its queue directory: the new
        # backend's workers must not retire on arrival.
        second = QueueBackend(1, directory=tmp_path / "q", spawn=False)
        try:
            assert not second.layout.stop_marker.exists()
        finally:
            second.close()

    def test_missing_queue_dir_exits_2_on_direct_entry(self, tmp_path):
        _, _, env = self.fill_queue(tmp_path, DURATION)
        result = subprocess.run(
            [sys.executable, "-m", "repro.exec.worker",
             "--queue", str(tmp_path / "nope")],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 2
        assert result.stdout == ""
        lines = [l for l in result.stderr.splitlines() if l]
        assert len(lines) == 1
        assert lines[0].startswith("error: ")
        assert "not a queue directory" in lines[0]
