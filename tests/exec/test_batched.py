"""The batched multi-cell executor: bit-identity, planning, composition.

The contract under test, at every layer:

- cell level: ``run_cells_batched`` reproduces the serial per-cell
  digests exactly, K=1 degenerates to the serial code path, and the
  frozen ``digests_batched.json`` pins the batched smoke digests to the
  (pre-batching) float64 reference;
- planner level: batching groups by geometry signature, mixed numeric
  policies never share a batch key, observed shard walls re-weight the
  split loop, and the off-path plan is byte-identical to history;
- protocol level: the additive shard fields round-trip;
- composition: sharing clusters batch against each other bit-identically,
  and the service's coalesced dispatch fans back out per window.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import profiling
from repro.batching import ON, use_batching
from repro.errors import ConfigurationError
from repro.exec import protocol
from repro.exec.batched import BatchConductor, run_cells_batched
from repro.exec.shard import (
    ShardSpec,
    SystemCell,
    batch_signature,
    cell_batch_key,
    cell_key,
    execute_shard,
    note_shard_observation,
    observed_cost,
    plan_shards,
    reset_observed_costs,
    run_cell,
    shard_key,
    stream_signature,
)
from repro.numeric import active_policy, use_policy
from repro.reference import compute_section, reference_path, run_digest

POLICY = "float64"

CELLS = [
    SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0, 60.0),
    SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 1, 60.0),
    SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 60.0),
]


def batched_reference_path() -> Path:
    return Path(__file__).resolve().parents[1] / "reference" / (
        "digests_batched.json"
    )


@pytest.fixture(autouse=True)
def _clean_costs():
    reset_observed_costs()
    yield
    reset_observed_costs()


class TestBitIdentity:
    def test_batched_matches_serial_digests(self):
        serial = [run_digest(run_cell(cell)) for cell in CELLS]
        with use_batching(ON):
            pairs = run_cells_batched(CELLS)
        assert [run_digest(result) for result, _ in pairs] == serial
        assert all(snapshot is None for _, snapshot in pairs)

    def test_k1_is_the_serial_code_path(self, monkeypatch):
        # A single cell must not spin up lanes or a conductor at all.
        import repro.exec.batched as batched

        def boom(jobs):
            raise AssertionError("lane driver engaged for K=1")

        monkeypatch.setattr(batched, "run_lane_jobs", boom)
        with use_batching(ON):
            pairs = run_cells_batched(CELLS[:1])
        assert run_digest(pairs[0][0]) == run_digest(run_cell(CELLS[0]))

    def test_snapshot_alignment_validated(self):
        with pytest.raises(ConfigurationError):
            run_cells_batched(CELLS, snapshots=[None])

    def test_conductor_needs_a_lane(self):
        with pytest.raises(ConfigurationError):
            BatchConductor(0)


class TestDigestPin:
    def test_frozen_file_matches_float64_reference(self):
        # Batching must not mint its own truth: the pinned batched smoke
        # digests are byte-equal to the serial float64 reference.
        payload = json.loads(batched_reference_path().read_text())
        assert payload["policy"] == POLICY and payload["batch"] == "on"
        serial = json.loads(reference_path(POLICY).read_text())["smoke"]
        batched = payload["smoke"]
        cell_keys = [key for key in serial if key in batched]
        assert cell_keys, "no overlapping smoke entries"
        for key in batched:
            assert batched[key]["digest"] == serial[key]["digest"]

    def test_smoke_recomputes_under_batching(self):
        payload = json.loads(batched_reference_path().read_text())
        with use_policy(POLICY), use_batching(ON):
            computed = compute_section("smoke")
        for key, entry in payload["smoke"].items():
            assert computed[key]["digest"] == entry["digest"], key


class TestPlanner:
    def test_signatures(self):
        assert batch_signature(CELLS[0]) == ("system", "resnet18_wrn50")
        # System, scenario, seed, duration are deliberately ignored.
        assert batch_signature(CELLS[0]) == batch_signature(CELLS[2])

    def test_mixed_policies_never_share_a_batch_key(self):
        assert cell_batch_key("float64", CELLS[0]) != cell_batch_key(
            "float32", CELLS[0]
        )
        assert cell_batch_key("float64", CELLS[0]) == cell_batch_key(
            "float64", CELLS[1]
        )

    def test_off_path_plan_is_historical(self):
        shards = plan_shards(CELLS, 1)
        # Without batching, cells group by stream signature: the two S4
        # seeds share one stream-signature family, S1 is its own.
        signatures = {
            stream_signature(shard[0][1]) for shard in shards
        }
        assert len(shards) == len(signatures)

    def test_batching_groups_by_geometry(self):
        with use_batching(ON):
            shards = plan_shards(CELLS, 1)
        assert len(shards) == 1
        assert sorted(index for index, _ in shards[0]) == [0, 1, 2]

    def test_observed_costs_weight_the_split(self):
        # Two equal-sized stream groups (same scenario+seed, two systems
        # each).  Uniform weights split the first-encountered group; with
        # the second group observed as expensive, it must split instead.
        light = [
            SystemCell(system, "p", "S1", 0, 10.0)
            for system in ("OrinLow-Ekya", "OrinHigh-Ekya")
        ]
        heavy = [
            SystemCell(system, "p", "S4", 0, 10.0)
            for system in ("OrinLow-Ekya", "OrinHigh-Ekya")
        ]
        # Observations key on the *ambient* policy at planning time.
        policy = active_policy().name
        spec = ShardSpec(
            key=shard_key(policy, heavy),
            cells=tuple(heavy),
            indices=(0, 1),
            policy=policy,
        )
        note_shard_observation(spec, 20.0)
        assert observed_cost(cell_key(policy, heavy[0])) == 10.0
        assert observed_cost(cell_key(policy, light[0])) == 1.0
        shards = plan_shards(light + heavy, 3)
        assert len(shards) == 3
        split = [
            shard for shard in shards
            if len(shard) == 1 and shard[0][1].scenario == "S4"
        ]
        assert len(split) == 2, "the observed-heavy group did not split"

    def test_observation_guards(self):
        spec = ShardSpec(
            key=shard_key(POLICY, CELLS[:1]),
            cells=tuple(CELLS[:1]),
            indices=(0,),
            policy=POLICY,
        )
        note_shard_observation(spec, None)
        note_shard_observation(spec, 0.0)
        assert observed_cost(cell_key(POLICY, CELLS[0])) == 1.0


class TestProtocol:
    def test_shard_request_round_trip(self):
        spec = ShardSpec(
            key=shard_key(POLICY, CELLS[:2]),
            cells=tuple(CELLS[:2]),
            indices=(0, 1),
            policy=POLICY,
            batch="on",
            snapshots=(None, {"origin_duration_s": 30.0}),
            emit_snapshots=(True, False),
        )
        decoded = protocol.decode_shard_spec(
            protocol.decode_message(
                protocol.encode_message(protocol.encode_shard_request(spec))
            )
        )
        assert decoded.batch == "on"
        assert decoded.snapshots == (None, {"origin_duration_s": 30.0})
        assert decoded.emit_snapshots == (True, False)

    def test_off_path_request_bytes_unchanged(self):
        spec = ShardSpec(
            key=shard_key(POLICY, CELLS[:1]),
            cells=tuple(CELLS[:1]),
            indices=(0,),
            policy=POLICY,
        )
        message = protocol.encode_shard_request(spec)
        for field in ("batch", "snapshots", "emit_snapshots"):
            assert field not in message

    def test_result_round_trip_carries_wall_and_snapshots(self):
        result = run_cell(CELLS[2])
        message = protocol.encode_shard_result(
            "k", [result], None, snapshots=(None,), wall_s=1.25
        )
        decoded = protocol.decode_shard_result(
            protocol.decode_message(protocol.encode_message(message))
        )
        assert decoded.wall_s == 1.25
        assert decoded.snapshots == (None,)
        assert run_digest(decoded.results[0]) == run_digest(result)


class TestProfileReconciliation:
    def test_lane_phases_measure_compute_not_waiting(self):
        # Round compute is serialized through the conductor, so the sum
        # of per-phase exclusive seconds across all lanes must stay close
        # to the driver's wall time; without barrier-wait absorption it
        # would approach K times the wall.
        import time

        profiler = profiling.enable()
        try:
            started = time.perf_counter()
            with use_batching(ON):
                run_cells_batched(CELLS)
            wall = time.perf_counter() - started
        finally:
            profiling.disable()
        total = profiler.total_s()
        assert total > 0
        assert total <= wall * 1.5, (
            f"profiled {total:.3f}s vs wall {wall:.3f}s: lanes are "
            "charging barrier waits to their phases"
        )


class TestSharingComposition:
    def test_two_clusters_batch_bit_identically(self):
        # S4 and S1 drift-cluster apart, so sharing+batching runs two
        # cluster lanes in lockstep; every digest must match the
        # sharing-only (sequential) execution.
        fleet = [
            SystemCell(
                "DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", s, 120.0
            )
            for s in range(2)
        ] + [
            SystemCell(
                "DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", s, 120.0
            )
            for s in range(2)
        ]

        def digests(batch):
            spec = ShardSpec(
                key=shard_key(POLICY, fleet),
                cells=tuple(fleet),
                indices=tuple(range(len(fleet))),
                policy=POLICY,
                sharing="cluster",
                batch=batch,
            )
            results, _, _, snapshots, _ = execute_shard(spec)
            assert snapshots is None
            return [run_digest(result) for result in results]

        assert digests("on") == digests("off")
