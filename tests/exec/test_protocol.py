"""Tests for the JSON-lines shard protocol (exactness and robustness)."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.exec import Fig2Cell, ShardSpec, SystemCell
from repro.exec import protocol
from repro.core.phases import PhaseKind, PhaseRecord
from repro.core.results import RunResult
from repro.reference import run_digest


def synthetic_result(dtype=np.float64) -> RunResult:
    rng = np.random.default_rng(7)
    times = np.arange(0.0, 12.0, 0.4, dtype=np.float64)
    return RunResult(
        system="DaCapo-Spatiotemporal",
        scenario="S4",
        pair="resnet18_wrn50",
        times=times,
        correct=rng.random(len(times)) < 0.8,
        dropped=rng.random(len(times)) < 0.1,
        phases=(
            PhaseRecord(PhaseKind.LABEL, 0.0, 1.9375, samples=31),
            PhaseRecord(
                PhaseKind.RETRAIN, 1.9375, 5.1, samples=62,
                drift_detected=True,
            ),
            PhaseRecord(PhaseKind.IDLE, 5.1, 12.0),
        ),
        duration_s=12.0,
        energy_j=123.4567890123,
        average_power_w=10.2880657510,
    )


class TestResultRoundTrip:
    def test_digest_exact(self):
        result = synthetic_result()
        payload = protocol.encode_result(result)
        line = protocol.encode_message(
            {"v": protocol.PROTOCOL_VERSION, "kind": "x", "r": payload}
        )
        decoded = protocol.decode_result(
            protocol.decode_message(line)["r"]
        )
        assert run_digest(decoded) == run_digest(result)

    def test_array_dtypes_survive(self):
        result = synthetic_result()
        decoded = protocol.decode_result(
            json.loads(json.dumps(protocol.encode_result(result)))
        )
        assert decoded.times.dtype == result.times.dtype
        assert decoded.correct.dtype == np.bool_
        np.testing.assert_array_equal(decoded.times, result.times)

    def test_float_bits_survive_json(self):
        # Scalars ride as plain JSON numbers: repr round-trips doubles.
        value = 0.1 + 0.2  # not exactly representable in decimal
        assert json.loads(json.dumps(value)) == value

    def test_malformed_result_payload(self):
        with pytest.raises(ProtocolError):
            protocol.decode_result({"system": "x"})


class TestCellRoundTrip:
    def test_system_cell(self):
        cell = SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", 3, 120.0)
        assert protocol.decode_cell(protocol.encode_cell(cell)) == cell

    def test_fig2_cell_and_default_duration(self):
        cell = Fig2Cell("student", "RTX3090", "resnet18_wrn50", "S5", 0, None)
        assert protocol.decode_cell(protocol.encode_cell(cell)) == cell

    def test_numpy_scalars_in_cells_coerce(self):
        # Sweeps built from numpy-derived grids leak np scalars into cell
        # fields; the round-tripped cell must equal the Python-literal one.
        cell = SystemCell(
            "OrinHigh-Ekya", "resnet18_wrn50", "S1",
            seed=np.int64(3), duration_s=np.float64(120.0),
        )
        line = protocol.encode_message(protocol.encode_cell(cell))
        decoded = protocol.decode_cell(json.loads(line))
        assert decoded == SystemCell(
            "OrinHigh-Ekya", "resnet18_wrn50", "S1", 3, 120.0
        )
        assert isinstance(decoded.seed, int)
        assert isinstance(decoded.duration_s, float)

    def test_unknown_cell_type(self):
        with pytest.raises(ProtocolError):
            protocol.encode_cell("not-a-cell")
        with pytest.raises(ProtocolError):
            protocol.decode_cell({"type": "warp-drive"})


class TestShardMessages:
    def spec(self):
        return ShardSpec(
            key="abc123",
            cells=(
                SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", 0, 60.0),
            ),
            indices=(5,),
            policy="float32",
            profile=True,
            cache_root="/tmp/cache",
        )

    def test_request_round_trip(self):
        request = protocol.encode_shard_request(self.spec())
        decoded = protocol.decode_shard_spec(
            protocol.decode_message(protocol.encode_message(request))
        )
        assert decoded.key == "abc123"
        assert decoded.cells == self.spec().cells
        assert decoded.policy == "float32"
        assert decoded.profile is True
        assert decoded.cache_root == "/tmp/cache"
        # Worker-side indices are synthetic; the parent keeps the real ones.
        assert decoded.indices == (0,)

    def test_result_message_round_trip(self):
        result = synthetic_result()
        message = protocol.encode_shard_result(
            "abc123", [result], {"retrain": {"total_s": 1.0, "count": 2}}
        )
        decoded = protocol.decode_shard_result(
            protocol.decode_message(protocol.encode_message(message))
        )
        assert decoded.key == "abc123"
        assert run_digest(decoded.results[0]) == run_digest(result)
        assert decoded.profile == {"retrain": {"total_s": 1.0, "count": 2}}

    def test_messages_are_single_lines(self):
        request = protocol.encode_shard_request(self.spec())
        assert "\n" not in protocol.encode_message(request)

    def test_snapshot_fields_round_trip(self):
        snap = {"v": 1, "origin_duration_s": 60.0, "clock": 42.5}
        spec = replace(self.spec(), snapshot=snap, emit_snapshot=True)
        request = protocol.encode_shard_request(spec)
        decoded = protocol.decode_shard_spec(
            protocol.decode_message(protocol.encode_message(request))
        )
        assert decoded.snapshot == snap
        assert decoded.emit_snapshot is True

        result = synthetic_result()
        message = protocol.encode_shard_result(
            "abc123", [result], None, snap
        )
        back = protocol.decode_shard_result(
            protocol.decode_message(protocol.encode_message(message))
        )
        assert back.snapshot == snap

    def test_snapshot_fields_absent_by_default(self):
        # Batch shards keep their historical byte shape: no snapshot keys
        # unless the spec carries them.
        request = protocol.encode_shard_request(self.spec())
        assert "snapshot" not in request
        assert "emit_snapshot" not in request
        decoded = protocol.decode_shard_spec(
            protocol.decode_message(protocol.encode_message(request))
        )
        assert decoded.snapshot is None
        assert decoded.emit_snapshot is False
        message = protocol.encode_shard_result("abc123", [], None)
        assert "snapshot" not in message
        assert protocol.decode_shard_result(message).snapshot is None

    def test_numpy_scalars_in_profile_snapshots(self):
        message = {
            "v": protocol.PROTOCOL_VERSION,
            "kind": "result",
            "id": "x",
            "results": [],
            "profile": {
                "retrain": {
                    "total_s": np.float64(1.5), "count": np.int64(3)
                },
                "flag": np.bool_(True),
            },
        }
        decoded = protocol.decode_message(protocol.encode_message(message))
        assert decoded["profile"]["retrain"] == {"total_s": 1.5, "count": 3}
        assert decoded["profile"]["flag"] is True


class TestFraming:
    def test_version_mismatch_rejected(self):
        line = json.dumps({"v": 999, "kind": "hello"})
        with pytest.raises(ProtocolError, match="version mismatch"):
            protocol.decode_message(line)

    def test_undecodable_line_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message("[1, 2, 3]")

    def test_blank_lines_are_skipped_not_eof(self, tmp_path):
        # ssh channels can emit empty keepalive lines mid-conversation;
        # only a true EOF may read as "the worker is gone".
        path = tmp_path / "stream.jsonl"
        with path.open("w") as handle:
            handle.write("\n\n")
            protocol.write_message(
                handle, {"v": protocol.PROTOCOL_VERSION, "kind": "hello"}
            )
            handle.write("\n")
        with path.open() as handle:
            assert protocol.read_message(handle)["kind"] == "hello"
            assert protocol.read_message(handle) is None

    def test_stream_read_write(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with path.open("w") as handle:
            protocol.write_message(
                handle, {"v": protocol.PROTOCOL_VERSION, "kind": "hello"}
            )
            protocol.write_message(
                handle, {"v": protocol.PROTOCOL_VERSION, "kind": "shutdown"}
            )
        with path.open() as handle:
            first = protocol.read_message(handle)
            second = protocol.read_message(handle)
            third = protocol.read_message(handle)
        assert first["kind"] == "hello"
        assert second["kind"] == "shutdown"
        assert third is None
