"""End-to-end retry/resume: killed sweeps finish identically on --resume."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import ShardFailure
from repro.sweep import run_sweep, spec_from_mapping, write_outputs
from repro.sweep.run import ABORT_ENV, journal_path


def tiny_spec(**sweep_updates):
    data = {
        "sweep": {"name": "resume-tiny", "title": "Resume tiny fleet"},
        "axes": {
            "systems": ["DaCapo-Spatiotemporal", "OrinHigh-Ekya"],
            "pairs": ["resnet18_wrn50"],
            "scenarios": ["S1"],
            "durations": [60.0],
        },
        "aggregate": {
            "group_by": ["policy", "system"],
            "percentiles": [50],
            "metrics": ["accuracy", "drop_rate"],
        },
    }
    data["sweep"].update(sweep_updates)
    return spec_from_mapping(data)


class TestResume:
    def test_killed_then_resumed_matches_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        """The acceptance criterion: abort a sweep mid-flight (after its
        first journaled shard), resume it, and get a document
        byte-identical to an uninterrupted run's."""
        clean_dir = tmp_path / "clean"
        resumed_dir = tmp_path / "resumed"
        spec = tiny_spec()

        clean = run_sweep(spec, jobs=1, out_dir=clean_dir)
        write_outputs(clean, clean_dir)

        monkeypatch.setenv(ABORT_ENV, "1")
        with pytest.raises(ShardFailure, match="injected abort"):
            run_sweep(spec, jobs=1, out_dir=resumed_dir)
        monkeypatch.delenv(ABORT_ENV)
        # The journal holds the completed shard the "kill" left behind.
        assert journal_path(resumed_dir, "resume-tiny").exists()

        resumed = run_sweep(spec, jobs=1, out_dir=resumed_dir, resume=True)
        assert resumed.extras["resumed_cells"] >= 1
        write_outputs(resumed, resumed_dir)

        clean_doc = (clean_dir / "sweep_resume-tiny.json").read_bytes()
        resumed_doc = (resumed_dir / "sweep_resume-tiny.json").read_bytes()
        assert clean_doc == resumed_doc
        assert resumed.report == clean.report

    def test_full_journal_resumes_without_executing(self, tmp_path):
        out = tmp_path / "out"
        spec = tiny_spec(name="resume-full")
        first = run_sweep(spec, jobs=1, out_dir=out)
        again = run_sweep(spec, jobs=1, out_dir=out, resume=True)
        assert again.extras["resumed_cells"] == len(
            first.extras["cells"]
        )
        assert again.extras["cells"] == first.extras["cells"]
        assert again.rows == first.rows

    def test_resume_requires_out_dir(self):
        with pytest.raises(ConfigurationError, match="output directory"):
            run_sweep(tiny_spec(), jobs=1, resume=True)

    def test_resume_refuses_a_different_plan(self, tmp_path):
        out = tmp_path / "out"
        run_sweep(tiny_spec(name="resume-a"), jobs=1, out_dir=out)
        # Same sweep name, different grid -> different fingerprint.
        changed = spec_from_mapping({
            "sweep": {"name": "resume-a", "title": "changed"},
            "axes": {
                "systems": ["OrinHigh-Ekya"],
                "pairs": ["resnet18_wrn50"],
                "scenarios": ["S4"],
                "durations": [60.0],
            },
        })
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(changed, jobs=1, out_dir=out, resume=True)

    def test_abort_env_garbage_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ABORT_ENV, "soon")
        with pytest.raises(ConfigurationError, match=ABORT_ENV):
            run_sweep(tiny_spec(), jobs=1, out_dir=tmp_path)


class TestResumeAcrossBackends:
    def test_journal_written_under_subprocess_backend_resumes_serially(
        self, tmp_path, monkeypatch
    ):
        """Journals are keyed per cell (no worker count, no transport), so
        a sweep journaled over subprocess workers resumes serially."""
        out = tmp_path / "out"
        spec = tiny_spec(name="resume-xbackend")
        monkeypatch.setenv(ABORT_ENV, "1")
        with pytest.raises(ShardFailure):
            run_sweep(spec, jobs=2, backend="subprocess:2", out_dir=out)
        monkeypatch.delenv(ABORT_ENV)
        resumed = run_sweep(spec, jobs=1, backend="serial",
                            out_dir=out, resume=True)
        clean = run_sweep(spec, jobs=1)
        assert resumed.extras["resumed_cells"] >= 1
        assert resumed.extras["cells"] == clean.extras["cells"]
        assert resumed.rows == clean.rows
