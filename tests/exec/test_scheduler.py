"""Tests for the retrying scheduler and the resume journal."""

import json
import time

import numpy as np
import pytest

from repro.core.phases import PhaseKind, PhaseRecord
from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.exec import (
    Scheduler,
    ShardFailure,
    ShardQuarantined,
    ShardResult,
    SweepJournal,
    SystemCell,
    backoff_delay,
    cell_key,
    faults,
    make_shard_specs,
)
from repro.exec.faults import FaultEntry, FaultPlan, save_plan
from repro.reference import run_digest


def tiny_result(seed: int = 0) -> RunResult:
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, 4.0, 0.5)
    return RunResult(
        system="OrinHigh-Ekya",
        scenario="S1",
        pair="resnet18_wrn50",
        times=times,
        correct=rng.random(len(times)) < 0.7,
        dropped=np.zeros(len(times), dtype=bool),
        phases=(PhaseRecord(PhaseKind.IDLE, 0.0, 4.0),),
        duration_s=4.0,
        energy_j=1.0,
        average_power_w=0.25,
    )


def specs_for(num_cells: int, jobs: int = 2):
    cells = [
        SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", seed, 60.0)
        for seed in range(num_cells)
    ]
    return make_shard_specs(cells, jobs, "float64")


class FlakyBackend:
    """Succeeds each shard only after ``failures_per_shard`` failures."""

    name = "process"  # not "serial": exercise the multi-process paths

    def __init__(self, failures_per_shard: int = 1) -> None:
        self.failures_per_shard = failures_per_shard
        self.attempts: dict[str, int] = {}
        self.excluded_seen: list[frozenset] = []

    def run(self, specs, excluded=frozenset()):
        self.excluded_seen.append(excluded)
        outcomes = []
        for spec in specs:
            count = self.attempts.get(spec.key, 0) + 1
            self.attempts[spec.key] = count
            if count <= self.failures_per_shard:
                outcomes.append(
                    ShardFailure(
                        "synthetic failure",
                        shard_key=spec.key,
                        worker=f"w{count}",
                    )
                )
            else:
                outcomes.append(
                    ShardResult(
                        key=spec.key,
                        results=tuple(
                            tiny_result(cell.seed) for cell in spec.cells
                        ),
                    )
                )
        return outcomes

    def close(self):
        pass


class TestScheduler:
    def test_retries_until_success(self):
        backend = FlakyBackend(failures_per_shard=2)
        specs = specs_for(2)
        outcomes = Scheduler(backend, max_attempts=3).run(specs)
        assert all(isinstance(o, ShardResult) for o in outcomes)
        assert [o.key for o in outcomes] == [s.key for s in specs]
        assert all(n == 3 for n in backend.attempts.values())

    def test_raises_after_bounded_attempts(self):
        backend = FlakyBackend(failures_per_shard=99)
        with pytest.raises(ShardFailure) as excinfo:
            Scheduler(backend, max_attempts=2).run(specs_for(1))
        assert excinfo.value.attempts == 2
        assert all(n == 2 for n in backend.attempts.values())

    def test_failed_workers_are_excluded_on_retry(self):
        backend = FlakyBackend(failures_per_shard=1)
        Scheduler(backend, max_attempts=2).run(specs_for(1))
        first, second = backend.excluded_seen
        assert first == frozenset()
        assert second == frozenset({"w1"})

    def test_on_complete_fires_once_per_shard(self):
        backend = FlakyBackend(failures_per_shard=1)
        seen = []
        Scheduler(
            backend,
            max_attempts=3,
            on_complete=lambda spec, result: seen.append(spec.key),
        ).run(specs_for(3))
        assert sorted(seen) == sorted(s.key for s in specs_for(3))

    def test_on_complete_exception_aborts_immediately(self):
        backend = FlakyBackend(failures_per_shard=0)

        def abort(spec, result):
            raise ShardFailure("injected abort")

        with pytest.raises(ShardFailure, match="injected abort"):
            Scheduler(backend, on_complete=abort).run(specs_for(2))
        # The abort is not a retriable shard outcome: one attempt only.
        assert max(backend.attempts.values()) == 1

    def test_rejects_bad_max_attempts(self):
        with pytest.raises(ConfigurationError):
            Scheduler(FlakyBackend(), max_attempts=0)

    def test_rejects_bad_quarantine_after(self):
        with pytest.raises(ConfigurationError):
            Scheduler(FlakyBackend(), quarantine_after=0)

    def test_poison_shard_quarantined_naming_killers(self):
        # FlakyBackend blames a different worker each attempt, so two
        # failures = two distinct killers: quarantine fires before the
        # attempts budget is spent, and names both workers.
        backend = FlakyBackend(failures_per_shard=99)
        with pytest.raises(ShardQuarantined) as excinfo:
            Scheduler(
                backend,
                max_attempts=5,
                quarantine_after=2,
                backoff_base_s=0,
            ).run(specs_for(1))
        assert excinfo.value.retriable is False
        assert excinfo.value.attempts == 2
        assert "w1" in str(excinfo.value) and "w2" in str(excinfo.value)
        assert all(n == 2 for n in backend.attempts.values())

    def test_anonymous_workers_never_quarantine(self):
        # The process pool cannot name its workers; without killer
        # identities the attempts bound must govern alone.
        backend = FlakyBackend(failures_per_shard=99)
        backend_run = backend.run

        def anonymize(specs, excluded=frozenset()):
            outcomes = backend_run(specs, excluded)
            for outcome in outcomes:
                if isinstance(outcome, ShardFailure):
                    outcome.worker = None
            return outcomes

        backend.run = anonymize
        with pytest.raises(ShardFailure) as excinfo:
            Scheduler(
                backend,
                max_attempts=3,
                quarantine_after=2,
                backoff_base_s=0,
            ).run(specs_for(1))
        assert not isinstance(excinfo.value, ShardQuarantined)
        assert excinfo.value.attempts == 3

    def test_batch_successes_journal_before_fatal_raises(self):
        # The mid-batch journal-loss fix: a non-retriable failure in a
        # batch must not raise until the batch's successes have reached
        # on_complete -- otherwise --resume recomputes finished shards.
        specs = specs_for(3, jobs=3)
        poison_key = specs[1].key

        class MixedBackend:
            name = "process"

            def run(self, inner, excluded=frozenset()):
                return [
                    ShardFailure(
                        "deterministic cell bug",
                        shard_key=spec.key,
                        retriable=False,
                    )
                    if spec.key == poison_key
                    else ShardResult(
                        key=spec.key,
                        results=tuple(
                            tiny_result(c.seed) for c in spec.cells
                        ),
                    )
                    for spec in inner
                ]

            def close(self):
                pass

        journaled = []
        with pytest.raises(ShardFailure, match="cell bug"):
            Scheduler(
                MixedBackend(),
                on_complete=lambda spec, result: journaled.append(
                    spec.key
                ),
            ).run(specs)
        assert sorted(journaled) == sorted(
            s.key for s in specs if s.key != poison_key
        )

    def test_retries_wait_out_the_backoff_window(self):
        backend = FlakyBackend(failures_per_shard=1)
        specs = specs_for(1)
        start = time.monotonic()
        Scheduler(backend, backoff_base_s=0.05, backoff_cap_s=1.0).run(
            specs
        )
        elapsed = time.monotonic() - start
        assert elapsed >= backoff_delay(specs[0].key, 1, 0.05, 1.0)


class TestBackoffDelay:
    def test_deterministic(self):
        assert backoff_delay("k", 1) == backoff_delay("k", 1)

    def test_jitter_decorrelates_shards(self):
        assert backoff_delay("k1", 1) != backoff_delay("k2", 1)

    def test_exponential_growth_with_bounded_jitter(self):
        base = 0.25
        for attempt in (1, 2, 3):
            delay = backoff_delay("k", attempt, base, cap_s=1e9)
            floor = base * 2 ** (attempt - 1)
            assert floor <= delay < 2 * floor

    def test_cap_bounds_the_wait(self):
        assert backoff_delay("k", 20, 0.25, 3.0) == 3.0

    def test_zero_base_disables_pacing(self):
        assert backoff_delay("k", 5, 0.0) == 0.0

    def test_missing_outcome_is_a_failure_not_a_success(self):
        # A backend bug (dispatch thread dying, misaligned outcome list)
        # must never be journaled as a completed shard.
        class BrokenBackend:
            name = "process"

            def run(self, specs, excluded=frozenset()):
                return [None for _ in specs]

            def close(self):
                pass

        with pytest.raises(ShardFailure, match="no outcome"):
            Scheduler(BrokenBackend(), max_attempts=2).run(specs_for(1))


class TestMakeShardSpecs:
    def test_specs_carry_context_and_indices(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        cells = [
            SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", 0, 60.0),
            SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 60.0),
            SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S4", 0, 60.0),
        ]
        specs = make_shard_specs(
            cells, 2, "float32", profile=True, cache_root="/tmp/somewhere"
        )
        assert all(spec.policy == "float32" for spec in specs)
        assert all(spec.profile for spec in specs)
        assert all(spec.cache_root == "/tmp/somewhere" for spec in specs)
        covered = sorted(i for spec in specs for i in spec.indices)
        assert covered == [0, 1, 2]

    def test_keys_are_content_stable(self):
        first = specs_for(3, jobs=1)
        again = specs_for(3, jobs=1)
        assert [s.key for s in first] == [s.key for s in again]
        # A different policy is a different identity.
        cells = [
            SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", 0, 60.0)
        ]
        f64 = make_shard_specs(cells, 1, "float64")[0].key
        f32 = make_shard_specs(cells, 1, "float32")[0].key
        assert f64 != f32


class TestSweepJournal:
    def entry(self, seed=0):
        cell = SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", seed, 60.0)
        spec = make_shard_specs([cell], 1, "float64")[0]
        result = ShardResult(
            key=spec.key, results=(tiny_result(seed),)
        )
        return cell, spec, result

    def test_record_and_resume_round_trip(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        journal = SweepJournal(path, "fp1")
        cell, spec, result = self.entry()
        journal.record(spec, result)

        resumed = SweepJournal(path, "fp1", resume=True)
        key = cell_key("float64", cell)
        assert len(resumed) == 1
        restored = resumed.lookup(key)
        assert restored is not None
        assert run_digest(restored) == run_digest(result.results[0])
        assert resumed.lookup("missing") is None

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        SweepJournal(path, "fp1")
        with pytest.raises(ConfigurationError, match="different sweep"):
            SweepJournal(path, "fp2", resume=True)

    def test_non_journal_file_refused(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        path.write_text("just some text\n")
        with pytest.raises(ConfigurationError):
            SweepJournal(path, "fp1", resume=True)

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        journal = SweepJournal(path, "fp1")
        cell, spec, result = self.entry()
        journal.record(spec, result)
        with path.open("a") as handle:
            handle.write('{"kind":"shard","entr')  # killed mid-write
        resumed = SweepJournal(path, "fp1", resume=True)
        assert len(resumed) == 1

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        journal = SweepJournal(path, "fp1")
        _, spec, result = self.entry()
        journal.record(spec, result)
        fresh = SweepJournal(path, "fp1")  # no resume: a new run
        assert len(fresh) == 0
        assert len(path.read_text().splitlines()) == 1  # header only

    def test_header_is_versioned(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        SweepJournal(path, "fp1")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["fingerprint"] == "fp1"
        assert isinstance(header["version"], int)

    def test_header_lands_atomically(self, tmp_path):
        # Crash-safe creation: the header arrives by temp-file + rename,
        # so no .tmp sibling may survive a successful open.
        path = tmp_path / "sweep.journal.jsonl"
        SweepJournal(path, "fp1")
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_injected_torn_write_survives_resume(
        self, tmp_path, monkeypatch
    ):
        # The torn-journal-write fault: record() flushes a prefix of the
        # line and "dies"; the next --resume must shrug off the torn
        # tail, and re-recording the shard must complete the journal.
        plan = save_plan(
            FaultPlan((FaultEntry("torn-journal-write"),), seed=9),
            tmp_path / "plan.json",
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(plan))
        path = tmp_path / "sweep.journal.jsonl"
        journal = SweepJournal(path, "fp1")
        cell, spec, result = self.entry()
        with pytest.raises(ShardFailure, match="torn journal"):
            journal.record(spec, result)
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + the torn prefix
        with pytest.raises(json.JSONDecodeError):
            json.loads(lines[1])
        resumed = SweepJournal(path, "fp1", resume=True)
        assert len(resumed) == 0  # the torn shard simply reruns
        resumed.record(spec, result)  # fault disarmed: completes now
        again = SweepJournal(path, "fp1", resume=True)
        assert again.lookup(cell_key("float64", cell)) is not None
