"""Table III reproduction: parameter counts and GFLOPs of all six models.

These are the paper's headline model statistics; the specs must land within
0.5% of every published number.
"""

import pytest

from repro.models import get_model

#: (model, paper params in millions, paper GFLOPs) -- Table III verbatim.
TABLE_III = [
    ("resnet18", 11.7, 1.82),
    ("resnet34", 21.8, 3.67),
    ("vit_b_32", 88.2, 4.37),
    ("wide_resnet50_2", 68.9, 11.43),
    ("vit_b_16", 86.6, 16.87),
    ("wide_resnet101_2", 126.9, 22.80),
]


@pytest.mark.parametrize("name,paper_params,paper_gflops", TABLE_III)
def test_params_match_table3(name, paper_params, paper_gflops):
    model = get_model(name)
    assert model.params / 1e6 == pytest.approx(paper_params, rel=0.005)


@pytest.mark.parametrize("name,paper_params,paper_gflops", TABLE_III)
def test_gflops_match_table3(name, paper_params, paper_gflops):
    model = get_model(name)
    assert model.gflops == pytest.approx(paper_gflops, rel=0.005)


def test_exact_reference_params():
    # Torchvision ground-truth parameter counts (the numbers Table III rounds).
    assert get_model("resnet18").params == 11_689_512
    assert get_model("resnet34").params == 21_797_672
    assert get_model("wide_resnet50_2").params == 68_883_240
    assert get_model("wide_resnet101_2").params == 126_886_696
    assert get_model("vit_b_16").params == 86_567_656
    assert get_model("vit_b_32").params == 88_224_232


def test_teachers_cost_more_than_students():
    for student, teacher in [
        ("resnet18", "wide_resnet50_2"),
        ("vit_b_32", "vit_b_16"),
        ("resnet34", "wide_resnet101_2"),
    ]:
        assert get_model(teacher).gflops > get_model(student).gflops
