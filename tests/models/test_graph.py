"""Unit tests for ModelGraph aggregation."""

import pytest

from repro.errors import ModelSpecError
from repro.models import Conv2d, Linear, ModelGraph, Norm
from repro.models.graph import TRAINING_MACS_FACTOR


def tiny_model() -> ModelGraph:
    return ModelGraph(
        name="tiny",
        layers=(
            Conv2d(name="conv", in_channels=3, out_channels=8,
                   kernel=3, stride=1, padding=1, in_size=8),
            Norm(name="bn", channels=8),
            Linear(name="fc", in_features=8, out_features=4),
        ),
        input_size=8,
        num_classes=4,
    )


class TestModelGraph:
    def test_params_sum(self):
        model = tiny_model()
        assert model.params == 3 * 9 * 8 + 16 + (8 * 4 + 4)

    def test_macs_sum(self):
        model = tiny_model()
        assert model.macs() == 64 * 27 * 8 + 8 * 4

    def test_macs_scale_with_batch(self):
        model = tiny_model()
        assert model.macs(batch=4) == 4 * model.macs(batch=1)

    def test_training_macs_factor(self):
        model = tiny_model()
        assert model.training_macs(2) == TRAINING_MACS_FACTOR * model.macs(2)

    def test_gemms_worklist(self):
        model = tiny_model()
        gemms = model.gemms(batch=2)
        assert len(gemms) == 2  # conv + fc; norm has none
        assert gemms[0].m == 2 * 64

    def test_layer_lookup(self):
        assert tiny_model().layer("bn").params == 16

    def test_layer_lookup_missing(self):
        with pytest.raises(ModelSpecError):
            tiny_model().layer("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelSpecError, match="duplicate"):
            ModelGraph(
                name="dup",
                layers=(
                    Norm(name="x", channels=4),
                    Norm(name="x", channels=4),
                ),
            )

    def test_activation_elems(self):
        model = tiny_model()
        per_sample = 8 * 8 * 8 + 4  # conv output + fc output
        assert model.activation_elems(batch=3) == 3 * per_sample

    def test_summary_mentions_name(self):
        assert "tiny" in tiny_model().summary()
