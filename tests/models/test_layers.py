"""Unit tests for layer descriptors and GEMM lowering."""

import pytest

from repro.errors import ModelSpecError
from repro.models import Attention, Conv2d, Gemm, Linear, Norm, Pool
from repro.models.layers import conv_out_size


class TestGemm:
    def test_macs(self):
        assert Gemm(2, 3, 4).macs == 24

    def test_scaled_batch(self):
        assert Gemm(2, 3, 4).scaled_batch(8) == Gemm(16, 3, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelSpecError):
            Gemm(0, 3, 4)


class TestConvOutSize:
    def test_stride1_same_padding(self):
        assert conv_out_size(56, 3, 1, 1) == 56

    def test_stride2(self):
        assert conv_out_size(224, 7, 2, 3) == 112

    def test_maxpool_geometry(self):
        assert conv_out_size(112, 3, 2, 1) == 56

    def test_patch_embedding(self):
        assert conv_out_size(224, 16, 16, 0) == 14


class TestConv2d:
    def make(self, **kwargs):
        defaults = dict(
            name="c", in_channels=64, out_channels=128,
            kernel=3, stride=2, padding=1, in_size=56,
        )
        defaults.update(kwargs)
        return Conv2d(**defaults)

    def test_params_no_bias(self):
        assert self.make().params == 64 * 9 * 128

    def test_params_with_bias(self):
        assert self.make(bias=True).params == 64 * 9 * 128 + 128

    def test_im2col_gemm(self):
        (g,) = self.make().gemms()
        assert g == Gemm(m=28 * 28, k=64 * 9, n=128)

    def test_gemm_batch_scales_m(self):
        (g,) = self.make().gemms(batch=4)
        assert g.m == 4 * 28 * 28

    def test_out_elems(self):
        assert self.make().out_elems == 28 * 28 * 128

    def test_invalid_spec(self):
        with pytest.raises(ModelSpecError):
            Conv2d(name="bad", in_channels=0, out_channels=8, in_size=8)


class TestLinear:
    def test_params(self):
        assert Linear(name="fc", in_features=512, out_features=10).params == 5130

    def test_params_no_bias(self):
        layer = Linear(name="fc", in_features=512, out_features=10, bias=False)
        assert layer.params == 5120

    def test_gemm(self):
        (g,) = Linear(name="fc", in_features=512, out_features=10).gemms(16)
        assert g == Gemm(16, 512, 10)

    def test_tokens_scale_rows(self):
        layer = Linear(name="mlp", in_features=8, out_features=8, tokens=50)
        (g,) = layer.gemms(2)
        assert g.m == 100

    def test_invalid(self):
        with pytest.raises(ModelSpecError):
            Linear(name="fc", in_features=0, out_features=10)


class TestNormPool:
    def test_norm_params(self):
        assert Norm(name="bn", channels=64).params == 128

    def test_norm_no_gemms(self):
        assert Norm(name="bn", channels=64).gemms() == ()

    def test_pool_is_free(self):
        pool = Pool(name="p")
        assert pool.params == 0
        assert pool.macs() == 0

    def test_norm_invalid(self):
        with pytest.raises(ModelSpecError):
            Norm(name="bn", channels=0)


class TestAttention:
    def make(self):
        return Attention(name="attn", dim=768, heads=12, seq=197)

    def test_params(self):
        # QKV (768 -> 2304 + bias) plus output projection (768 -> 768 + bias).
        expected = 768 * 2304 + 2304 + 768 * 768 + 768
        assert self.make().params == expected

    def test_projection_gemms(self):
        qkv, proj = self.make().projection_gemms()
        assert qkv == Gemm(197, 768, 2304)
        assert proj == Gemm(197, 768, 768)

    def test_attention_gemms_per_head(self):
        gemms = self.make().attention_gemms()
        assert len(gemms) == 2 * 12
        score = gemms[0]
        assert score == Gemm(197, 64, 197)

    def test_macs_convention_flag(self):
        attn = self.make()
        with_bmm = attn.macs(1, include_attention_bmm=True)
        without = attn.macs(1, include_attention_bmm=False)
        assert with_bmm - without == 2 * 12 * 197 * 64 * 197

    def test_head_divisibility_enforced(self):
        with pytest.raises(ModelSpecError):
            Attention(name="bad", dim=100, heads=12, seq=10)
