"""Tests for the model registry and pairs."""

import pytest

from repro.errors import ModelSpecError
from repro.models import MODEL_PAIRS, get_model, get_pair
from repro.models.zoo import PROXY_CONFIGS, get_proxy_config


class TestRegistry:
    def test_get_model_caches(self):
        assert get_model("resnet18") is get_model("resnet18")

    def test_unknown_model(self):
        with pytest.raises(ModelSpecError, match="unknown model"):
            get_model("resnet999")

    def test_all_pairs_resolve(self):
        for pair in MODEL_PAIRS.values():
            assert pair.student_graph().name == pair.student
            assert pair.teacher_graph().name == pair.teacher

    def test_paper_pairs_present(self):
        assert set(MODEL_PAIRS) == {
            "resnet18_wrn50", "vit_b32_b16", "resnet34_wrn101"
        }

    def test_unknown_pair(self):
        with pytest.raises(ModelSpecError, match="unknown model pair"):
            get_pair("nope")


class TestProxyConfigs:
    def test_every_model_has_proxy(self):
        for pair in MODEL_PAIRS.values():
            assert pair.student in PROXY_CONFIGS
            assert pair.teacher in PROXY_CONFIGS

    def test_teacher_proxy_has_more_capacity(self):
        for pair in MODEL_PAIRS.values():
            student = get_proxy_config(pair.student)
            teacher = get_proxy_config(pair.teacher)
            assert sum(teacher.hidden_sizes) > sum(student.hidden_sizes)

    def test_vits_more_precision_sensitive(self):
        for vit in ("vit_b_32", "vit_b_16"):
            assert get_proxy_config(vit).precision_sensitivity > 1.0
        for cnn in ("resnet18", "wide_resnet50_2"):
            assert get_proxy_config(cnn).precision_sensitivity == 1.0

    def test_unknown_proxy(self):
        with pytest.raises(ModelSpecError):
            get_proxy_config("nope")
