"""Dtype-policy plumbing: resolution, threading, cache keys, stability.

Parametrizes the stream -> learn -> MX substrate over both numeric
policies and pins the contracts the refactor introduced:

- policy resolution (env, aliases, ambient override, errors);
- streams/models/buffers carry the policy dtype with no NaN/Inf and no
  silent upcasts (timestamps deliberately stay float64);
- artifact and pretrain cache keys differ by dtype, so the two policies
  can never serve each other's bytes;
- float32 results are deterministic: same digests across repeated runs
  and across worker counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SampleBuffer, SystemCell, run_cells
from repro.core.parallel import parallel_map
from repro.data import build_scenario, get_store, stream_key
from repro.errors import ConfigurationError
from repro.learn import MLPClassifier, TrainConfig, train_sgd
from repro.learn.cache import load_pretrained, store_pretrained
from repro.learn.executor import mx_forward
from repro.learn.quantized import effective_quantize
from repro.mx import MX6, MX9, dequantize, quantize, quantize_blocks
from repro.mx.dot import mx_matmul
from repro.numeric import (
    DTYPE_ENV,
    FLOAT32,
    FLOAT64,
    active_policy,
    ensure_float,
    resolve_policy,
    use_policy,
)
from repro.reference import run_digest

POLICIES = (FLOAT64, FLOAT32)


def small_stream(duration_s: float = 20.0):
    return build_scenario("S4", duration_s=duration_s)


class TestResolution:
    def test_default_is_float64(self, monkeypatch):
        monkeypatch.delenv(DTYPE_ENV, raising=False)
        assert active_policy() is FLOAT64

    @pytest.mark.parametrize(
        "spelling, expected",
        [
            ("float64", FLOAT64),
            ("FP64", FLOAT64),
            ("double", FLOAT64),
            ("float32", FLOAT32),
            ("f32", FLOAT32),
            (" Single ", FLOAT32),
            ("", FLOAT64),
        ],
    )
    def test_env_spellings(self, monkeypatch, spelling, expected):
        monkeypatch.setenv(DTYPE_ENV, spelling)
        assert active_policy() is expected

    def test_unknown_value_raises(self, monkeypatch):
        monkeypatch.setenv(DTYPE_ENV, "float16")
        with pytest.raises(ConfigurationError):
            active_policy()

    def test_override_beats_env_and_nests(self, monkeypatch):
        monkeypatch.setenv(DTYPE_ENV, "float64")
        with use_policy("float32"):
            assert active_policy() is FLOAT32
            with use_policy(FLOAT64):
                assert active_policy() is FLOAT64
            assert active_policy() is FLOAT32
        assert active_policy() is FLOAT64

    def test_resolve_passthrough(self):
        assert resolve_policy(FLOAT32) is FLOAT32
        assert resolve_policy(None) is FLOAT64

    def test_ensure_float_preserves_and_defaults(self):
        assert ensure_float(np.float32([1.0])).dtype == np.float32
        assert ensure_float(np.float64([1.0])).dtype == np.float64
        assert ensure_float([1, 2, 3]).dtype == np.float64


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
class TestStreamDtype:
    def test_generate_carries_policy_dtype(self, policy):
        with use_policy(policy):
            window = small_stream().generate(0)
        assert window.features.dtype == policy.dtype
        assert window.labels.dtype == np.int64
        # Timestamps are window-boundary index structure: always float64.
        assert window.times.dtype == np.float64
        assert np.isfinite(window.features).all()

    def test_materialize_finite_and_policy_typed(self, policy):
        with use_policy(policy):
            window = small_stream().materialize(0)
        assert window.features.dtype == policy.dtype
        assert np.isfinite(window.features).all()

    def test_buffer_carries_policy_dtype(self, policy):
        with use_policy(policy):
            buffer = SampleBuffer(capacity=8, feature_dim=3)
            buffer.add(np.ones((2, 3)), np.zeros(2, dtype=np.int64))
        assert buffer.features.dtype == policy.dtype


class TestSharedRealization:
    def test_float32_stream_is_rounded_float64_realization(self):
        stream = small_stream()
        with use_policy(FLOAT64):
            w64 = stream.generate(3)
        with use_policy(FLOAT32):
            w32 = stream.generate(3)
        np.testing.assert_array_equal(w64.labels, w32.labels)
        np.testing.assert_array_equal(w64.times, w32.times)
        np.testing.assert_allclose(
            w32.features, w64.features.astype(np.float32),
            rtol=FLOAT32.rtol, atol=FLOAT32.atol,
        )


class TestCacheKeysDifferByDtype:
    def test_stream_keys_differ(self):
        stream = small_stream()
        assert (
            stream_key(stream, 0, FLOAT64) != stream_key(stream, 0, FLOAT32)
        )

    def test_store_serves_each_policy_its_own_window(self):
        stream = small_stream()
        store = get_store()
        store.clear()
        with use_policy(FLOAT64):
            w64 = stream.materialize(0)
        with use_policy(FLOAT32):
            w32 = stream.materialize(0)
        assert w64.features.dtype == np.float64
        assert w32.features.dtype == np.float32
        with use_policy(FLOAT64):
            assert stream.materialize(0).features.dtype == np.float64

    def test_pretrain_entries_do_not_collide(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with use_policy(FLOAT64):
            mlp = MLPClassifier.create(
                4, (3,), 2, np.random.default_rng(0)
            )
            store_pretrained("student", "resnet18", 0, 0, mlp)
            assert load_pretrained("student", "resnet18", 0, 0) is not None
        with use_policy(FLOAT32):
            # The float64 entry must be invisible under float32.
            assert load_pretrained("student", "resnet18", 0, 0) is None

    def test_pretrained_loads_in_policy_dtype(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with use_policy(FLOAT32):
            mlp = MLPClassifier.create(
                4, (3,), 2, np.random.default_rng(0)
            )
            store_pretrained("teacher", "wrn", 1, 2, mlp)
            loaded = load_pretrained("teacher", "wrn", 1, 2)
        assert loaded is not None
        assert loaded.dtype == np.float32


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
class TestLearnDtype:
    def make_data(self, policy, n=64, dim=8, classes=4):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(n, dim)).astype(policy.dtype)
        y = rng.integers(0, classes, n)
        return x, y

    def test_mlp_carries_policy_dtype_end_to_end(self, policy):
        with use_policy(policy):
            mlp = MLPClassifier.create(
                8, (6,), 4, np.random.default_rng(0)
            )
        assert mlp.dtype == policy.dtype
        x, y = self.make_data(policy)
        logits = mlp.forward(x, MX6)
        assert logits.dtype == policy.dtype
        assert np.isfinite(logits).all()
        loss = mlp.train_step(x, y, lr=1e-2, fmt=MX9)
        assert np.isfinite(loss)
        assert all(w.dtype == policy.dtype for w in mlp.weights)
        assert all(b.dtype == policy.dtype for b in mlp.biases)

    def test_train_sgd_no_nan_and_dtype_stable(self, policy):
        with use_policy(policy):
            mlp = MLPClassifier.create(
                8, (6,), 4, np.random.default_rng(1)
            )
        x, y = self.make_data(policy)
        losses = train_sgd(
            mlp, x, y, TrainConfig(epochs=2, fmt=MX9),
            np.random.default_rng(2),
        )
        assert all(np.isfinite(loss) for loss in losses)
        assert mlp.dtype == policy.dtype

    def test_executor_matches_fast_path_at_policy_dtype(self, policy):
        with use_policy(policy):
            mlp = MLPClassifier.create(
                8, (6,), 4, np.random.default_rng(3)
            )
        x, _ = self.make_data(policy, n=16)
        reference = mx_forward(mlp, x, MX6)
        fast = mlp.forward(x, MX6)
        assert reference.dtype == policy.dtype
        np.testing.assert_array_equal(reference, fast)


class TestMXDtypePolymorphism:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_quantize_preserves_dtype(self, dtype):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 37)).astype(dtype)
        q = quantize(x, MX6)
        assert q.dtype == dtype
        assert np.isfinite(q).all()

    def test_float32_quantize_equals_float64_values(self):
        # Every MX-representable value is exact in float32, so quantizing
        # the float32 image of a tensor yields the same reals as float64.
        rng = np.random.default_rng(1)
        x64 = rng.normal(size=(4, 64))
        x32 = x64.astype(np.float32)
        q64_of_32 = quantize(x32.astype(np.float64), MX6)
        q32 = quantize(x32, MX6)
        np.testing.assert_array_equal(q32.astype(np.float64), q64_of_32)

    def test_fused_quantize_matches_reference_in_float32(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 33)).astype(np.float32)
        fused = quantize(x, MX9)
        reference = dequantize(quantize_blocks(x, MX9), dtype=np.float32)
        np.testing.assert_array_equal(fused, reference)

    def test_dequantize_dtype_parameter(self):
        x = np.linspace(-2, 2, 16, dtype=np.float32)
        tensor = quantize_blocks(x, MX6)
        assert dequantize(tensor).dtype == np.float64
        assert dequantize(tensor, dtype=np.float32).dtype == np.float32

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matmul_and_effective_quantize_preserve_dtype(self, dtype):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 32)).astype(dtype)
        b = rng.normal(size=(32, 5)).astype(dtype)
        assert mx_matmul(a, b, MX6).dtype == dtype
        assert effective_quantize(a, MX6, 1.3).dtype == dtype
        assert effective_quantize(a, None).dtype == dtype

    def test_int_input_still_becomes_float64(self):
        assert quantize(np.arange(16), MX6).dtype == np.float64


class TestFloat32Determinism:
    CELLS = [
        SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0, 120.0),
        SystemCell("OrinHigh-EOMU", "resnet18_wrn50", "S1", 0, 120.0),
    ]

    def digests(self, jobs: int) -> list[str]:
        with use_policy(FLOAT32):
            return [run_digest(r) for r in run_cells(self.CELLS, jobs=jobs)]

    def test_digests_stable_across_runs(self):
        assert self.digests(jobs=1) == self.digests(jobs=1)

    def test_digests_stable_across_jobs_counts(self):
        # Workers re-install the parent's policy explicitly, so the
        # ambient use_policy override survives into the pool.
        assert self.digests(jobs=1) == self.digests(jobs=2)

    def test_parallel_map_threads_policy(self):
        with use_policy(FLOAT32):
            dtypes = parallel_map(_worker_policy_dtype, [0, 1], jobs=2)
        assert dtypes == ["float32", "float32"]


def _worker_policy_dtype(_item) -> str:
    """Report the worker's active policy (module-level for pickling)."""
    return active_policy().name
