"""Tests for the frame samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import stratified_indices, uniform_sample_indices
from repro.errors import ScenarioError


class TestUniformSample:
    def test_rate_determines_count(self):
        rng = np.random.default_rng(0)
        idx = uniform_sample_indices(1000, 0.05, rng)
        assert len(idx) == 50

    def test_sorted_and_unique(self):
        rng = np.random.default_rng(1)
        idx = uniform_sample_indices(100, 0.5, rng)
        assert np.all(np.diff(idx) > 0)

    def test_full_rate(self):
        rng = np.random.default_rng(2)
        idx = uniform_sample_indices(10, 1.0, rng)
        np.testing.assert_array_equal(idx, np.arange(10))

    def test_zero_frames(self):
        rng = np.random.default_rng(3)
        assert len(uniform_sample_indices(0, 0.5, rng)) == 0

    def test_invalid_rate(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ScenarioError):
            uniform_sample_indices(10, 0.0, rng)
        with pytest.raises(ScenarioError):
            uniform_sample_indices(10, 1.5, rng)

    def test_negative_frames(self):
        with pytest.raises(ScenarioError):
            uniform_sample_indices(-5, 0.5, np.random.default_rng(0))


class TestStratified:
    def test_caps_per_class(self):
        labels = np.array([0] * 10 + [1] * 2)
        idx = stratified_indices(labels, per_class=3, rng=np.random.default_rng(0))
        picked = labels[idx]
        assert np.sum(picked == 0) == 3
        assert np.sum(picked == 1) == 2

    def test_empty_labels(self):
        idx = stratified_indices(np.array([]), 3, np.random.default_rng(0))
        assert len(idx) == 0

    def test_invalid_per_class(self):
        with pytest.raises(ScenarioError):
            stratified_indices(np.array([0]), 0, np.random.default_rng(0))


@given(
    n=st.integers(1, 2000),
    rate=st.floats(0.01, 1.0),
    seed=st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_uniform_sample_invariants(n, rate, seed):
    idx = uniform_sample_indices(n, rate, np.random.default_rng(seed))
    assert len(idx) == min(n, int(round(n * rate)))
    if len(idx):
        assert idx.min() >= 0
        assert idx.max() < n
        assert len(np.unique(idx)) == len(idx)
