"""Tests for the Table II scenario builders."""

import pytest

from repro.data import SCENARIO_NAMES, build_scenario, scenario_table
from repro.data.attributes import LabelDistribution, Location, TimeOfDay, Weather
from repro.errors import ScenarioError


class TestBuildScenario:
    def test_all_names_build(self):
        for name in SCENARIO_NAMES:
            stream = build_scenario(name, duration_s=300)
            assert stream.name == name
            assert stream.duration_s == 300

    def test_default_duration_is_20_minutes(self):
        stream = build_scenario("S1")
        assert stream.duration_s == 1200
        assert stream.num_frames == 36000

    def test_unknown_name(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            build_scenario("S9")

    def test_invalid_duration(self):
        with pytest.raises(ScenarioError):
            build_scenario("S1", duration_s=0)

    def test_deterministic(self):
        a = build_scenario("S3")
        b = build_scenario("S3")
        assert a.segments == b.segments

    def test_scenarios_have_drifts(self):
        for name in SCENARIO_NAMES:
            assert len(build_scenario(name).drift_times()) >= 3


class TestTableIIConstraints:
    def test_s1_fixes_everything_but_labels(self):
        stream = build_scenario("S1")
        for segment in stream.segments:
            assert segment.domain.weather is Weather.CLEAR
            assert segment.domain.time is TimeOfDay.DAYTIME
            assert segment.domain.location is Location.CITY
        label_values = {s.domain.labels for s in stream.segments}
        assert label_values == {
            LabelDistribution.TRAFFIC_ONLY, LabelDistribution.ALL
        }

    def test_s2_overcast(self):
        for segment in build_scenario("S2").segments:
            assert segment.domain.weather is Weather.OVERCAST

    def test_s3_drifts_time_not_location(self):
        stream = build_scenario("S3")
        times = {s.domain.time for s in stream.segments}
        locations = {s.domain.location for s in stream.segments}
        assert len(times) == 2
        assert locations == {Location.CITY}

    def test_s5_drifts_location(self):
        stream = build_scenario("S5")
        locations = {s.domain.location for s in stream.segments}
        assert locations == {Location.CITY, Location.HIGHWAY}

    def test_s6_rainy(self):
        for segment in build_scenario("S6").segments:
            assert segment.domain.weather is Weather.RAINY

    def test_extreme_scenarios_drift_weather(self):
        for name in ("ES1", "ES2"):
            weathers = {
                s.domain.weather for s in build_scenario(name).segments
            }
            assert len(weathers) >= 2

    def test_extreme_scenarios_differ(self):
        assert (
            build_scenario("ES1").segments != build_scenario("ES2").segments
        )


class TestScenarioTable:
    def test_covers_all_scenarios(self):
        rows = scenario_table()
        assert [r["name"] for r in rows] == list(SCENARIO_NAMES)

    def test_s1_row(self):
        row = scenario_table()[0]
        assert row["weather"] == "Clear"
        assert row["drift_types"] == "Label Distribution"

    def test_extreme_rows_list_all_four(self):
        row = scenario_table()[-1]
        for drift in ("Label Distribution", "Time of Day", "Location",
                      "Weather"):
            assert drift in row["drift_types"]
