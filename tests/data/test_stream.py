"""Tests for segments, frame windows, and scenario streams."""

import numpy as np
import pytest

from repro.data import Domain, DomainModel, ScenarioStream, Segment, TimeOfDay
from repro.errors import ScenarioError


def two_segment_stream() -> ScenarioStream:
    day = Segment(Domain(), duration_s=10.0)
    night = Segment(Domain().with_(time=TimeOfDay.NIGHT), duration_s=10.0)
    return ScenarioStream(name="test", segments=(day, night))


class TestSegment:
    def test_positive_duration_required(self):
        with pytest.raises(ScenarioError):
            Segment(Domain(), duration_s=0)


class TestScenarioStream:
    def test_duration_and_frames(self):
        stream = two_segment_stream()
        assert stream.duration_s == 20.0
        assert stream.num_frames == 600

    def test_segment_at(self):
        stream = two_segment_stream()
        assert stream.segment_at(5.0).domain.time is TimeOfDay.DAYTIME
        assert stream.segment_at(15.0).domain.time is TimeOfDay.NIGHT

    def test_segment_at_past_end_returns_last(self):
        stream = two_segment_stream()
        assert stream.segment_at(100.0).domain.time is TimeOfDay.NIGHT

    def test_segment_at_negative_rejected(self):
        with pytest.raises(ScenarioError):
            two_segment_stream().segment_at(-1.0)

    def test_drift_times(self):
        assert two_segment_stream().drift_times() == (10.0,)

    def test_no_drift_when_domains_equal(self):
        same = ScenarioStream(
            name="same",
            segments=(
                Segment(Domain(), 10.0),
                Segment(Domain(), 10.0),
            ),
        )
        assert same.drift_times() == ()

    def test_empty_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioStream(name="x", segments=())


class TestMaterialize:
    def test_frame_counts_and_monotone_times(self):
        frames = two_segment_stream().materialize(seed=0)
        assert len(frames) == 600
        assert np.all(np.diff(frames.times) >= 0)

    def test_deterministic_per_seed(self):
        stream = two_segment_stream()
        a = stream.materialize(seed=3)
        b = stream.materialize(seed=3)
        np.testing.assert_array_equal(a.features, b.features)

    def test_different_seeds_differ(self):
        stream = two_segment_stream()
        a = stream.materialize(seed=1)
        b = stream.materialize(seed=2)
        assert not np.allclose(a.features, b.features)

    def test_segment_content_independent_of_prefix(self):
        # Segment randomness is keyed by (seed, segment index); altering an
        # earlier segment's duration must not change a later segment's draw
        # count dependency -- check via identical second segments.
        night = Segment(Domain().with_(time=TimeOfDay.NIGHT), duration_s=5.0)
        s1 = ScenarioStream(name="a", segments=(Segment(Domain(), 5.0), night))
        s2 = ScenarioStream(name="b", segments=(Segment(Domain(), 5.0), night))
        np.testing.assert_array_equal(
            s1.materialize(0).window(5.0, 10.0).features,
            s2.materialize(0).window(5.0, 10.0).features,
        )


class TestFrameWindow:
    def test_window_slicing(self):
        frames = two_segment_stream().materialize(seed=0)
        first_half = frames.window(0.0, 10.0)
        assert len(first_half) == 300
        assert first_half.times.max() < 10.0

    def test_window_empty(self):
        frames = two_segment_stream().materialize(seed=0)
        assert len(frames.window(50.0, 60.0)) == 0

    def test_window_invalid(self):
        frames = two_segment_stream().materialize(seed=0)
        with pytest.raises(ScenarioError):
            frames.window(10.0, 5.0)

    def test_subset(self):
        frames = two_segment_stream().materialize(seed=0)
        sub = frames.subset(np.array([0, 10, 20]))
        assert len(sub) == 3
        assert sub.times[0] == frames.times[0]

    def test_length_mismatch_rejected(self):
        from repro.data import FrameWindow

        with pytest.raises(ScenarioError):
            FrameWindow(np.zeros((3, 2)), np.zeros(2), np.zeros(3))

    def test_window_skips_revalidation(self, monkeypatch):
        from repro.data import FrameWindow

        frames = two_segment_stream().materialize(seed=0)
        calls = []
        original = FrameWindow.__post_init__
        monkeypatch.setattr(
            FrameWindow,
            "__post_init__",
            lambda self: (calls.append(1), original(self))[1],
        )
        window = frames.window(0.0, 10.0)
        sub = frames.subset(np.array([0, 1]))
        assert calls == []  # hot-path slicing bypasses __post_init__
        assert len(window) == 300 and len(sub) == 2
        # ... while the public constructor still validates
        FrameWindow(np.zeros((2, 3)), np.zeros(2), np.zeros(2))
        assert calls == [1]


class TestCachedScheduleProperties:
    def test_duration_and_frames_computed_once(self):
        stream = two_segment_stream()
        assert "duration_s" not in stream.__dict__
        assert stream.duration_s == 20.0
        assert stream.num_frames == 600
        # functools.cached_property stores on the (frozen) instance
        assert stream.__dict__["duration_s"] == 20.0
        assert stream.__dict__["num_frames"] == 600
        assert stream.duration_s == 20.0

    def test_segment_at_boundary_belongs_to_next_segment(self):
        stream = two_segment_stream()
        assert stream.segment_at(0.0).domain.time is TimeOfDay.DAYTIME
        assert stream.segment_at(10.0).domain.time is TimeOfDay.NIGHT
        assert stream.segment_at(9.999).domain.time is TimeOfDay.DAYTIME
