"""Equivalence tests for the shared stream-artifact substrate.

The contract: materializing through the :class:`ArtifactStore` -- whether
the window comes back freshly generated, from the in-process LRU, or
memmap-opened from the disk tier, in this process or another -- is
bit-identical to the raw uncached generator at the same seed, and so are
the :class:`RunResult`\\ s computed on top.
"""

import numpy as np
import pytest

from repro.cache import CACHE_ENV
from repro.data import build_scenario, caching_disabled, get_store, stream_key
from repro.data.artifacts import ArtifactStore
from repro.errors import ScenarioError

DURATION = 60.0


@pytest.fixture(autouse=True)
def fresh_cache(tmp_path, monkeypatch):
    """Point the disk tier at an empty sandbox for every test."""
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    yield tmp_path


def _stream(name="S4", duration=DURATION):
    return build_scenario(name, duration_s=duration)


def assert_windows_identical(a, b):
    np.testing.assert_array_equal(np.asarray(a.features), np.asarray(b.features))
    np.testing.assert_array_equal(np.asarray(a.labels), np.asarray(b.labels))
    np.testing.assert_array_equal(np.asarray(a.times), np.asarray(b.times))
    assert a.features.dtype == b.features.dtype
    assert a.labels.dtype == b.labels.dtype


class TestBitIdentity:
    def test_memmap_matches_inmemory_generation(self):
        stream = _stream()
        cached = stream.materialize(seed=3)
        raw = stream.generate(seed=3)
        assert isinstance(cached.features, np.memmap)
        assert not isinstance(raw.features, np.memmap)
        assert_windows_identical(cached, raw)

    def test_disk_reload_matches(self):
        stream = _stream()
        first = stream.materialize(seed=1)
        get_store().clear()  # force the next lookup through the disk tier
        second = stream.materialize(seed=1)
        assert second is not first
        assert isinstance(second.features, np.memmap)
        assert_windows_identical(first, second)

    def test_window_slices_are_zero_copy_views(self):
        frames = _stream().materialize(seed=0)
        window = frames.window(10.0, 20.0)
        assert window.features.base is not None
        assert isinstance(window.features, np.memmap)
        np.testing.assert_array_equal(
            np.asarray(window.features),
            np.asarray(frames.features[len(frames.window(0.0, 10.0)):][:len(window)]),
        )

    def test_caching_disabled_is_equivalent(self):
        stream = _stream()
        cached = stream.materialize(seed=2)
        with caching_disabled():
            uncached = stream.materialize(seed=2)
        assert not isinstance(uncached.features, np.memmap)
        assert_windows_identical(cached, uncached)


class TestStoreMechanics:
    def test_lru_hit_returns_same_object(self):
        stream = _stream()
        store = get_store()
        first = stream.materialize(seed=0)
        hits = store.hits
        second = stream.materialize(seed=0)
        assert second is first
        assert store.hits == hits + 1

    def test_disk_entry_layout(self, fresh_cache):
        stream = _stream()
        stream.materialize(seed=5)
        entry = fresh_cache / "streams" / stream_key(stream, 5)
        for name in ("features.npy", "labels.npy", "times.npy", "meta.json"):
            assert (entry / name).exists()

    def test_keys_separate_seed_scenario_and_duration(self):
        s4 = _stream("S4")
        keys = {
            stream_key(s4, 0),
            stream_key(s4, 1),
            stream_key(_stream("S1"), 0),
            stream_key(_stream("S4", duration=120.0), 0),
        }
        assert len(keys) == 4

    def test_eviction_respects_max_entries(self):
        store = ArtifactStore(max_entries=2)
        for seed in range(4):
            store.get(_stream(), seed=seed)
        assert len(store) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ScenarioError):
            ArtifactStore(max_entries=0)

    def test_corrupt_entry_falls_back_to_generation(self, fresh_cache):
        stream = _stream()
        reference = stream.generate(seed=0)
        stream.materialize(seed=0)
        entry = fresh_cache / "streams" / stream_key(stream, 0)
        (entry / "labels.npy").write_bytes(b"not an npy file")
        get_store().clear()
        recovered = stream.materialize(seed=0)
        assert_windows_identical(recovered, reference)

    def test_disk_tier_disabled_by_empty_env(self, monkeypatch, fresh_cache):
        monkeypatch.setenv(CACHE_ENV, "")
        stream = _stream()
        window = stream.materialize(seed=0)
        assert not isinstance(window.features, np.memmap)
        assert not (fresh_cache / "streams").exists()
        # the LRU tier still shares within the process
        assert stream.materialize(seed=0) is window


def _worker_probe(args):
    """Materialize in a worker process; report backing and a checksum."""
    name, duration, seed = args
    import hashlib

    window = build_scenario(name, duration_s=duration).materialize(seed)
    digest = hashlib.sha256(
        np.ascontiguousarray(window.features).tobytes()
    ).hexdigest()
    return isinstance(window.features, np.memmap), digest


class TestCrossProcess:
    def test_workers_hit_the_disk_tier(self):
        import hashlib
        from concurrent.futures import ProcessPoolExecutor

        stream = _stream()
        parent = stream.materialize(seed=7)  # populates the disk entry
        expected = hashlib.sha256(
            np.ascontiguousarray(parent.features).tobytes()
        ).hexdigest()
        with ProcessPoolExecutor(max_workers=2) as pool:
            outcomes = list(
                pool.map(_worker_probe, [("S4", DURATION, 7)] * 2)
            )
        for is_memmap, digest in outcomes:
            assert is_memmap  # served from the shared disk entry
            assert digest == expected


class TestRunResultInvariance:
    def test_cached_and_uncached_runs_are_identical(self):
        from repro.core import build_system, run_on_scenario

        def run():
            system = build_system(
                "DaCapo-Spatiotemporal", "resnet18_wrn50", seed=0
            )
            return run_on_scenario(
                system, "S4", seed=0, duration_s=DURATION
            )

        cached = run()  # cold: generates + persists
        warm = run()  # warm: memmap-backed LRU hit
        with caching_disabled():
            uncached = run()
        for other in (warm, uncached):
            np.testing.assert_array_equal(cached.correct, other.correct)
            np.testing.assert_array_equal(cached.dropped, other.dropped)
            assert cached.phases == other.phases
            assert cached.duration_s == other.duration_s
