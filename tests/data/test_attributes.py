"""Tests for domain attributes."""

from repro.data import (
    ALL_CLASSES,
    TRAFFIC_CLASSES,
    Domain,
    LabelDistribution,
    Location,
    TimeOfDay,
    Weather,
)


class TestClasses:
    def test_traffic_subset_of_all(self):
        assert set(TRAFFIC_CLASSES) < set(ALL_CLASSES)

    def test_counts(self):
        assert len(TRAFFIC_CLASSES) == 5
        assert len(ALL_CLASSES) == 10

    def test_label_distribution_classes(self):
        assert LabelDistribution.TRAFFIC_ONLY.classes == TRAFFIC_CLASSES
        assert LabelDistribution.ALL.classes == ALL_CLASSES


class TestDomain:
    def test_defaults(self):
        d = Domain()
        assert d.labels is LabelDistribution.TRAFFIC_ONLY
        assert d.time is TimeOfDay.DAYTIME
        assert d.location is Location.CITY
        assert d.weather is Weather.CLEAR

    def test_with_replaces(self):
        d = Domain().with_(time=TimeOfDay.NIGHT)
        assert d.time is TimeOfDay.NIGHT
        assert d.location is Location.CITY

    def test_equality_drives_drift_detection(self):
        assert Domain() == Domain()
        assert Domain() != Domain().with_(location=Location.HIGHWAY)

    def test_describe(self):
        text = Domain().describe()
        assert "daytime" in text and "city" in text
