"""Tests for the domain generative model."""

import numpy as np
import pytest

from repro.data import Domain, DomainModel, LabelDistribution, Location, TimeOfDay, Weather
from repro.errors import ScenarioError
from repro.numeric import use_policy

MODEL = DomainModel()


class TestGeometry:
    def test_deterministic_geometry(self):
        a, b = DomainModel(), DomainModel()
        np.testing.assert_array_equal(
            a.class_means(Domain()), b.class_means(Domain())
        )

    def test_domain_shifts_move_means(self):
        day = MODEL.class_means(Domain())
        night = MODEL.class_means(Domain().with_(time=TimeOfDay.NIGHT))
        assert not np.allclose(day, night)

    def test_rotations_compose_multiplicatively(self):
        # The composition identity is a float64 geometry property; pin the
        # policy so the means are not pre-rounded by an ambient float32.
        with use_policy("float64"):
            both = MODEL.class_means(
                Domain().with_(
                    time=TimeOfDay.NIGHT, location=Location.HIGHWAY
                )
            )
            base = MODEL.class_means(Domain())
        r_night = MODEL.rotation(Domain().with_(time=TimeOfDay.NIGHT))
        r_highway = MODEL.rotation(Domain().with_(location=Location.HIGHWAY))
        # rotation() applies night first, then highway: R = R_hwy @ R_night.
        np.testing.assert_allclose(both, base @ r_night.T @ r_highway.T)

    def test_rotations_are_orthogonal(self):
        rot = MODEL.rotation(Domain().with_(time=TimeOfDay.NIGHT))
        np.testing.assert_allclose(
            rot @ rot.T, np.eye(MODEL.feature_dim), atol=1e-10
        )

    def test_rotations_preserve_pairwise_distances(self):
        # The core difficulty-preservation property of the drift design
        # (checked at float64; float32 means are these rounded once).
        with use_policy("float64"):
            base = MODEL.class_means(Domain())
            night = MODEL.class_means(Domain().with_(time=TimeOfDay.NIGHT))
        dist = lambda m: np.linalg.norm(m[:, None] - m[None, :], axis=-1)
        np.testing.assert_allclose(dist(base), dist(night), atol=1e-9)

    def test_classes_stay_separated_in_every_domain(self):
        # Minimum pairwise mean distance must exceed the noise scale, so
        # every domain remains learnable.
        domains = [
            Domain(),
            Domain().with_(time=TimeOfDay.NIGHT),
            Domain().with_(location=Location.HIGHWAY),
            Domain().with_(weather=Weather.SNOWY),
            Domain().with_(time=TimeOfDay.NIGHT, location=Location.HIGHWAY,
                           weather=Weather.RAINY),
        ]
        for domain in domains:
            means = MODEL.class_means(domain)
            dists = np.linalg.norm(
                means[:, None, :] - means[None, :, :], axis=-1
            )
            dists += np.eye(len(means)) * 1e9
            assert dists.min() > MODEL.sigma(domain)

    def test_hard_conditions_widen_noise(self):
        assert MODEL.sigma(Domain().with_(time=TimeOfDay.NIGHT)) > MODEL.sigma(
            Domain()
        )
        assert MODEL.sigma(
            Domain().with_(weather=Weather.RAINY)
        ) > MODEL.sigma(Domain())

    def test_invalid_feature_dim(self):
        with pytest.raises(ScenarioError):
            DomainModel(feature_dim=1)


class TestPriors:
    def test_priors_sum_to_one(self):
        for domain in (Domain(), Domain().with_(labels=LabelDistribution.ALL)):
            assert MODEL.class_priors(domain).sum() == pytest.approx(1.0)

    def test_traffic_only_excludes_nontraffic(self):
        priors = MODEL.class_priors(Domain())
        assert np.all(priors[5:] == 0.0)

    def test_all_distribution_includes_everything(self):
        priors = MODEL.class_priors(
            Domain().with_(labels=LabelDistribution.ALL)
        )
        assert np.all(priors > 0.0)

    def test_city_has_more_pedestrians_than_highway(self):
        city = MODEL.class_priors(
            Domain().with_(labels=LabelDistribution.ALL)
        )
        highway = MODEL.class_priors(
            Domain().with_(
                labels=LabelDistribution.ALL, location=Location.HIGHWAY
            )
        )
        pedestrian = 5  # index in ALL_CLASSES
        assert city[pedestrian] > highway[pedestrian]


class TestSampling:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        x, y = MODEL.sample(Domain(), 100, rng)
        assert x.shape == (100, MODEL.feature_dim)
        assert y.shape == (100,)

    def test_labels_respect_distribution(self):
        rng = np.random.default_rng(1)
        _, y = MODEL.sample(Domain(), 500, rng)
        assert y.max() < 5  # traffic-only

    def test_reproducible_given_rng_seed(self):
        x1, y1 = MODEL.sample(Domain(), 50, np.random.default_rng(7))
        x2, y2 = MODEL.sample(Domain(), 50, np.random.default_rng(7))
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_zero_samples(self):
        x, y = MODEL.sample(Domain(), 0, np.random.default_rng(0))
        assert len(x) == len(y) == 0

    def test_negative_rejected(self):
        with pytest.raises(ScenarioError):
            MODEL.sample(Domain(), -1, np.random.default_rng(0))
