"""The bit-identity contract against the frozen reference digests.

Tier-1 recomputes the cheap ``smoke`` section under both policies and
compares against the checked-in files; the heavyweight ``full`` (the
29-entry fixed-seed set) and ``fig9`` (108 cells at 1200 s) sections run
when ``REPRO_FULL_DIGESTS=1``.

The float32-vs-float64 accuracy bound on the full Figure 9 grid is checked
from the *stored* per-cell accuracies on every run (it is a pure file
comparison); the gated run additionally proves the stored float32 numbers
are still reproducible.

Regeneration (float32 only -- the float64 file is pre-refactor ground
truth and must never change)::

    PYTHONPATH=src REPRO_DTYPE=float32 python -m repro.reference \
        --out tests/reference/digests_float32.json
"""

from __future__ import annotations

import json
import os

import pytest

from repro.numeric import FLOAT32, FLOAT64, use_policy
from repro.reference import (
    FIG9_ACCURACY_BOUND_PP,
    compute_section,
    reference_path,
)

POLICIES = (FLOAT64, FLOAT32)

FULL = os.environ.get("REPRO_FULL_DIGESTS", "") == "1"


def load_reference(policy):
    path = reference_path(policy.name)
    assert path.is_file(), f"missing reference file {path}"
    payload = json.loads(path.read_text())
    assert payload["policy"] == policy.name
    return payload


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
def test_smoke_digests_match_reference(policy):
    reference = load_reference(policy)["smoke"]
    with use_policy(policy):
        computed = compute_section("smoke")
    assert set(computed) == set(reference)
    mismatched = [
        key for key in reference
        if computed[key]["digest"] != reference[key]["digest"]
    ]
    assert not mismatched, (
        f"{policy.name} runs no longer match their frozen digests: "
        f"{mismatched}"
    )


def test_fig9_accuracy_bound_between_policies():
    """Every fig9 cell: |acc(f32) - acc(f64)| within the frozen bound."""
    ref64 = load_reference(FLOAT64)["fig9"]
    ref32 = load_reference(FLOAT32)["fig9"]
    assert set(ref64) == set(ref32)
    bound = FIG9_ACCURACY_BOUND_PP / 100.0
    violations = {
        key: (ref64[key]["accuracy"], ref32[key]["accuracy"])
        for key in ref64
        if abs(ref64[key]["accuracy"] - ref32[key]["accuracy"]) > bound
    }
    assert not violations, (
        f"cells past the {FIG9_ACCURACY_BOUND_PP}pp bound: {violations}"
    )


@pytest.mark.skipif(
    not FULL, reason="set REPRO_FULL_DIGESTS=1 for the full digest sweep"
)
@pytest.mark.parametrize("section", ["full", "fig9"])
@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
def test_full_sections_match_reference(policy, section):
    reference = load_reference(policy)[section]
    with use_policy(policy):
        computed = compute_section(section)
    assert set(computed) == set(reference)
    mismatched = [
        key for key in reference
        if computed[key]["digest"] != reference[key]["digest"]
    ]
    assert not mismatched, f"{policy.name}/{section}: {mismatched}"
