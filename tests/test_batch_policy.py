"""Batch-policy resolution, ambient selection, and lane plumbing."""

import pytest

from repro.batching import (
    BATCH_ENV,
    BATCH_POLICIES,
    OFF,
    ON,
    active_batching,
    current_lane,
    lane_scope,
    resolve_batching,
    suspend_lane,
    use_batching,
)
from repro.errors import ConfigurationError


class TestResolution:
    def test_known_policies(self):
        assert set(BATCH_POLICIES) == {"off", "on"}
        assert resolve_batching("off") is OFF
        assert resolve_batching("on") is ON
        assert not OFF.enabled and ON.enabled

    @pytest.mark.parametrize("alias", ["", "0", "no", "none", "false"])
    def test_off_aliases(self, alias):
        assert resolve_batching(alias) is OFF

    @pytest.mark.parametrize("alias", ["1", "yes", "true", "batch", "batched"])
    def test_on_aliases(self, alias):
        assert resolve_batching(alias) is ON

    def test_none_and_instance_passthrough(self):
        assert resolve_batching(None) is OFF
        assert resolve_batching(ON) is ON

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_batching("sideways")
        assert BATCH_ENV in str(excinfo.value)


class TestAmbient:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert active_batching() is OFF

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "on")
        assert active_batching() is ON

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "garbage")
        with pytest.raises(ConfigurationError):
            active_batching()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "on")
        with use_batching(OFF):
            assert active_batching() is OFF
        assert active_batching() is ON

    def test_override_restores(self):
        with use_batching(ON):
            assert active_batching() is ON
        assert active_batching() is OFF


class TestLanePlumbing:
    def test_no_lane_by_default(self):
        assert current_lane() is None

    def test_lane_scope_installs_and_restores(self):
        sentinel = object()
        with lane_scope(sentinel):
            assert current_lane() is sentinel
        assert current_lane() is None

    def test_suspend_hides_lane(self):
        sentinel = object()
        with lane_scope(sentinel):
            with suspend_lane():
                assert current_lane() is None
            assert current_lane() is sentinel

    def test_lane_scope_nests(self):
        outer, inner = object(), object()
        with lane_scope(outer):
            with lane_scope(inner):
                assert current_lane() is inner
            assert current_lane() is outer
