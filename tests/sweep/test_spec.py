"""Tests for sweep spec parsing and validation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sweep import SweepSpec, load_spec, spec_from_mapping


def minimal(**updates):
    data = {
        "sweep": {"name": "t", "title": "Test sweep"},
        "axes": {
            "systems": ["DaCapo-Spatiotemporal"],
            "pairs": ["resnet18_wrn50"],
            "scenarios": ["S1"],
        },
    }
    data.update(updates)
    return data


TOML_SPEC = """
[sweep]
name = "toml-spec"
cell = "system"

[axes]
systems = ["DaCapo-Spatiotemporal", "OrinHigh-Ekya"]
pairs = ["resnet18_wrn50"]
scenarios = ["S1", "S4"]
seeds = [0, 1]
durations = [120.0]
policies = ["fp64", "fp32"]

[[override]]
match = { scenario = "S4" }
durations = [60.0]

[aggregate]
group_by = ["policy", "system"]
percentiles = [50]
metrics = ["accuracy"]
"""


class TestLoaders:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(TOML_SPEC)
        spec = load_spec(path)
        assert spec.name == "toml-spec"
        assert spec.axes["system"] == (
            "DaCapo-Spatiotemporal", "OrinHigh-Ekya"
        )
        # Policy aliases canonicalize at load time.
        assert spec.axes["policy"] == ("float64", "float32")
        assert spec.overrides[0].match == (("scenario", ("S4",)),)
        assert spec.overrides[0].axes == (("duration", (60.0,)),)

    def test_json_same_schema(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(minimal()))
        spec = load_spec(path)
        assert isinstance(spec, SweepSpec)
        assert spec.axes["scenario"] == ("S1",)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("x")
        with pytest.raises(ConfigurationError, match="suffix"):
            load_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_spec(tmp_path / "nope.toml")

    def test_parse_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[sweep\nname=")
        with pytest.raises(ConfigurationError, match="parse error"):
            load_spec(path)


class TestDefaults:
    def test_seed_duration_policy_defaults(self):
        spec = spec_from_mapping(minimal())
        assert spec.axes["seed"] == (0,)
        assert spec.axes["duration"] == (None,)
        assert spec.axes["policy"] == ()  # ambient, resolved at plan time
        assert spec.group_by == ("policy", "system")
        assert spec.percentiles == (50.0, 90.0)

    def test_title_defaults_to_name(self):
        data = minimal()
        data["sweep"] = {"name": "only-name"}
        assert spec_from_mapping(data).title == "only-name"


class TestValidation:
    @pytest.mark.parametrize("axes_patch, message", [
        ({"systems": ["H100"]}, "unknown system"),
        ({"pairs": ["resnet18"]}, "unknown pair"),
        ({"scenarios": ["S9"]}, "unknown scenario"),
        ({"policies": ["float16"]}, "unknown numeric policy"),
        ({"seeds": [-1]}, "non-negative"),
        ({"seeds": [0.5]}, "non-negative"),
        ({"durations": [0.0]}, "positive"),
        ({"durations": [-5]}, "positive"),
        ({"scenarios": []}, "must not be empty"),
        ({"scenarios": ["S1", "S1"]}, "duplicate"),
        ({"scenarios": "S1"}, "must be a list"),
    ])
    def test_bad_axis_values(self, axes_patch, message):
        data = minimal()
        data["axes"].update(axes_patch)
        with pytest.raises(ConfigurationError, match=message):
            spec_from_mapping(data)

    def test_missing_required_axis(self):
        data = minimal()
        del data["axes"]["systems"]
        with pytest.raises(ConfigurationError, match="missing required"):
            spec_from_mapping(data)

    def test_fig2_requires_platform_kind_axes(self):
        data = minimal()
        data["sweep"]["cell"] = "fig2"
        with pytest.raises(ConfigurationError, match="does not apply"):
            spec_from_mapping(data)

    def test_fig2_axes_accepted(self):
        data = minimal()
        data["sweep"]["cell"] = "fig2"
        del data["axes"]["systems"]
        data["axes"]["platforms"] = ["RTX3090", "OrinLow"]
        data["axes"]["kinds"] = ["student", "ekya"]
        data["aggregate"] = {"group_by": ["platform", "kind"]}
        spec = spec_from_mapping(data)
        assert spec.axes["platform"] == ("RTX3090", "OrinLow")

    def test_unknown_cell_kind(self):
        data = minimal()
        data["sweep"]["cell"] = "gpu"
        with pytest.raises(ConfigurationError, match="cell must be"):
            spec_from_mapping(data)

    def test_unknown_axis_key(self):
        data = minimal()
        data["axes"]["cameras"] = ["c0"]
        with pytest.raises(ConfigurationError, match="unknown axis key"):
            spec_from_mapping(data)

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigurationError, match="unknown top-level"):
            spec_from_mapping(minimal(extra={}))

    def test_bad_name(self):
        data = minimal()
        data["sweep"]["name"] = "no spaces allowed"
        with pytest.raises(ConfigurationError, match="name must be"):
            spec_from_mapping(data)

    @pytest.mark.parametrize("aggregate, message", [
        ({"group_by": ["camera"]}, "not a row key"),
        ({"group_by": ["system", "system"]}, "duplicates"),
        ({"percentiles": [101]}, r"\[0, 100\]"),
        ({"metrics": ["latency"]}, "unknown metric"),
        ({"metrics": []}, "must not be empty"),
        ({"unknown_key": 1}, r"unknown \[aggregate\]"),
    ])
    def test_bad_aggregate(self, aggregate, message):
        with pytest.raises(ConfigurationError, match=message):
            spec_from_mapping(minimal(aggregate=aggregate))


class TestOverrideValidation:
    def override(self, **entry):
        data = minimal()
        data["axes"]["scenarios"] = ["S1", "S4"]
        data["override"] = [entry]
        return data

    def test_valid_override(self):
        spec = spec_from_mapping(
            self.override(match={"scenario": "S4"}, durations=[60.0])
        )
        assert spec.overrides[0].axes == (("duration", (60.0,)),)

    def test_match_required(self):
        with pytest.raises(ConfigurationError, match="match"):
            spec_from_mapping(self.override(durations=[60.0]))

    def test_match_value_must_exist_in_base_axis(self):
        with pytest.raises(ConfigurationError, match="never fire"):
            spec_from_mapping(
                self.override(match={"scenario": "S6"}, durations=[60.0])
            )

    def test_both_override_spellings_rejected(self):
        data = self.override(match={"scenario": "S4"}, durations=[60.0])
        data["overrides"] = [
            {"match": {"scenario": "S1"}, "durations": [30.0]}
        ]
        # Accepting one and silently dropping the other would run cells
        # with the wrong durations; insist the spec picks a spelling.
        with pytest.raises(ConfigurationError, match="not both"):
            spec_from_mapping(data)

    def test_override_values_canonicalized(self):
        # TOML ints become floats just like base-axis durations do, so
        # cells, CSV, and JSON never carry mixed int/float durations.
        spec = spec_from_mapping(
            self.override(match={"scenario": "S4"}, durations=[60])
        )
        assert spec.overrides[0].axes == (("duration", (60.0,)),)

    def test_policy_alias_in_match_canonicalized(self):
        data = self.override(match={"policy": "f32"}, durations=[60.0])
        data["axes"]["policies"] = ["f64", "f32"]
        spec = spec_from_mapping(data)
        assert spec.overrides[0].match == (("policy", ("float32",)),)

    def test_match_may_name_value_introduced_by_another_override(self):
        # seed 5 only exists via override[0]'s replacement, but override[1]
        # matching it is legitimate -- the expansion binds seed=5 for the
        # S4 prefix, so override[1] does fire.
        data = self.override(match={"scenario": "S4"}, seeds=[5])
        data["override"].append(
            {"match": {"seed": 5}, "durations": [30.0]}
        )
        spec = spec_from_mapping(data)
        assert spec.overrides[1].match == (("seed", (5,)),)

    def test_cannot_override_earlier_axis(self):
        # scenario comes after system in the expansion order, so a
        # scenario match cannot replace the systems list.
        with pytest.raises(ConfigurationError, match="must come after"):
            spec_from_mapping(self.override(
                match={"scenario": "S4"},
                systems=["OrinHigh-Ekya"],
            ))

    def test_override_must_change_something(self):
        with pytest.raises(ConfigurationError, match="overrides no axes"):
            spec_from_mapping(self.override(match={"scenario": "S4"}))

    def test_overridden_values_validated(self):
        with pytest.raises(ConfigurationError, match="positive"):
            spec_from_mapping(
                self.override(match={"scenario": "S4"}, durations=[-1])
            )
