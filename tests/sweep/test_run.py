"""End-to-end sweep execution: equivalence, round-trips, frozen digests.

The acceptance contract: a sweep spec reproducing a figure grid yields
per-cell :class:`RunResult`\\ s bit-identical to the hand-coded experiment
at any ``--jobs`` -- checked here against the frozen reference digests
(the cheap smoke section always; the full Figure 9 grid when
``REPRO_FULL_DIGESTS=1``).
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.parallel import run_cells
from repro.numeric import active_policy
from repro.reference import reference_path, run_digest
from repro.sweep import (
    compile_plan,
    load_spec,
    run_sweep,
    spec_from_mapping,
    write_outputs,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FULL = os.environ.get("REPRO_FULL_DIGESTS", "") == "1"


def tiny_spec(**sweep_updates):
    data = {
        "sweep": {"name": "tiny", "title": "Tiny fleet"},
        "axes": {
            "systems": ["DaCapo-Spatiotemporal", "OrinHigh-Ekya"],
            "pairs": ["resnet18_wrn50"],
            "scenarios": ["S1"],
            "durations": [60.0],
        },
        "aggregate": {
            "group_by": ["policy", "system"],
            "percentiles": [50],
            "metrics": ["accuracy", "drop_rate"],
        },
    }
    data["sweep"].update(sweep_updates)
    return spec_from_mapping(data)


class TestRunSweep:
    def test_matches_direct_run_cells(self):
        spec = tiny_spec()
        plan = compile_plan(spec)
        result = run_sweep(plan, jobs=1)
        direct = run_cells(list(plan.groups[0].cells), jobs=1)
        triples = result.extras["results"]
        assert len(triples) == len(direct)
        for (_, _, swept), expected in zip(triples, direct):
            assert run_digest(swept) == run_digest(expected)

    def test_rows_and_report_shape(self):
        result = run_sweep(tiny_spec(), jobs=1)
        assert result.name == "sweep_tiny"
        assert [r["system"] for r in result.rows] == [
            "DaCapo-Spatiotemporal", "OrinHigh-Ekya"
        ]
        for row in result.rows:
            assert row["cells"] == 1
            assert 0.0 <= row["accuracy_mean"] <= 1.0
        assert "Aggregate by (policy, system)" in result.report
        assert "Per-cell results:" in result.report
        cells = result.extras["cells"]
        assert cells[0]["policy"] == active_policy().name
        assert cells[0]["duration_s"] == 60.0

    def test_outputs_round_trip(self, tmp_path):
        result = run_sweep(tiny_spec(), jobs=1)
        paths = write_outputs(result, tmp_path)
        assert sorted(p.name for p in paths) == [
            "sweep_tiny.json",
            "sweep_tiny.txt",
            "sweep_tiny_aggregate.csv",
            "sweep_tiny_cells.csv",
        ]
        document = json.loads((tmp_path / "sweep_tiny.json").read_text())
        # Aggregate and per-cell rows survive serialization bit-exactly.
        assert document["aggregate"] == result.rows
        assert document["cells"] == result.extras["cells"]
        assert document["estimate"] == result.extras["estimate"]
        assert document["name"] == "tiny"


class TestFrozenDigests:
    @pytest.mark.parametrize(
        "backend,jobs",
        [("serial", 1), ("process:2", 2), ("subprocess:2", 2)],
    )
    def test_smoke_grid_through_sweep_matches_reference(self, backend, jobs):
        """A spec of the reference smoke grid reproduces its frozen
        digests on every execution backend (the bit-identity acceptance
        contract of the pluggable dispatch layer)."""
        policy = active_policy()
        reference = json.loads(
            reference_path(policy.name).read_text()
        )["smoke"]
        spec = spec_from_mapping({
            "sweep": {"name": "smoke-ref", "title": "Smoke reference"},
            "axes": {
                "systems": [
                    "OrinLow-Ekya", "OrinHigh-Ekya", "OrinHigh-EOMU",
                    "DaCapo-Ekya", "DaCapo-Spatial",
                    "DaCapo-Spatiotemporal",
                ],
                "pairs": ["resnet18_wrn50"],
                "scenarios": ["S4"],
                "durations": [300.0],
            },
        })
        result = run_sweep(spec, jobs=jobs, backend=backend)
        for _, cell, run in result.extras["results"]:
            key = (
                f"{cell.system}|{cell.pair}|{cell.scenario}"
                f"|seed{cell.seed}|{cell.duration_s:g}s"
            )
            assert reference[key]["digest"] == run_digest(run), key

    @pytest.mark.skipif(
        not FULL,
        reason="set REPRO_FULL_DIGESTS=1 for the full fig9-through-sweep "
               "digest sweep",
    )
    @pytest.mark.parametrize(
        "backend,jobs",
        [("serial", 1), ("process", 2), ("subprocess:2", 2)],
    )
    def test_fig9_example_matches_reference_at_any_jobs(self, backend, jobs):
        """The shipped fig9 spec is bit-identical to `repro experiment
        fig9` per the frozen reference digests -- serial, sharded over
        the pool, and dispatched over the subprocess transport."""
        policy = active_policy()
        reference = json.loads(
            reference_path(policy.name).read_text()
        )["fig9"]
        spec = load_spec(EXAMPLES / "fig9_sweep.toml")
        result = run_sweep(spec, jobs=jobs, backend=backend)
        computed = {}
        for _, cell, run in result.extras["results"]:
            key = (
                f"{cell.system}|{cell.pair}|{cell.scenario}"
                f"|seed{cell.seed}|{cell.duration_s:g}s"
            )
            computed[key] = run_digest(run)
        assert set(computed) == set(reference)
        mismatched = [
            key for key in reference
            if computed[key] != reference[key]["digest"]
        ]
        assert not mismatched, mismatched


class TestJobsEquivalence:
    def test_rows_identical_at_any_jobs(self):
        spec = tiny_spec(name="tiny-jobs")
        serial = run_sweep(spec, jobs=1)
        sharded = run_sweep(spec, jobs=2)
        assert serial.extras["cells"] == sharded.extras["cells"]
        assert serial.rows == sharded.rows
