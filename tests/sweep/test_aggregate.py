"""Tests for the sweep aggregation layer and its serialization."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sweep import aggregate_rows, read_json
from repro.sweep.aggregate import write_csv, write_json


def rows():
    return [
        {"policy": "float64", "system": "A", "accuracy": 0.8,
         "drop_rate": 0.0},
        {"policy": "float64", "system": "A", "accuracy": 0.4,
         "drop_rate": 0.2},
        {"policy": "float64", "system": "B", "accuracy": 0.5,
         "drop_rate": 0.1},
    ]


class TestAggregateRows:
    def test_group_means_and_percentiles(self):
        out = aggregate_rows(
            rows(), ("policy", "system"), ("accuracy",), (50.0,)
        )
        assert [r["system"] for r in out] == ["A", "B"]
        a = out[0]
        assert a["cells"] == 2
        assert a["accuracy_mean"] == pytest.approx(0.6)
        assert a["accuracy_gmean"] == pytest.approx(math.sqrt(0.8 * 0.4))
        assert a["accuracy_p50"] == pytest.approx(0.6)

    def test_gmean_none_when_not_all_positive(self):
        out = aggregate_rows(
            rows(), ("system",), ("drop_rate",), ()
        )
        assert out[0]["drop_rate_gmean"] is None  # group A contains a 0.0
        assert out[1]["drop_rate_gmean"] == pytest.approx(0.1)

    def test_fractional_percentile_column_name(self):
        out = aggregate_rows(rows(), ("policy",), ("accuracy",), (99.9,))
        assert "accuracy_p99_9" in out[0]

    def test_group_order_is_first_appearance(self):
        reversed_rows = list(reversed(rows()))
        out = aggregate_rows(
            reversed_rows, ("system",), ("accuracy",), ()
        )
        assert [r["system"] for r in out] == ["B", "A"]

    def test_empty_rows(self):
        assert aggregate_rows([], ("system",), ("accuracy",), ()) == []

    def test_unknown_column_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown aggregation"):
            aggregate_rows(rows(), ("camera",), ("accuracy",), ())
        with pytest.raises(ConfigurationError, match="unknown aggregation"):
            aggregate_rows(rows(), ("system",), ("latency",), ())

    def test_column_cannot_be_key_and_metric(self):
        with pytest.raises(ConfigurationError, match="both"):
            aggregate_rows(rows(), ("accuracy",), ("accuracy",), ())


class TestSerialization:
    def test_json_round_trip_preserves_rows(self, tmp_path):
        aggregate = aggregate_rows(
            rows(), ("policy", "system"), ("accuracy", "drop_rate"), (50.0,)
        )
        payload = {"aggregate": aggregate, "cells": rows()}
        path = write_json(tmp_path / "sweep.json", payload)
        loaded = read_json(path)
        # Bit-exact round-trip: ints stay ints, floats stay floats,
        # None (undefined gmean) survives as null.
        assert loaded["aggregate"] == aggregate
        assert loaded["cells"] == rows()

    def test_csv_rows(self, tmp_path):
        aggregate = aggregate_rows(
            rows(), ("system",), ("drop_rate",), ()
        )
        path = write_csv(tmp_path / "agg.csv", aggregate)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "system,cells,drop_rate_mean,drop_rate_gmean"
        assert len(lines) == 3
        assert lines[1].endswith(",")  # None gmean -> empty field

    def test_csv_empty(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", [])
        assert path.read_text() == ""
