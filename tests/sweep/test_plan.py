"""Tests for the sweep planner: expansion, overrides, cost estimates."""

from pathlib import Path

from repro.core.parallel import Fig2Cell, SystemCell
from repro.experiments.fig2 import FIG2_KINDS, FIG2_PAIRS, FIG2_PLATFORMS
from repro.experiments.fig9 import FIG9_PAIRS, FIG9_SCENARIOS, FIG9_SYSTEMS
from repro.numeric import use_policy
from repro.sweep import compile_plan, load_spec, spec_from_mapping

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def make_spec(**updates):
    data = {
        "sweep": {"name": "t", "title": "Test sweep"},
        "axes": {
            "systems": ["DaCapo-Spatiotemporal", "OrinHigh-Ekya"],
            "pairs": ["resnet18_wrn50"],
            "scenarios": ["S1", "S4"],
            "durations": [120.0],
        },
    }
    data.update(updates)
    return spec_from_mapping(data)


class TestExpansion:
    def test_cross_product_in_documented_order(self):
        plan = compile_plan(make_spec())
        (group,) = plan.groups
        assert group.cells == (
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1",
                       0, 120.0),
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4",
                       0, 120.0),
            SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", 0, 120.0),
            SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S4", 0, 120.0),
        )

    def test_override_replaces_later_axes(self):
        spec = make_spec(override=[
            {"match": {"scenario": "S4"}, "durations": [60.0],
             "seeds": [0, 1]},
        ])
        plan = compile_plan(spec)
        cells = plan.groups[0].cells
        s4 = [c for c in cells if c.scenario == "S4"]
        s1 = [c for c in cells if c.scenario == "S1"]
        assert {c.duration_s for c in s4} == {60.0}
        assert {c.seed for c in s4} == {0, 1}
        assert {c.duration_s for c in s1} == {120.0}
        assert {c.seed for c in s1} == {0}

    def test_last_matching_override_wins(self):
        spec = make_spec(override=[
            {"match": {"scenario": "S4"}, "durations": [60.0]},
            {"match": {"system": "OrinHigh-Ekya", "scenario": "S4"},
             "durations": [30.0]},
        ])
        cells = compile_plan(spec).groups[0].cells
        by_key = {(c.system, c.scenario): c.duration_s for c in cells}
        assert by_key[("DaCapo-Spatiotemporal", "S4")] == 60.0
        assert by_key[("OrinHigh-Ekya", "S4")] == 30.0
        assert by_key[("OrinHigh-Ekya", "S1")] == 120.0

    def test_chained_overrides_fire(self):
        # override[1] matches a seed only override[0] introduces; the
        # chain applies because matches bind against the expanded prefix.
        spec = make_spec(override=[
            {"match": {"scenario": "S4"}, "seeds": [5]},
            {"match": {"seed": 5}, "durations": [30.0]},
        ])
        cells = compile_plan(spec).groups[0].cells
        s4 = [c for c in cells if c.scenario == "S4"]
        assert {(c.seed, c.duration_s) for c in s4} == {(5, 30.0)}
        s1 = [c for c in cells if c.scenario == "S1"]
        assert {(c.seed, c.duration_s) for c in s1} == {(0, 120.0)}

    def test_no_duplicate_cells(self):
        spec = make_spec(override=[
            {"match": {"scenario": "S4"}, "seeds": [0, 1, 2]},
        ])
        cells = compile_plan(spec).groups[0].cells
        assert len(cells) == len(set(cells)) == 8


class TestPolicies:
    def test_explicit_policies_one_group_each(self):
        data_axes = {
            "systems": ["DaCapo-Spatiotemporal"],
            "pairs": ["resnet18_wrn50"],
            "scenarios": ["S1"],
            "policies": ["float64", "float32"],
        }
        plan = compile_plan(make_spec(axes=data_axes))
        assert [g.policy.name for g in plan.groups] == [
            "float64", "float32"
        ]
        assert plan.groups[0].cells == plan.groups[1].cells

    def test_ambient_policy_resolved_at_plan_time(self):
        spec = make_spec()
        with use_policy("float32"):
            plan = compile_plan(spec)
        assert [g.policy.name for g in plan.groups] == ["float32"]


class TestExamples:
    def test_fig9_example_compiles_to_fig9_cells(self):
        """The shipped spec is the fig9 grid, cell for cell, in order."""
        spec = load_spec(EXAMPLES / "fig9_sweep.toml")
        plan = compile_plan(spec)
        (group,) = plan.groups
        expected = tuple(
            SystemCell(system, pair, scenario, 0, 1200.0)
            for pair in FIG9_PAIRS
            for system in FIG9_SYSTEMS
            for scenario in FIG9_SCENARIOS
        )
        assert group.cells == expected

    def test_fig2_example_compiles_to_fig2_cells(self):
        spec = load_spec(EXAMPLES / "fig2_sweep.toml")
        (group,) = compile_plan(spec).groups
        expected = tuple(
            Fig2Cell(kind, platform, pair, "S5", 0, 600.0)
            for pair in FIG2_PAIRS
            for platform in FIG2_PLATFORMS
            for kind in FIG2_KINDS
        )
        assert group.cells == expected

    def test_fleet_smoke_example(self):
        spec = load_spec(EXAMPLES / "fleet_smoke.toml")
        plan = compile_plan(spec)
        assert [g.policy.name for g in plan.groups] == [
            "float64", "float32"
        ]
        durations = {
            (c.scenario, c.duration_s) for c in plan.groups[0].cells
        }
        assert durations == {("S1", 120.0), ("S4", 60.0)}


class TestEstimate:
    def test_counts_cells_streams_and_seconds(self):
        spec = make_spec(axes={
            "systems": ["DaCapo-Spatiotemporal", "OrinHigh-Ekya"],
            "pairs": ["resnet18_wrn50"],
            "scenarios": ["S1", "S4"],
            "seeds": [0, 1],
            "durations": [120.0],
            "policies": ["float64", "float32"],
        })
        est = compile_plan(spec).estimate(jobs=4)
        assert est.cells == 2 * 2 * 2 * 2
        # Streams are policy-namespaced: 2 scenarios x 2 seeds x 2 policies.
        assert est.distinct_streams == 8
        assert est.stream_seconds == est.cells * 120.0
        assert est.distinct_stream_seconds == 8 * 120.0
        assert est.pretrained_models == 2 * 2  # (pair, seed) per policy
        assert est.jobs == 4
        assert est.shards >= 2
        assert est.largest_shard_cells >= 1
        assert est.as_dict()["cells"] == est.cells

    def test_default_duration_priced_as_scenario_default(self):
        spec = make_spec(axes={
            "systems": ["DaCapo-Spatiotemporal"],
            "pairs": ["resnet18_wrn50"],
            "scenarios": ["S1"],
        })
        est = compile_plan(spec).estimate()
        assert est.stream_seconds == 1200.0

    def test_describe_mentions_costs(self):
        text = compile_plan(make_spec()).describe(jobs=2)
        assert "cells" in text and "distinct streams" in text
        assert "jobs=2" in text
