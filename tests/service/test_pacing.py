"""Tests for the real-time frame clock and per-stream pacers."""

import pytest

from repro.errors import ConfigurationError
from repro.service.pacing import (
    FrameClock,
    window_count,
    window_span,
)


class ManualClock:
    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t


class TestWindowMath:
    def test_exact_division(self):
        assert window_count(120.0, 60.0) == 2

    def test_ragged_final_window(self):
        assert window_count(125.0, 60.0) == 3
        assert window_span(2, 125.0, 60.0) == (120.0, 125.0)

    def test_stream_shorter_than_window_is_one_window(self):
        assert window_count(10.0, 60.0) == 1
        assert window_span(0, 10.0, 60.0) == (0.0, 10.0)

    def test_float_noise_does_not_add_a_window(self):
        # 0.3 / 0.1 is 2.9999...96 under floating point; the epsilon in
        # window_count keeps that at 3 windows, not 4.
        assert window_count(0.3, 0.1) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            window_count(0.0, 60.0)
        with pytest.raises(ConfigurationError):
            window_count(60.0, -1.0)


class TestFrameClock:
    def test_speedup_scales_wall_time(self):
        clock = FrameClock(60.0, ManualClock())
        assert clock.wall_per_stream_s(120.0) == pytest.approx(2.0)
        assert not clock.eager

    def test_eager_mode(self):
        clock = FrameClock(0.0, ManualClock())
        assert clock.eager
        assert clock.wall_per_stream_s(1e9) == 0.0

    def test_rejects_negative_speedup(self):
        with pytest.raises(ConfigurationError):
            FrameClock(-1.0)


class TestStreamPacer:
    def make(self, speedup=10.0, duration=120.0, window=60.0, epoch=100.0):
        manual = ManualClock(epoch)
        clock = FrameClock(speedup, manual)
        return manual, clock.pacer(duration, window, epoch=epoch)

    def test_arrival_schedule(self):
        _, pacer = self.make()
        # Window 0 covers stream [0, 60): fully arrived 6 wall seconds
        # after the epoch at 10x; window 1 at 12.
        assert pacer.arrival(0) == pytest.approx(106.0)
        assert pacer.arrival(1) == pytest.approx(112.0)

    def test_deadline_is_next_arrival(self):
        _, pacer = self.make()
        assert pacer.deadline(0) == pytest.approx(pacer.arrival(1))
        # The final window has no successor: one extra window of wall.
        assert pacer.deadline(1) == pytest.approx(118.0)

    def test_due(self):
        manual, pacer = self.make()
        assert not pacer.due(0, manual())
        manual.t = 106.0
        assert pacer.due(0, manual.t)
        assert not pacer.due(1, manual.t)
        # Indices past the stream are never due.
        assert not pacer.due(2, 1e9)

    def test_slack_and_completion(self):
        manual, pacer = self.make()
        manual.t = 108.0
        assert pacer.slack(0, manual.t) == pytest.approx(4.0)
        assert pacer.record_completion(0, manual.t) == pytest.approx(4.0)
        assert pacer.last_slack_s == pytest.approx(4.0)
        manual.t = 115.0  # 3 s past window 1's deadline at 112
        assert pacer.record_completion(1, manual.t) == pytest.approx(3.0)

    def test_eager_pacer_has_no_deadlines(self):
        manual = ManualClock(50.0)
        pacer = FrameClock(0.0, manual).pacer(120.0, 60.0)
        assert pacer.due(0, manual.t)
        assert pacer.due(1, manual.t)
        assert pacer.deadline(0) == float("inf")
        # Eager completions record no slack: timing noise must never
        # reach the session journal.
        assert pacer.record_completion(0, manual.t) is None
        assert pacer.last_slack_s is None
