"""Service-side co-windowed batching: coalescing and bit-identity.

The daemon's batching leg has two halves with different testability:
``_coalesce`` is a pure function of the pulled dispatch batch, so its
merge/passthrough rules are pinned directly on constructed specs; the
live coalescing in ``_dispatch_loop`` is opportunistic (it merges
whatever happens to be co-due in one pull), so the end-to-end test
asserts the only thing that must hold regardless of timing -- every
journaled window digest is bit-identical to an unbatched serve.
"""

import json

from repro.batching import OFF as BATCH_OFF
from repro.batching import ON as BATCH_ON
from repro.batching import use_batching
from repro.exec.shard import ShardSpec, SystemCell, shard_key
from repro.service import FleetService, ServiceConfig
from repro.share.policy import CLUSTER
from repro.share.policy import OFF as SHARE_OFF
from repro.service.session import session_path

POLICY = "float64"


def window_records(out):
    records = {}
    for line in session_path(out).read_text().splitlines():
        record = json.loads(line)
        if record.get("kind") == "window":
            records[(record["stream"], record["index"])] = record
    return records

CELLS = [
    SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 30.0),
    SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0, 30.0),
    SystemCell("DaCapo-Spatial", "resnet18_wrn50", "S4", 1, 30.0),
]


def make_service(batching, sharing=SHARE_OFF):
    # _coalesce reads only policy knobs; no supervisor state is needed.
    service = FleetService.__new__(FleetService)
    service.batching = batching
    service.sharing = sharing
    service.policy = POLICY
    return service


def window_spec(cell, w, snapshot=None, emit_snapshot=False):
    spec = ShardSpec(
        key=f"{shard_key(POLICY, [cell])}|w{w}",
        cells=(cell,),
        indices=(0,),
        policy=POLICY,
        snapshot=snapshot,
        emit_snapshot=emit_snapshot,
    )
    return (f"stream-{cell.scenario}-{cell.seed}", w, spec)


class TestCoalesce:
    def test_batching_off_passes_through(self):
        batch = [window_spec(cell, 0) for cell in CELLS]
        specs, members = make_service(BATCH_OFF)._coalesce(batch)
        assert [spec.key for spec in specs] == [
            spec.key for _, _, spec in batch
        ]
        for key, w, spec in batch:
            assert members[spec.key] == [(key, w, spec)]

    def test_sharing_on_passes_through(self):
        # Sharing keeps cluster-granular dispatch; coalescing stands down.
        batch = [window_spec(cell, 0) for cell in CELLS]
        specs, _ = make_service(BATCH_ON, sharing=CLUSTER)._coalesce(batch)
        assert [spec.key for spec in specs] == [
            spec.key for _, _, spec in batch
        ]

    def test_same_geometry_windows_merge(self):
        batch = [
            window_spec(CELLS[0], 2, snapshot={"origin_duration_s": 20.0}),
            window_spec(CELLS[1], 1, emit_snapshot=True),
            window_spec(CELLS[2], 1),
        ]
        specs, members = make_service(BATCH_ON)._coalesce(batch)
        assert len(specs) == 1
        merged = specs[0]
        assert merged.cells == (CELLS[0], CELLS[1], CELLS[2])
        assert merged.batch == "on"
        assert merged.snapshots == ({"origin_duration_s": 20.0}, None, None)
        assert merged.emit_snapshots == (False, True, False)
        assert members[merged.key] == batch

    def test_singletons_keep_their_original_spec(self):
        # A lone window must dispatch exactly as it would unbatched --
        # same spec object, no batched fields minted.
        lone = SystemCell("DaCapo-Ekya", "other_pair", "S1", 0, 30.0)
        batch = [
            window_spec(CELLS[0], 0),
            window_spec(CELLS[1], 0),
            window_spec(lone, 0),
        ]
        specs, members = make_service(BATCH_ON)._coalesce(batch)
        assert len(specs) == 2
        passthrough = [spec for spec in specs if len(spec.cells) == 1]
        assert passthrough == [batch[2][2]]
        assert members[passthrough[0].key] == [batch[2]]


class TestLiveSession:
    def test_batched_serve_is_bit_identical(self, tmp_path):
        records = {}
        for name, policy in (("off", BATCH_OFF), ("on", BATCH_ON)):
            out = tmp_path / name
            config = ServiceConfig(out_dir=out, window_s=10.0)
            with use_batching(policy):
                assert FleetService(config, CELLS).run() == 0
            records[name] = window_records(out)
        assert sorted(records["on"]) == sorted(records["off"])
        for key in records["off"]:
            assert json.dumps(records["on"][key], sort_keys=True) == (
                json.dumps(records["off"][key], sort_keys=True)
            ), key

    def test_start_event_journals_batching(self, tmp_path):
        config = ServiceConfig(out_dir=tmp_path, window_s=10.0)
        with use_batching(BATCH_ON):
            assert FleetService(config, CELLS[:1]).run() == 0
        starts = [
            json.loads(line)
            for line in session_path(tmp_path).read_text().splitlines()
            if json.loads(line).get("kind") == "event"
            and json.loads(line).get("name") == "start"
        ]
        assert starts and starts[0]["detail"]["batching"] == "on"
