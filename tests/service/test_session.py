"""Tests for the crash-safe session journal."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec.shard import SystemCell, cell_key
from repro.service.degrade import DegradeLevel, Transition
from repro.service.session import (
    SessionJournal,
    session_fingerprint,
    session_path,
)

FP = session_fingerprint("float64", 60.0)
CELL = SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 120.0)
KEY = cell_key("float64", CELL)


def make(tmp_path, resume=False):
    return SessionJournal(session_path(tmp_path), FP, resume=resume)


class TestFingerprint:
    def test_pins_policy_and_window(self):
        assert session_fingerprint("float64", 60.0) != session_fingerprint(
            "float32", 60.0
        )
        assert session_fingerprint("float64", 60.0) != session_fingerprint(
            "float64", 30.0
        )

    def test_resume_rejects_mismatch(self, tmp_path):
        make(tmp_path)
        with pytest.raises(ConfigurationError, match="different session"):
            SessionJournal(
                session_path(tmp_path),
                session_fingerprint("float64", 30.0),
                resume=True,
            )

    def test_resume_rejects_non_journal(self, tmp_path):
        path = session_path(tmp_path)
        path.write_text("not a journal\n")
        with pytest.raises(ConfigurationError, match="not a version"):
            SessionJournal(path, FP, resume=True)


class TestRoundTrip:
    def test_records_replay(self, tmp_path):
        journal = make(tmp_path)
        journal.record_event("start", {"resumed": False})
        log = journal.record_admit(KEY, CELL, "float64", 120.0, 60.0)
        assert log.total_windows == 2
        journal.record_window(KEY, 0, "fresh", digest="d0",
                              accuracy=0.9, frames=1800)
        journal.record_degrade(
            Transition(KEY, 1, DegradeLevel.NORMAL,
                       DegradeLevel.SKIP_RETRAIN, "deadline-miss")
        )
        journal.record_window(KEY, 1, "shed", frames=1800, dropped=1800)
        journal.record_retire(KEY, "complete")

        reloaded = SessionJournal(session_path(tmp_path), FP, resume=True)
        assert reloaded.resumed
        stream = reloaded.streams[KEY]
        assert stream.cell == CELL
        assert stream.windows[0]["digest"] == "d0"
        assert stream.windows[1]["mode"] == "shed"
        assert stream.dropped_frames == 1800
        assert len(stream.transitions) == 1
        assert stream.retired and stream.retire_reason == "complete"
        assert stream.complete
        assert reloaded.active_streams() == []
        assert [e["name"] for e in reloaded.events] == ["start"]

    def test_window_records_are_timing_free(self, tmp_path):
        journal = make(tmp_path)
        journal.record_admit(KEY, CELL, "float64", 120.0, 60.0)
        record = journal.record_window(KEY, 0, "fresh", digest="d0",
                                       accuracy=0.9, frames=10)
        assert set(record) <= {
            "kind", "stream", "index", "mode", "digest",
            "accuracy", "frames", "dropped", "result",
        }

    def test_rejects_unknown_mode(self, tmp_path):
        journal = make(tmp_path)
        journal.record_admit(KEY, CELL, "float64", 120.0, 60.0)
        with pytest.raises(ConfigurationError, match="unknown window mode"):
            journal.record_window(KEY, 0, "fresher")


class TestNextWindow:
    def test_gaps_above_do_not_advance(self, tmp_path):
        journal = make(tmp_path)
        log = journal.record_admit(KEY, CELL, "float64", 300.0, 60.0)
        journal.record_window(KEY, 0, "fresh", digest="d0")
        journal.record_window(KEY, 3, "shed", frames=10, dropped=10)
        assert log.next_window == 1
        journal.record_window(KEY, 1, "fresh", digest="d1")
        assert log.next_window == 2
        journal.record_window(KEY, 2, "stale", accuracy=0.5)
        assert log.next_window == 4
        assert not log.complete


class TestSnapshots:
    def snap(self, n, size=0):
        return {"v": 1, "origin_duration_s": 60.0 * (n + 1),
                "pad": "x" * size}

    def test_latest_snapshot_replays(self, tmp_path):
        journal = make(tmp_path)
        journal.record_admit(KEY, CELL, "float64", 120.0, 60.0)
        journal.record_snapshot(KEY, 0, self.snap(0))
        journal.record_window(KEY, 0, "fresh", digest="d0")
        journal.record_snapshot(KEY, 1, self.snap(1))
        journal.record_window(KEY, 1, "fresh", digest="d1")

        reloaded = SessionJournal(session_path(tmp_path), FP, resume=True)
        stream = reloaded.streams[KEY]
        assert stream.snapshot == self.snap(1)
        assert stream.snapshot_index == 1

    def test_snapshot_without_window_still_usable(self, tmp_path):
        # The journaling order (snapshot first, then window) means a kill
        # between the two leaves this shape; the snapshot must replay.
        journal = make(tmp_path)
        journal.record_admit(KEY, CELL, "float64", 120.0, 60.0)
        journal.record_snapshot(KEY, 0, self.snap(0))
        reloaded = SessionJournal(session_path(tmp_path), FP, resume=True)
        stream = reloaded.streams[KEY]
        assert stream.snapshot == self.snap(0)
        assert stream.next_window == 0  # the window itself never happened

    def test_compaction_prunes_superseded_snapshots(self, tmp_path):
        journal = SessionJournal(
            session_path(tmp_path), FP, resume=False, compact_bytes=600
        )
        log = journal.record_admit(KEY, CELL, "float64", 600.0, 60.0)
        for w in range(10):
            journal.record_snapshot(KEY, w, self.snap(w, size=200))
            journal.record_window(KEY, w, "fresh", digest=f"d{w}")
        journal.record_retire(KEY, "complete")

        lines = [
            json.loads(line)
            for line in session_path(tmp_path).read_text().splitlines()
        ]
        snapshots = [r for r in lines if r.get("kind") == "snapshot"]
        # Stale snapshot bytes passed the threshold repeatedly: only a
        # tail of snapshots survives, the newest among them.
        assert len(snapshots) < 10
        assert snapshots[-1]["index"] == 9
        # Everything else is intact, in order, on a resumable journal.
        windows = [r for r in lines if r.get("kind") == "window"]
        assert [r["index"] for r in windows] == list(range(10))
        reloaded = SessionJournal(session_path(tmp_path), FP, resume=True)
        stream = reloaded.streams[KEY]
        assert stream.snapshot_index == 9
        assert stream.complete and stream.retired
        assert log.windows.keys() == stream.windows.keys()

    def test_compaction_keeps_one_snapshot_per_stream(self, tmp_path):
        other_cell = SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S4",
                                0, 120.0)
        other_key = cell_key("float64", other_cell)
        journal = SessionJournal(
            session_path(tmp_path), FP, resume=False, compact_bytes=1
        )
        journal.record_admit(KEY, CELL, "float64", 120.0, 60.0)
        journal.record_admit(other_key, other_cell, "float64", 120.0, 60.0)
        journal.record_snapshot(KEY, 0, self.snap(0))
        journal.record_snapshot(other_key, 0, self.snap(0))
        journal.record_snapshot(KEY, 1, self.snap(1))

        reloaded = SessionJournal(session_path(tmp_path), FP, resume=True)
        assert reloaded.streams[KEY].snapshot_index == 1
        assert reloaded.streams[other_key].snapshot_index == 0
        snapshots = [
            json.loads(line)
            for line in session_path(tmp_path).read_text().splitlines()
            if '"snapshot"' in line
        ]
        assert len(snapshots) == 2

    def test_torn_tail_after_compaction(self, tmp_path):
        journal = SessionJournal(
            session_path(tmp_path), FP, resume=False, compact_bytes=1
        )
        journal.record_admit(KEY, CELL, "float64", 120.0, 60.0)
        journal.record_snapshot(KEY, 0, self.snap(0))
        journal.record_snapshot(KEY, 1, self.snap(1))  # compacts
        path = session_path(tmp_path)
        with path.open("a") as handle:
            handle.write('{"kind": "window", "stream"')

        reloaded = SessionJournal(path, FP, resume=True)
        stream = reloaded.streams[KEY]
        assert stream.snapshot_index == 1
        assert stream.next_window == 0


class TestTornTail:
    def test_torn_final_line_is_dropped_and_terminated(self, tmp_path):
        journal = make(tmp_path)
        journal.record_admit(KEY, CELL, "float64", 120.0, 60.0)
        journal.record_window(KEY, 0, "fresh", digest="d0")
        path = session_path(tmp_path)
        torn = json.dumps({"kind": "window", "stream": KEY, "index": 1,
                           "mode": "fresh", "digest": "d1"})
        with path.open("a") as handle:
            handle.write(torn[: len(torn) // 2])

        reloaded = SessionJournal(path, FP, resume=True)
        stream = reloaded.streams[KEY]
        # The torn window never happened; the intact prefix survives.
        assert list(stream.windows) == [0]
        assert stream.next_window == 1
        # The torn tail was newline-terminated: appending again yields a
        # parseable file end to end except the one torn line.
        reloaded.record_window(KEY, 1, "fresh", digest="d1-again")
        lines = path.read_text().splitlines()
        parsed = []
        for line in lines:
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError:
                parsed.append(None)
        assert parsed.count(None) == 1
        assert parsed[-1]["digest"] == "d1-again"
