"""Tests for the degradation ladder state machine."""

from repro.service.degrade import (
    DegradationLadder,
    DegradeLevel,
    LEVEL_ACTIONS,
    Transition,
)


class TestEscalation:
    def test_one_level_per_miss(self):
        ladder = DegradationLadder("cam0")
        assert ladder.action() == "dispatch"
        t = ladder.on_miss(3)
        assert (t.from_level, t.to_level) == (
            DegradeLevel.NORMAL, DegradeLevel.SKIP_RETRAIN,
        )
        assert ladder.action() == "defer"
        ladder.on_miss(4)
        assert ladder.level == DegradeLevel.STALE_STUDENT
        assert ladder.action() == "stale"
        ladder.on_miss(5)
        assert ladder.level == DegradeLevel.SHED
        assert ladder.action() == "shed"

    def test_clamped_at_shed(self):
        ladder = DegradationLadder("cam0")
        for w in range(10):
            ladder.on_miss(w)
        assert ladder.level == DegradeLevel.SHED
        # Clamped escalations return no transition (nothing to journal)
        # but still count as misses.
        assert ladder.on_miss(99) is None
        assert ladder.misses == 11

    def test_transition_record_shape(self):
        t = Transition("cam0", 7, DegradeLevel.NORMAL,
                       DegradeLevel.SKIP_RETRAIN, "deadline-miss")
        assert t.as_record() == {
            "stream": "cam0",
            "window": 7,
            "from": "NORMAL",
            "to": "SKIP_RETRAIN",
            "reason": "deadline-miss",
        }


class TestRecovery:
    def test_one_level_per_recovery(self):
        ladder = DegradationLadder("cam0")
        for w in range(3):
            ladder.on_miss(w)
        t = ladder.on_recover(3)
        assert (t.from_level, t.to_level) == (
            DegradeLevel.SHED, DegradeLevel.STALE_STUDENT,
        )
        assert t.reason == "caught-up"
        ladder.on_recover(4)
        ladder.on_recover(5)
        assert ladder.level == DegradeLevel.NORMAL
        assert ladder.on_recover(6) is None  # clamped at NORMAL

    def test_counters(self):
        ladder = DegradationLadder("cam0")
        ladder.on_miss(0)
        ladder.on_recover(1)
        ladder.on_recover(2)
        assert ladder.misses == 1
        assert ladder.recoveries == 2


class TestDisabled:
    def test_disabled_ladder_pins_normal_but_counts(self):
        ladder = DegradationLadder("cam0", enabled=False)
        assert ladder.on_miss(0) is None
        assert ladder.on_miss(1) is None
        assert ladder.level == DegradeLevel.NORMAL
        assert ladder.action() == "dispatch"
        assert ladder.misses == 2


def test_every_level_has_an_action():
    assert set(LEVEL_ACTIONS) == set(DegradeLevel)
