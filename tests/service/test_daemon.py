"""Tests for the resident fleet daemon: sessions, crashes, control plane."""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exec.faults import DIE_EXIT_CODE, FaultEntry, FaultPlan, save_plan
from repro.exec.shard import SystemCell
from repro.service import FleetService, ServiceConfig
from repro.service.control import control_request
from repro.service.reference import (
    SERVICE_REFERENCE_WINDOW_S,
    service_reference_cells,
    service_reference_path,
)
from repro.service.session import session_path

CELLS = [
    SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 30.0),
    SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S4", 0, 30.0),
]

# One eager serve of CELLS at window 10: run by the crash-recovery matrix
# below, in a child process so daemon-kill's os._exit stays contained.
CHILD = """
import sys
from repro.exec.shard import SystemCell
from repro.service import FleetService, ServiceConfig

cells = [
    SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 30.0),
    SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S4", 0, 30.0),
]
config = ServiceConfig(out_dir=sys.argv[1], window_s=10.0, backend=sys.argv[2])
sys.exit(FleetService(config, cells).run())
"""

# Same serve with segment-aligned windows (60 s on 180 s streams): the
# shape where incremental mode actually carries snapshots across windows
# -- and must still recover from a SIGKILL bit-identically.
CHILD_ALIGNED = """
import sys
from repro.exec.shard import SystemCell
from repro.service import FleetService, ServiceConfig

cells = [
    SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 180.0),
    SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S4", 0, 180.0),
]
config = ServiceConfig(out_dir=sys.argv[1], window_s=60.0, backend=sys.argv[2])
sys.exit(FleetService(config, cells).run())
"""


def serve_child(out, backend="serial", extra_env=None, script=CHILD):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    if extra_env:
        env.update(extra_env)
    # Output goes to a file, not a pipe: the daemon's spawned queue
    # workers inherit stdio, and a daemon-kill must not leave this test
    # waiting on pipe-EOF from a worker that outlives the kill briefly.
    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)
    err_path = out.with_name(out.name + ".stderr")
    with err_path.open("ab") as err:
        proc = subprocess.run(
            [sys.executable, "-c", script, str(out), backend],
            env=env,
            stdout=err,
            stderr=err,
            timeout=300,
        )
    proc.stderr = err_path.read_text()
    return proc


def window_records(out):
    records = {}
    for line in session_path(out).read_text().splitlines():
        record = json.loads(line)
        if record.get("kind") == "window":
            records[(record["stream"], record["index"])] = record
    return records


class TestEagerSession:
    @pytest.mark.parametrize("window_mode", ["incremental", "prefix"])
    def test_session_matches_frozen_window_digests(
        self, tmp_path, window_mode
    ):
        frozen = json.loads(service_reference_path().read_text())
        config = ServiceConfig(
            out_dir=tmp_path,
            window_s=SERVICE_REFERENCE_WINDOW_S,
            window_mode=window_mode,
        )
        assert FleetService(config, service_reference_cells()).run() == 0
        records = window_records(tmp_path)
        assert len(records) == len(frozen["windows"])
        for (stream, index), record in records.items():
            assert record["mode"] == "fresh"
            assert record["digest"] == frozen["windows"][f"{stream}|w{index}"]
        state = json.loads((tmp_path / "state.json").read_text())
        assert all(s["retired"] for s in state["streams"].values())
        assert state["inflight"] == 0
        assert state["window_mode"] == window_mode

    def test_admit_is_idempotent_and_duration_resolves(self, tmp_path):
        config = ServiceConfig(out_dir=tmp_path, window_s=10.0)
        service = FleetService(config, [CELLS[0], CELLS[0]])
        assert service.run() == 0
        assert len(service.streams) == 1

    def test_rejects_unknown_window_mode(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="window_mode"):
            ServiceConfig(out_dir=tmp_path, window_mode="both")


class TestIncrementalWindows:
    ALIGNED = [
        SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 180.0),
        SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0, 180.0),
    ]

    @pytest.mark.parametrize("backend", ["serial", "queue:2"])
    def test_modes_journal_identical_window_records(self, tmp_path, backend):
        records = {}
        for mode in ("incremental", "prefix"):
            out = tmp_path / mode
            config = ServiceConfig(
                out_dir=out, window_s=60.0, backend=backend, window_mode=mode
            )
            assert FleetService(config, self.ALIGNED).run() == 0
            records[mode] = window_records(out)

        assert sorted(records["incremental"]) == sorted(records["prefix"])
        for key in records["prefix"]:
            assert json.dumps(records["incremental"][key], sort_keys=True) == (
                json.dumps(records["prefix"][key], sort_keys=True)
            ), key

    def test_snapshots_journaled_incremental_only(self, tmp_path):
        for mode, expected in (("incremental", True), ("prefix", False)):
            out = tmp_path / mode
            config = ServiceConfig(out_dir=out, window_s=60.0,
                                   window_mode=mode)
            assert FleetService(config, self.ALIGNED[:1]).run() == 0
            lines = [
                json.loads(line)
                for line in session_path(out).read_text().splitlines()
            ]
            snapshots = [r for r in lines if r.get("kind") == "snapshot"]
            assert bool(snapshots) is expected
            if expected:
                # One per window except the last (it has no consumer),
                # each journaled before its own window record.
                assert [s["index"] for s in snapshots] == [0, 1]
                positions = {
                    (r.get("kind"), r.get("index")): pos
                    for pos, r in enumerate(lines)
                }
                for s in snapshots:
                    assert positions[("snapshot", s["index"])] < (
                        positions[("window", s["index"])]
                    )

    def test_unaligned_windows_fall_back_to_prefix(self, tmp_path):
        # window_s=10 never lands on a segment boundary: no snapshots are
        # emitted, every window is a plain prefix run, digests unchanged.
        config = ServiceConfig(out_dir=tmp_path, window_s=10.0,
                               window_mode="incremental")
        assert FleetService(config, CELLS[:1]).run() == 0
        lines = [
            json.loads(line)
            for line in session_path(tmp_path).read_text().splitlines()
        ]
        assert not any(r.get("kind") == "snapshot" for r in lines)
        assert all(
            r["mode"] == "fresh"
            for r in lines if r.get("kind") == "window"
        )


class TestCrashRecovery:
    @pytest.mark.parametrize("backend", ["serial", "queue:2"])
    def test_kill_restart_resumes_bit_identically(self, tmp_path, backend):
        clean = tmp_path / "clean"
        r = serve_child(clean)
        assert r.returncode == 0, r.stderr

        chaos = tmp_path / "chaos"
        plan_path = tmp_path / "faults.json"
        save_plan(
            FaultPlan(entries=(FaultEntry(kind="daemon-kill", match="|w1"),)),
            plan_path,
        )
        env = {"REPRO_FAULT_PLAN": str(plan_path)}
        first = serve_child(chaos, backend, env)
        assert first.returncode == DIE_EXIT_CODE, first.stderr
        second = serve_child(chaos, backend, env)
        assert second.returncode == 0, second.stderr

        clean_windows = window_records(clean)
        chaos_windows = window_records(chaos)
        assert sorted(clean_windows) == sorted(chaos_windows)
        for key in clean_windows:
            assert json.dumps(clean_windows[key], sort_keys=True) == (
                json.dumps(chaos_windows[key], sort_keys=True)
            ), key

        # The windows journaled before the kill were NOT recomputed: the
        # restarted session's journal replays them from disk.
        lines = [
            json.loads(line)
            for line in session_path(chaos).read_text().splitlines()
        ]
        starts = [
            r for r in lines
            if r.get("kind") == "event" and r.get("name") == "start"
        ]
        assert [s["detail"]["resumed"] for s in starts] == [False, True]
        pre_kill = sum(
            1 for r in lines[: lines.index(starts[1])]
            if r.get("kind") == "window"
        )
        post = sum(1 for r in lines if r.get("kind") == "window")
        assert pre_kill >= 1
        assert post == len(clean_windows)

    @pytest.mark.parametrize("backend", ["serial", "queue:2"])
    def test_incremental_kill_restart_resumes_from_snapshot(
        self, tmp_path, backend
    ):
        env = {"REPRO_WINDOW_MODE": "incremental"}
        clean = tmp_path / "clean"
        r = serve_child(clean, extra_env=env, script=CHILD_ALIGNED)
        assert r.returncode == 0, r.stderr

        chaos = tmp_path / "chaos"
        plan_path = tmp_path / "faults.json"
        save_plan(
            FaultPlan(entries=(FaultEntry(kind="daemon-kill", match="|w1"),)),
            plan_path,
        )
        chaos_env = dict(env, REPRO_FAULT_PLAN=str(plan_path))
        first = serve_child(chaos, backend, chaos_env, script=CHILD_ALIGNED)
        assert first.returncode == DIE_EXIT_CODE, first.stderr
        pre = [
            json.loads(line)
            for line in session_path(chaos).read_text().splitlines()
        ]
        # The kill fired after a window record's fsync; that window's
        # snapshot (journaled first) is in the file for the restart.
        assert any(r.get("kind") == "snapshot" for r in pre)

        second = serve_child(chaos, backend, chaos_env, script=CHILD_ALIGNED)
        assert second.returncode == 0, second.stderr

        clean_windows = window_records(clean)
        chaos_windows = window_records(chaos)
        assert sorted(clean_windows) == sorted(chaos_windows)
        for key in clean_windows:
            assert json.dumps(clean_windows[key], sort_keys=True) == (
                json.dumps(chaos_windows[key], sort_keys=True)
            ), key

        lines = [
            json.loads(line)
            for line in session_path(chaos).read_text().splitlines()
        ]
        starts = [
            r for r in lines
            if r.get("kind") == "event" and r.get("name") == "start"
        ]
        assert [s["detail"]["resumed"] for s in starts] == [False, True]
        assert all(
            s["detail"]["window_mode"] == "incremental" for s in starts
        )
        # The restarted session kept serving incrementally: windows it
        # computed fresh journaled their own snapshots after the resume.
        post_resume = lines[lines.index(starts[1]):]
        assert any(r.get("kind") == "snapshot" for r in post_resume)


class TestOversubscription:
    def test_ladder_degrades_and_the_daemon_survives(self, tmp_path):
        # 100000x speedup: a 30 s window "arrives" every 0.3 ms of wall
        # clock, far faster than any prefix run completes -- every stream
        # is oversubscribed from the first window on.
        cell = SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 300.0)
        config = ServiceConfig(
            out_dir=tmp_path, window_s=30.0, speedup=100000.0
        )
        assert FleetService(config, [cell]).run() == 0

        lines = [
            json.loads(line)
            for line in session_path(tmp_path).read_text().splitlines()
        ]
        windows = {r["index"]: r for r in lines if r.get("kind") == "window"}
        assert sorted(windows) == list(range(10))  # no window lost
        modes = {r["mode"] for r in windows.values()}
        assert "fresh" in modes and "shed" in modes
        transitions = [r for r in lines if r.get("kind") == "degrade"]
        assert any(t["to"] == "SHED" for t in transitions)
        assert all(
            t["reason"] in ("deadline-miss", "caught-up", "dispatch-failed")
            for t in transitions
        )

        state = json.loads((tmp_path / "state.json").read_text())
        stream = next(iter(state["streams"].values()))
        assert stream["dropped_frames"] > 0
        assert stream["drop_rate"] > 0.0
        assert stream["misses"] > 0
        assert stream["retired"]

    def test_degrade_false_pins_normal(self, tmp_path):
        cell = SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S1", 0, 60.0)
        config = ServiceConfig(
            out_dir=tmp_path, window_s=10.0, speedup=100000.0, degrade=False
        )
        assert FleetService(config, [cell]).run() == 0
        records = window_records(tmp_path)
        # Pure backpressure: late, but every window still computed fresh.
        assert len(records) == 6
        assert all(r["mode"] == "fresh" for r in records.values())


class TestControlPlane:
    def start_service(self, tmp_path):
        config = ServiceConfig(
            out_dir=tmp_path, window_s=10.0, control_port=0, stay=True
        )
        service = FleetService(config)
        thread = threading.Thread(target=service.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if service.control is not None and service.control.port:
                try:
                    if control_request(service.control.port, "/health")["ok"]:
                        return service, thread
                except OSError:
                    pass
            time.sleep(0.02)
        raise AssertionError("control plane never came up")

    def wait_for(self, port, predicate, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            state = control_request(port, "/state")
            if predicate(state):
                return state
            time.sleep(0.05)
        raise AssertionError("condition never reached; last state: "
                             f"{json.dumps(state)}")

    def test_admit_state_retire_drain(self, tmp_path):
        service, thread = self.start_service(tmp_path)
        port = service.control.port
        try:
            admitted = control_request(port, "/admit", {
                "system": "DaCapo-Ekya",
                "pair": "resnet18_wrn50",
                "scenario": "S1",
                "seed": 0,
                "duration_s": 20.0,
            })
            assert admitted["ok"], admitted
            key = admitted["stream"]
            assert admitted["windows"] == 2

            # Live per-stream state appears and the stream runs to
            # completion under the daemon, visible over HTTP.
            state = self.wait_for(
                port,
                lambda s: s["streams"].get(key, {}).get("retired"),
            )
            stream = state["streams"][key]
            assert stream["windows_done"] == 2
            assert stream["accuracy"] is not None
            assert stream["level"] == "NORMAL"
            assert stream["retire_reason"] == "complete"

            streams = control_request(port, "/streams")
            assert key in streams["streams"]

            # Command errors are typed and never kill the daemon.
            bad = control_request(port, "/admit", {"system": "NoSuchSystem",
                                                   "pair": "resnet18_wrn50",
                                                   "scenario": "S1"})
            assert not bad["ok"] and "unknown system" in bad["error"]
            missing = control_request(port, "/retire", {"stream": "ghost"})
            assert not missing["ok"] and "unknown stream" in missing["error"]
            again = control_request(port, "/retire", {"stream": key})
            assert again["ok"] and again.get("already_retired")

            # A second stream is retired by command mid-life.
            second = control_request(port, "/admit", {
                "system": "DaCapo-Ekya",
                "pair": "resnet18_wrn50",
                "scenario": "S4",
                "seed": 0,
                "duration_s": 1200.0,
            })
            assert second["ok"]
            retired = control_request(
                port, "/retire", {"stream": second["stream"]}
            )
            assert retired["ok"]
            state = self.wait_for(
                port,
                lambda s: s["streams"][second["stream"]]["retired"],
            )
            assert (
                state["streams"][second["stream"]]["retire_reason"]
                == "command"
            )

            drained = control_request(port, "/drain", {})
            assert drained["ok"] and drained["draining"]
        finally:
            # Belt: if an assertion fired before /drain, stop the thread.
            if thread.is_alive():
                try:
                    control_request(port, "/drain", {})
                except OSError:
                    pass
        thread.join(timeout=120.0)
        assert not thread.is_alive()
        assert (tmp_path / "state.json").exists()
        assert (tmp_path / "control.port").read_text().strip() == str(port)

    def test_health_endpoint(self, tmp_path):
        service, thread = self.start_service(tmp_path)
        port = service.control.port
        try:
            health = control_request(port, "/health")
            assert health == {"ok": True, "draining": False}
            missing = control_request(port, "/nope")
            assert not missing["ok"]
        finally:
            control_request(port, "/drain", {})
            thread.join(timeout=60.0)


SHARED_CELLS = [
    SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", s, 180.0)
    for s in range(3)
]


class TestSharedService:
    def serve(self, out_dir, window_s=60.0):
        from repro.share.policy import CLUSTER, use_sharing

        config = ServiceConfig(out_dir=out_dir, window_s=window_s)
        with use_sharing(CLUSTER):
            # The sharing policy is captured at construction time.
            service = FleetService(config, list(SHARED_CELLS))
            assert service.run() == 0
        return service

    def test_shared_session_journals_cluster_state(self, tmp_path):
        # Three correlated cameras on one S4 intersection: one cluster,
        # whose weight state rides the session journal window by window.
        service = self.serve(tmp_path)
        lines = [
            json.loads(line)
            for line in session_path(tmp_path).read_text().splitlines()
        ]
        clusters = [r for r in lines if r.get("kind") == "cluster"]
        assert clusters and all(r["cluster"] == "c0" for r in clusters)
        counters = clusters[-1]["state"]["counters"]
        assert counters["retrains_run"] > 0
        assert counters["warm_starts"] >= 1  # later members inherit

        state = json.loads((tmp_path / "state.json").read_text())
        assert state["sharing"]["policy"] == "cluster"
        assert state["sharing"]["clusters"] == ["c0"]
        assert all(
            s["cluster"] == "c0" for s in state["streams"].values()
        )
        assert all(s["retired"] for s in state["streams"].values())
        assert service.journal.clusters.keys() == {"c0"}

    def test_resume_replays_clusters_without_recompute(self, tmp_path):
        self.serve(tmp_path)
        before = window_records(tmp_path)
        service = self.serve(tmp_path)  # same dir: pure replay
        after = window_records(tmp_path)
        assert after == before
        assert service.journal.clusters.keys() == {"c0"}
        # Replay did not append new window records.
        lines = session_path(tmp_path).read_text().splitlines()
        windows = [
            line for line in lines
            if json.loads(line).get("kind") == "window"
        ]
        assert len(windows) == len(before)

    def test_shared_journal_refuses_independent_resume(self, tmp_path):
        from repro.errors import ConfigurationError

        self.serve(tmp_path)
        config = ServiceConfig(out_dir=tmp_path, window_s=60.0)
        with pytest.raises(ConfigurationError, match="different session"):
            FleetService(config, list(SHARED_CELLS)).run()


class TestAdmissionControl:
    def start_service(self, tmp_path):
        # degrade=False pins ladders wherever the test sets them -- the
        # supervisor cannot race a manual SHED back to NORMAL.
        config = ServiceConfig(
            out_dir=tmp_path,
            window_s=10.0,
            control_port=0,
            stay=True,
            degrade=False,
        )
        service = FleetService(config)
        thread = threading.Thread(target=service.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if service.control is not None and service.control.port:
                try:
                    if control_request(service.control.port, "/health")["ok"]:
                        return service, thread
                except OSError:
                    pass
            time.sleep(0.02)
        raise AssertionError("control plane never came up")

    @staticmethod
    def raw_admit(port, payload):
        from http.client import HTTPConnection

        conn = HTTPConnection("127.0.0.1", port, timeout=30.0)
        try:
            conn.request(
                "POST",
                "/admit",
                body=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_admit_returns_503_while_shedding(self, tmp_path):
        from repro.service.degrade import DegradeLevel

        first = {
            "system": "DaCapo-Ekya",
            "pair": "resnet18_wrn50",
            "scenario": "S1",
            "seed": 0,
            "duration_s": 600.0,
        }
        second = dict(first, scenario="S4")
        service, thread = self.start_service(tmp_path)
        port = service.control.port
        try:
            status, admitted = self.raw_admit(port, first)
            assert status == 200 and admitted["ok"], admitted
            key = admitted["stream"]

            service.streams[key].ladder.level = DegradeLevel.SHED

            # A *new* stream is refused with a typed 503 while any live
            # stream is shedding...
            status, refused = self.raw_admit(port, second)
            assert status == 503, refused
            assert refused == {
                "ok": False,
                "refused": True,
                "error": refused["error"],
            }
            assert "overloaded" in refused["error"]
            assert key in refused["error"]

            # ...but re-admitting a known key stays idempotent (it adds
            # no load), and recovery reopens the door.
            status, again = self.raw_admit(port, first)
            assert status == 200 and again["ok"] and again["stream"] == key

            service.streams[key].ladder.level = DegradeLevel.NORMAL
            status, now_ok = self.raw_admit(port, second)
            assert status == 200 and now_ok["ok"], now_ok

            for payload in (first, second):
                retired = control_request(
                    port, "/retire", {"stream": now_ok["stream"]
                                      if payload is second else key}
                )
                assert retired["ok"]
            drained = control_request(port, "/drain", {})
            assert drained["ok"]
        finally:
            if thread.is_alive():
                try:
                    control_request(port, "/drain", {})
                except OSError:
                    pass
        thread.join(timeout=120.0)
        assert not thread.is_alive()
