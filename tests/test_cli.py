"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main

TINY_SWEEP = {
    "sweep": {"name": "cli-tiny", "title": "CLI tiny fleet"},
    "axes": {
        "systems": ["DaCapo-Spatiotemporal"],
        "pairs": ["resnet18_wrn50"],
        "scenarios": ["S1", "S4"],
        "durations": [60.0],
    },
    "aggregate": {"group_by": ["policy", "scenario"],
                  "percentiles": [50],
                  "metrics": ["accuracy", "drop_rate"]},
}


@pytest.fixture
def tiny_spec_path(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(TINY_SWEEP))
    return path


class TestList:
    def test_lists_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "DaCapo-Spatiotemporal" in out
        assert "S1" in out
        assert "resnet18_wrn50" in out


class TestExperiment:
    def test_runs_table_experiment(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_jobs_on_unsupported_experiment_warns_and_runs(self, capsys):
        # table1 takes no jobs parameter: the CLI warns on stderr and
        # runs serially instead of crashing.
        assert main(["experiment", "table1", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "does not support --jobs" in captured.err
        assert "Nt" in captured.out

    def test_invalid_jobs_exits_2_with_one_line_message(self, capsys):
        assert main(["experiment", "table2", "--jobs", "-1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "jobs must be >= 0" in err
        assert len(err.strip().splitlines()) == 1


class TestRun:
    def test_runs_system(self, capsys):
        code = main([
            "run", "DaCapo-Spatiotemporal", "resnet18_wrn50", "S1",
            "--duration", "120",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "average_accuracy" in out

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["run", "H100", "resnet18_wrn50", "S1"])


class TestSweep:
    def test_plan_only(self, tiny_spec_path, capsys):
        assert main(["sweep", str(tiny_spec_path), "--plan"]) == 0
        out = capsys.readouterr().out
        assert "cli-tiny" in out
        assert "distinct streams" in out

    def test_runs_and_writes_outputs(self, tiny_spec_path, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main([
            "sweep", str(tiny_spec_path), "--jobs", "2",
            "--out", str(out_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Aggregate by (policy, scenario)" in out
        document = json.loads(
            (out_dir / "sweep_cli-tiny.json").read_text()
        )
        assert len(document["cells"]) == 2
        assert (out_dir / "sweep_cli-tiny_aggregate.csv").is_file()

    def test_missing_spec_exits_2(self, tmp_path, capsys):
        assert main(["sweep", str(tmp_path / "nope.toml")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_invalid_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text(
            "[sweep]\nname = 'bad'\n[axes]\nsystems = ['H100']\n"
            "pairs = ['resnet18_wrn50']\nscenarios = ['S1']\n"
        )
        assert main(["sweep", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown system" in err

    def test_invalid_jobs_exits_2(self, tiny_spec_path, capsys):
        assert main(["sweep", str(tiny_spec_path), "--jobs", "-2"]) == 2
        assert "jobs must be >= 0" in capsys.readouterr().err

    def test_plan_rejects_invalid_jobs_too(self, tiny_spec_path, capsys):
        # --plan must not silently price an invalid worker count at 1.
        code = main([
            "sweep", str(tiny_spec_path), "--plan", "--jobs", "-5",
        ])
        assert code == 2
        assert "jobs must be >= 0" in capsys.readouterr().err


class TestBackend:
    def test_sweep_runs_on_subprocess_backend(
        self, tiny_spec_path, tmp_path, capsys
    ):
        out_dir = tmp_path / "out"
        code = main([
            "sweep", str(tiny_spec_path), "--backend", "subprocess:2",
            "--out", str(out_dir),
        ])
        assert code == 0
        assert "Aggregate by (policy, scenario)" in capsys.readouterr().out
        document = json.loads(
            (out_dir / "sweep_cli-tiny.json").read_text()
        )
        assert len(document["cells"]) == 2

    def test_invalid_backend_exits_2(self, tiny_spec_path, capsys):
        assert main([
            "sweep", str(tiny_spec_path), "--backend", "quantum"
        ]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_plan_validates_backend_and_prices_its_workers(
        self, tiny_spec_path, capsys
    ):
        # --plan must reject a bad backend exactly like a real run...
        assert main([
            "sweep", str(tiny_spec_path), "--plan", "--backend", "quantum"
        ]) == 2
        assert "unknown backend" in capsys.readouterr().err
        # ...and price at the backend's own worker count, not --jobs.
        assert main([
            "sweep", str(tiny_spec_path), "--plan",
            "--backend", "subprocess:2",
        ]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_plan_honors_ambient_backend_env(
        self, tiny_spec_path, capsys, monkeypatch
    ):
        # The printed plan must price what the real run would resolve:
        # an ambient REPRO_BACKEND=serial pins one worker despite --jobs.
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert main([
            "sweep", str(tiny_spec_path), "--plan", "--jobs", "8",
        ]) == 0
        assert "jobs=1" in capsys.readouterr().out

    def test_backend_on_unsupported_experiment_warns(self, capsys):
        assert main([
            "experiment", "table1", "--backend", "serial"
        ]) == 0
        captured = capsys.readouterr()
        assert "does not route through" in captured.err
        assert "Nt" in captured.out

    def test_experiment_backend_serial_matches_default(self, capsys):
        assert main([
            "experiment", "table2", "--backend", "serial"
        ]) == 0
        assert "S1" in capsys.readouterr().out


class TestKillAndResume:
    def test_injected_abort_exits_3_then_resume_completes(
        self, tiny_spec_path, tmp_path, capsys, monkeypatch
    ):
        out_dir = tmp_path / "out"
        monkeypatch.setenv("REPRO_SWEEP_ABORT_AFTER_SHARDS", "1")
        code = main([
            "sweep", str(tiny_spec_path), "--out", str(out_dir),
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.err.startswith("repro: error:")
        assert "injected abort" in captured.err
        monkeypatch.delenv("REPRO_SWEEP_ABORT_AFTER_SHARDS")

        code = main([
            "sweep", str(tiny_spec_path), "--out", str(out_dir),
            "--resume",
        ])
        assert code == 0
        document = json.loads(
            (out_dir / "sweep_cli-tiny.json").read_text()
        )
        assert len(document["cells"]) == 2

    def test_resume_without_out_exits_2(self, tiny_spec_path, capsys):
        assert main([
            "sweep", str(tiny_spec_path), "--resume",
        ]) == 2
        assert "output directory" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_worker_subcommand_is_registered(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "worker" in capsys.readouterr().out


class TestServe:
    def test_serves_a_spec_to_completion(self, tiny_spec_path, tmp_path,
                                         capsys):
        out_dir = tmp_path / "svc"
        code = main([
            "serve", str(tiny_spec_path),
            "--out", str(out_dir), "--window", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 2 stream(s)" in out
        assert "session journal" in out
        records = [
            json.loads(line)
            for line in (out_dir / "session.jsonl").read_text().splitlines()
        ]
        windows = [r for r in records if r.get("kind") == "window"]
        # 2 streams x (60 s / 30 s) windows, all fresh in eager mode.
        assert len(windows) == 4
        assert all(r["mode"] == "fresh" for r in windows)
        assert (out_dir / "state.json").is_file()

    def test_rerun_resumes_without_recompute(self, tiny_spec_path, tmp_path,
                                             capsys):
        out_dir = tmp_path / "svc"
        argv = ["serve", str(tiny_spec_path),
                "--out", str(out_dir), "--window", "30"]
        assert main(argv) == 0
        before = (out_dir / "session.jsonl").read_text()
        assert main(argv) == 0
        after = (out_dir / "session.jsonl").read_text()
        # Every stream was already complete: the rerun appends only its
        # own start/shutdown events, never another window record.
        assert after.startswith(before)
        fresh = [
            json.loads(line) for line in after.splitlines()
        ]
        assert sum(1 for r in fresh if r.get("kind") == "window") == 4

    def test_multi_policy_spec_exits_2(self, tmp_path, capsys):
        spec = json.loads(json.dumps(TINY_SWEEP))
        spec["axes"]["policies"] = ["float64", "float32"]
        path = tmp_path / "multi.json"
        path.write_text(json.dumps(spec))
        code = main([
            "serve", str(path), "--out", str(tmp_path / "svc"),
        ])
        assert code == 2
        assert "single-policy" in capsys.readouterr().err

    def test_missing_spec_exits_2(self, tmp_path, capsys):
        code = main([
            "serve", str(tmp_path / "nope.toml"),
            "--out", str(tmp_path / "svc"),
        ])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_worker_missing_queue_dir_exits_2(self, tmp_path, capsys):
        assert main(["worker", "--queue", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "not a queue directory" in err
