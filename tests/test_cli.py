"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "DaCapo-Spatiotemporal" in out
        assert "S1" in out
        assert "resnet18_wrn50" in out


class TestExperiment:
    def test_runs_table_experiment(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestRun:
    def test_runs_system(self, capsys):
        code = main([
            "run", "DaCapo-Spatiotemporal", "resnet18_wrn50", "S1",
            "--duration", "120",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "average_accuracy" in out

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["run", "H100", "resnet18_wrn50", "S1"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
