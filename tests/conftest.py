"""Suite-wide fixtures."""

import pytest

from repro.learn.cache import CACHE_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_pretrain_cache(tmp_path_factory):
    """Keep the pretrained-model disk cache inside the test sandbox.

    Without this, every test that builds a student/teacher would read from
    and write to the user's real ``~/.cache/repro-dacapo``, making test
    outcomes depend on machine-global state.  Tests exercising the cache
    itself override the variable again with their own tmp dirs.
    """
    mp = pytest.MonkeyPatch()
    mp.setenv(CACHE_ENV, str(tmp_path_factory.mktemp("pretrain-cache")))
    yield
    mp.undo()
