"""Suite-wide fixtures."""

import pytest

from repro.cache import CACHE_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_caches(tmp_path_factory):
    """Keep the on-disk caches (pretrained models, streams) in the sandbox.

    Without this, every test that builds a student/teacher or materializes
    a stream would read from and write to the user's real
    ``~/.cache/repro-dacapo``, making test outcomes depend on
    machine-global state.  Tests exercising the caches themselves override
    the variable again with their own tmp dirs (the stream store keys its
    in-process LRU by cache root, so repointing is race-free).
    """
    mp = pytest.MonkeyPatch()
    mp.setenv(CACHE_ENV, str(tmp_path_factory.mktemp("pretrain-cache")))
    yield
    mp.undo()
