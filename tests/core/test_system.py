"""Integration tests for the DaCapo system and the run loop."""

import numpy as np
import pytest

from repro.core import DaCapoConfig, PhaseKind, build_system, run_on_scenario
from repro.data import build_scenario

PAIR = "resnet18_wrn50"
SHORT = 180.0  # seconds; keeps integration tests quick


@pytest.fixture(scope="module")
def st_result():
    system = build_system("DaCapo-Spatiotemporal", PAIR)
    return run_on_scenario(system, "S5", seed=0, duration_s=SHORT)


class TestRunLoop:
    def test_every_frame_scored(self, st_result):
        assert len(st_result.times) == int(SHORT * 30)

    def test_phases_tile_the_run(self, st_result):
        phases = st_result.phases
        assert phases[0].start_s == 0.0
        for prev, nxt in zip(phases, phases[1:]):
            assert nxt.start_s == pytest.approx(prev.end_s)
        assert phases[-1].end_s == pytest.approx(SHORT)

    def test_no_frame_drops_on_dacapo(self, st_result):
        # Spatial allocation guarantees B-SA keeps up with 30 FPS.
        assert st_result.frame_drop_rate == 0.0

    def test_alternates_retrain_and_label(self, st_result):
        kinds = [p.kind for p in st_result.phases]
        assert PhaseKind.RETRAIN in kinds
        assert PhaseKind.LABEL in kinds
        # First phase is labeling (buffer bootstraps empty).
        assert kinds[0] is PhaseKind.LABEL

    def test_accuracy_meaningful(self, st_result):
        assert 0.5 < st_result.average_accuracy() < 1.0

    def test_power_matches_table4(self, st_result):
        assert st_result.average_power_w == pytest.approx(0.236)

    def test_deterministic(self):
        a = run_on_scenario(
            build_system("DaCapo-Spatiotemporal", PAIR), "S5",
            seed=3, duration_s=SHORT,
        )
        b = run_on_scenario(
            build_system("DaCapo-Spatiotemporal", PAIR), "S5",
            seed=3, duration_s=SHORT,
        )
        np.testing.assert_array_equal(a.correct, b.correct)
        assert a.average_accuracy() == b.average_accuracy()

    def test_seed_changes_trajectory(self):
        a = run_on_scenario(
            build_system("DaCapo-Spatiotemporal", PAIR), "S5",
            seed=1, duration_s=SHORT,
        )
        b = run_on_scenario(
            build_system("DaCapo-Spatiotemporal", PAIR), "S5",
            seed=2, duration_s=SHORT,
        )
        assert not np.array_equal(a.correct, b.correct)


class TestDriftResponse:
    def test_drift_detection_and_escalated_labeling(self):
        # S5 drifts geometry (time + location); a long enough run must show
        # detections followed by escalated labeling phases.
        system = build_system("DaCapo-Spatiotemporal", PAIR)
        result = run_on_scenario(system, "S5", seed=0, duration_s=600)
        drifts = result.drift_detections()
        assert len(drifts) >= 1
        # After each detection the very next phase is an extension labeling.
        for t in drifts:
            following = [p for p in result.phases if p.start_s >= t]
            assert following[0].kind is PhaseKind.LABEL

    def test_static_scenario_stays_calm(self):
        # S1 keeps the geometry fixed; false drift alarms should be rare.
        system = build_system("DaCapo-Spatiotemporal", PAIR)
        result = run_on_scenario(system, "S1", seed=0, duration_s=600)
        assert len(result.drift_detections()) <= 2

    def test_temporal_allocator_shifts_time_to_labeling_under_drift(self):
        calm = run_on_scenario(
            build_system("DaCapo-Spatiotemporal", PAIR), "S1",
            seed=0, duration_s=600,
        )
        drifty = run_on_scenario(
            build_system("DaCapo-Spatiotemporal", PAIR), "S5",
            seed=0, duration_s=600,
        )
        _, calm_label = calm.retrain_label_ratio()
        _, drifty_label = drifty.retrain_label_ratio()
        assert drifty_label > calm_label


class TestConfigInteraction:
    def test_custom_config_respected(self):
        config = DaCapoConfig(num_label=128, num_train=128,
                              buffer_capacity=512)
        system = build_system("DaCapo-Spatiotemporal", PAIR, config=config)
        result = run_on_scenario(system, "S1", seed=0, duration_s=SHORT)
        label_phases = [
            p for p in result.phases
            if p.kind is PhaseKind.LABEL and not p.drift_detected
        ]
        assert all(p.samples <= 128 for p in label_phases)

    def test_stream_object_accepted(self):
        stream = build_scenario("S1", duration_s=SHORT)
        system = build_system("DaCapo-Spatiotemporal", PAIR)
        result = run_on_scenario(system, stream, seed=0)
        assert result.scenario == "S1"
