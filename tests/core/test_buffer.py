"""Tests for the sample buffer, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SampleBuffer
from repro.errors import ScheduleError


def filled(capacity=10, count=5, dim=3):
    buf = SampleBuffer(capacity, feature_dim=dim)
    buf.add(np.arange(count * dim, dtype=float).reshape(count, dim),
            np.arange(count))
    return buf


class TestAdd:
    def test_length_tracks_additions(self):
        buf = filled(count=5)
        assert len(buf) == 5

    def test_fifo_eviction(self):
        buf = SampleBuffer(3, feature_dim=1)
        buf.add(np.array([[0.0], [1.0], [2.0], [3.0]]), np.arange(4))
        assert len(buf) == 3
        np.testing.assert_array_equal(buf.labels, [1, 2, 3])

    def test_eviction_across_calls(self):
        buf = SampleBuffer(2, feature_dim=1)
        buf.add(np.array([[0.0]]), np.array([0]))
        buf.add(np.array([[1.0]]), np.array([1]))
        buf.add(np.array([[2.0]]), np.array([2]))
        np.testing.assert_array_equal(buf.labels, [1, 2])

    def test_shape_validation(self):
        buf = SampleBuffer(4, feature_dim=3)
        with pytest.raises(ScheduleError):
            buf.add(np.zeros((2, 4)), np.zeros(2))
        with pytest.raises(ScheduleError):
            buf.add(np.zeros((2, 3)), np.zeros(3))


class TestReset:
    def test_reset_empties(self):
        buf = filled()
        buf.reset()
        assert len(buf) == 0

    def test_usable_after_reset(self):
        buf = filled()
        buf.reset()
        buf.add(np.ones((2, 3)), np.array([7, 8]))
        assert len(buf) == 2


class TestDraw:
    def test_disjoint_sets(self):
        buf = filled(capacity=100, count=50)
        rng = np.random.default_rng(0)
        (xt, yt), (xv, yv) = buf.draw(30, 10, rng)
        assert len(xt) == 30 and len(xv) == 10
        train_rows = {tuple(row) for row in xt}
        val_rows = {tuple(row) for row in xv}
        assert train_rows.isdisjoint(val_rows)

    def test_scales_down_when_short(self):
        buf = filled(capacity=100, count=10)
        rng = np.random.default_rng(1)
        (xt, _), (xv, _) = buf.draw(30, 10, rng)
        assert 1 <= len(xv)
        assert len(xt) + len(xv) <= 10

    def test_empty_raises(self):
        buf = SampleBuffer(4, feature_dim=2)
        with pytest.raises(ScheduleError):
            buf.draw(2, 1, np.random.default_rng(0))

    def test_invalid_construction(self):
        with pytest.raises(ScheduleError):
            SampleBuffer(0, feature_dim=2)
        with pytest.raises(ScheduleError):
            SampleBuffer(4, feature_dim=0)


@given(
    capacity=st.integers(1, 50),
    batches=st.lists(st.integers(1, 20), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_never_exceeds_capacity(capacity, batches):
    buf = SampleBuffer(capacity, feature_dim=2)
    total = 0
    for count in batches:
        buf.add(np.zeros((count, 2)), np.arange(count))
        total += count
        assert len(buf) == min(total, capacity)


@given(
    count=st.integers(2, 60),
    num_train=st.integers(1, 80),
    num_val=st.integers(1, 40),
    seed=st.integers(0, 50),
)
@settings(max_examples=100, deadline=None)
def test_draw_never_overlaps_or_overflows(count, num_train, num_val, seed):
    buf = SampleBuffer(100, feature_dim=1)
    buf.add(np.arange(count, dtype=float)[:, None], np.arange(count))
    (xt, yt), (xv, yv) = buf.draw(num_train, num_val, np.random.default_rng(seed))
    assert len(xt) >= 1 and len(xv) >= 1
    assert len(xt) + len(xv) <= count
    assert set(yt.tolist()).isdisjoint(set(yv.tolist()))
