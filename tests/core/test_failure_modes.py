"""Failure-injection tests: starved platforms and degenerate configs.

The paper's OrinLow results show what happens when compute runs out; these
tests push further -- platforms so weak that the training side gets *zero*
resources -- and require graceful degradation instead of crashes.
"""

import numpy as np
import pytest

from repro.core import DaCapoConfig
from repro.core.baselines import FixedWindowSystem, NoRetrainSystem
from repro.core.system import DaCapoSystem
from repro.data import build_scenario
from repro.learn import make_student, make_teacher
from repro.models import get_pair
from repro.platform import GpuPlatform

PAIR = get_pair("resnet18_wrn50")


def starved_gpu() -> GpuPlatform:
    """A GPU barely able to run inference: nothing left for CL kernels."""
    # resnet18 needs 3.64 GFLOPs/frame x 30 FPS = 109 GFLOP/s; with 0.12
    # efficiency a 0.92 TFLOPS device leaves almost no share.
    return GpuPlatform(name="Starved", peak_flops=0.93e12, power_w=10.0)


class TestStarvedPlatform:
    def test_fixed_window_survives_zero_share(self):
        student = make_student(PAIR.student)
        teacher = make_teacher(PAIR.teacher)
        system = FixedWindowSystem(
            "Starved-Ekya", starved_gpu(), PAIR, student, teacher,
            DaCapoConfig(),
        )
        assert system.training_share < 0.05
        stream = build_scenario("S1", duration_s=120)
        result = system.run(stream, seed=0)
        # The run completes; with (almost) no training-side resources the
        # schedule degenerates but the frames are still all scored.
        assert len(result.times) == 3600
        assert 0.0 <= result.average_accuracy() <= 1.0

    def test_dacapo_policy_survives_zero_labeling(self):
        student = make_student(PAIR.student)
        teacher = make_teacher(PAIR.teacher)

        class NoTrainSide(GpuPlatform):
            def labeling_rate(self, model, share=1.0):
                return 0.0

            def training_rate(self, model, share=1.0):
                return 0.0

        platform = NoTrainSide(
            name="InferOnly", peak_flops=5e12, power_w=10.0
        )
        system = DaCapoSystem(
            "NoTrainSide", platform, PAIR, student, teacher, DaCapoConfig()
        )
        stream = build_scenario("S1", duration_s=60)
        result = system.run(stream, seed=0)
        # Labeling takes infinitely long -> one phase spans the whole run,
        # no retraining ever completes.
        assert len(result.retraining_completions()) == 0
        assert len(result.times) == 1800

    def test_slow_inference_drops_frames_proportionally(self):
        weak = GpuPlatform(name="Tiny", peak_flops=0.5e12, power_w=5.0)
        student = make_student(PAIR.student)
        system = NoRetrainSystem(
            "Tiny-Student", weak, PAIR, student, None, DaCapoConfig()
        )
        fps = weak.inference_rate(PAIR.student_graph())
        assert fps < 30
        stream = build_scenario("S1", duration_s=120)
        result = system.run(stream, seed=0)
        expected_drop = 1 - fps / 30
        assert result.frame_drop_rate == pytest.approx(
            expected_drop, abs=0.03
        )

    def test_dropped_frames_count_as_incorrect(self):
        weak = GpuPlatform(name="Tiny", peak_flops=0.5e12, power_w=5.0)
        student = make_student(PAIR.student)
        system = NoRetrainSystem(
            "Tiny-Student", weak, PAIR, student, None, DaCapoConfig()
        )
        stream = build_scenario("S1", duration_s=120)
        result = system.run(stream, seed=0)
        assert not np.any(result.correct[result.dropped])


class TestDegenerateConfigs:
    def test_minimal_buffer_and_counts(self):
        config = DaCapoConfig(
            num_train=16, num_label=16, buffer_capacity=64,
        )
        from repro.core import build_system, run_on_scenario

        system = build_system(
            "DaCapo-Spatiotemporal", "resnet18_wrn50", config=config
        )
        result = run_on_scenario(system, "S1", seed=0, duration_s=60)
        assert len(result.phases) > 0

    def test_run_result_json_round_trip(self):
        import json

        from repro.core import build_system, run_on_scenario

        system = build_system("DaCapo-Spatiotemporal", "resnet18_wrn50")
        result = run_on_scenario(system, "S1", seed=0, duration_s=60)
        payload = json.loads(result.to_json())
        assert payload["summary"]["system"] == "DaCapo-Spatiotemporal"
        assert len(payload["phases"]) == len(result.phases)
        assert payload["duration_s"] == 60.0
