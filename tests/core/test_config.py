"""Tests for the Table I hyperparameter configuration."""

import pytest

from repro.core import DaCapoConfig, hyperparameter_table
from repro.errors import ConfigurationError


class TestDaCapoConfig:
    def test_paper_relations(self):
        config = DaCapoConfig()
        # Section VI-B: Nv = Nt / 3, Nldd = 4 * Nl.
        assert config.num_validation == config.num_train // 3
        assert config.num_label_drift == 4 * config.num_label

    def test_paper_stream_parameters(self):
        config = DaCapoConfig()
        assert config.frame_rate == 30.0
        assert config.batch_size == 16

    def test_vthr_must_be_negative(self):
        with pytest.raises(ConfigurationError):
            DaCapoConfig(drift_threshold=0.05)

    def test_buffer_must_hold_nt(self):
        with pytest.raises(ConfigurationError):
            DaCapoConfig(num_train=512, buffer_capacity=256)

    def test_positive_counts_required(self):
        with pytest.raises(ConfigurationError):
            DaCapoConfig(num_train=0)
        with pytest.raises(ConfigurationError):
            DaCapoConfig(num_label=0)
        with pytest.raises(ConfigurationError):
            DaCapoConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            DaCapoConfig(learning_rate=0)

    def test_nv_at_least_one(self):
        assert DaCapoConfig(num_train=2, buffer_capacity=16).num_validation == 1


class TestHyperparameterTable:
    def test_covers_table1_symbols(self):
        rows = hyperparameter_table()
        symbols = {row["symbol"] for row in rows}
        assert symbols == {"Nt", "Nv", "Nl", "Nldd", "Cb", "Vthr"}

    def test_values_consistent_with_config(self):
        config = DaCapoConfig()
        rows = {r["symbol"]: r["value"] for r in hyperparameter_table(config)}
        assert rows["Nt"] == config.num_train
        assert rows["Nldd"] == config.num_label_drift
