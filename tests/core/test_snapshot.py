"""Run-state snapshots: bit-identical incremental execution.

The contract under test: chaining ``run_cell_incremental`` window by
window -- each window resuming the previous window's encoded snapshot --
produces results byte-identical to full prefix runs, across every
scheduler family; and any snapshot a run must *not* resume from (wrong
version, policy, cell, seed, or an unaligned origin) is refused with
:class:`SnapshotError` so callers fall back to the prefix run.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.core.buffer import SampleBuffer
from repro.core.snapshot import (
    SNAPSHOT_VERSION,
    decode_array,
    decode_run_snapshot,
    encode_array,
    encode_run_snapshot,
    stream_prefix_aligned,
)
from repro.data.scenarios import SEGMENT_S
from repro.errors import ScheduleError, SnapshotError
from repro.exec.shard import Fig2Cell, SystemCell, run_cell, run_cell_incremental
from repro.numeric import active_policy
from repro.reference import run_digest

PAIR = "resnet18_wrn50"


def chain_windows(cell, window_s):
    """Run ``cell`` window by window, resuming each from the last snapshot."""
    total = cell.duration_s
    results = []
    snapshot = None
    end = window_s
    while end <= total + 1e-9:
        result, snapshot = run_cell_incremental(
            replace(cell, duration_s=float(end)),
            snapshot=snapshot,
            emit_snapshot=True,
        )
        results.append(result)
        end += window_s
    return results


class TestRngConcatenation:
    def test_split_draws_match_one_draw(self):
        # The property idle-resume leans on: PCG64 draws concatenate.
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        whole = a.random(100)
        parts = np.concatenate([b.random(60), b.random(40)])
        np.testing.assert_array_equal(whole, parts)

    def test_state_roundtrips_through_json(self):
        rng = np.random.default_rng(3)
        rng.random(17)
        state = json.loads(json.dumps(rng.bit_generator.state))
        clone = np.random.default_rng(0)
        clone.bit_generator.state = state
        np.testing.assert_array_equal(rng.random(8), clone.random(8))


class TestArrayCodec:
    @pytest.mark.parametrize(
        "array",
        [
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.zeros((0, 5), dtype=np.float32),
            np.array([True, False, True]),
            np.arange(6, dtype=np.int64),
        ],
    )
    def test_roundtrip_exact(self, array):
        payload = json.loads(json.dumps(encode_array(array)))
        out = decode_array(payload)
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        np.testing.assert_array_equal(out, array)


class TestBufferSnapshot:
    def test_roundtrip_and_isolation(self):
        rng = np.random.default_rng(0)
        buffer = SampleBuffer(capacity=8, feature_dim=4)
        buffer.add(rng.standard_normal((5, 4)), np.arange(5) % 3)
        features, labels = buffer.snapshot()
        other = SampleBuffer(capacity=8, feature_dim=4)
        other.restore(features, labels)
        assert len(other) == len(buffer)
        # The snapshot is a copy: mutating it must not reach the buffer.
        features[:] = 0.0
        restored, _ = other.snapshot()
        assert not np.allclose(restored, 0.0)

    def test_restore_rejects_wrong_shape(self):
        buffer = SampleBuffer(capacity=8, feature_dim=4)
        with pytest.raises(ScheduleError):
            buffer.restore(np.zeros((2, 3)), np.zeros(2, dtype=np.int64))


class TestAlignment:
    def test_segment_boundaries_are_aligned(self):
        assert stream_prefix_aligned(SEGMENT_S)
        assert stream_prefix_aligned(4 * SEGMENT_S)

    def test_everything_else_is_not(self):
        assert not stream_prefix_aligned(0.0)
        assert not stream_prefix_aligned(-SEGMENT_S)
        assert not stream_prefix_aligned(SEGMENT_S / 2)
        assert not stream_prefix_aligned(SEGMENT_S + 1.0)


class TestDecodeRejections:
    @pytest.fixture(scope="class")
    def snapshot(self):
        cell = SystemCell("DaCapo-Ekya", PAIR, "S1", 0, 60.0)
        _, snapshot = run_cell_incremental(cell, emit_snapshot=True)
        assert snapshot is not None
        return snapshot

    def kwargs(self, **overrides):
        base = dict(
            policy=active_policy().name,
            system="DaCapo-Ekya",
            scenario="S1",
            seed=0,
            duration_s=120.0,
        )
        base.update(overrides)
        return base

    def test_accepts_the_matching_run(self, snapshot):
        checkpoint = decode_run_snapshot(snapshot, **self.kwargs())
        # The safe point is wherever the last untruncated phase ended --
        # anywhere inside the origin run, never past it.
        assert 0.0 <= checkpoint.clock <= 60.0
        assert len(checkpoint.correct) == len(checkpoint.dropped)

    def test_json_roundtrip_still_accepted(self, snapshot):
        payload = json.loads(json.dumps(snapshot))
        decode_run_snapshot(payload, **self.kwargs())

    @pytest.mark.parametrize(
        "field,value",
        [
            ("system", "DaCapo-Spatiotemporal"),
            ("scenario", "S4"),
            ("policy", "no-such-policy"),
            ("seed", 1),
        ],
    )
    def test_identity_mismatch_raises(self, snapshot, field, value):
        with pytest.raises(SnapshotError):
            decode_run_snapshot(snapshot, **self.kwargs(**{field: value}))

    def test_version_bump_forces_recompute(self, snapshot):
        stale = dict(snapshot, v=SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotError):
            decode_run_snapshot(stale, **self.kwargs())

    def test_unaligned_origin_refused(self, snapshot):
        skewed = dict(snapshot, origin_duration_s=45.0)
        with pytest.raises(SnapshotError):
            decode_run_snapshot(skewed, **self.kwargs())

    def test_clock_past_target_refused(self, snapshot):
        ahead = dict(snapshot, clock=60.0)
        with pytest.raises(SnapshotError):
            decode_run_snapshot(ahead, **self.kwargs(duration_s=30.0))

    def test_malformed_payload_raises_snapshot_error(self, snapshot):
        broken = dict(snapshot)
        del broken["rng"]
        with pytest.raises(SnapshotError, match="malformed"):
            decode_run_snapshot(broken, **self.kwargs())


@pytest.mark.parametrize(
    "cell",
    [
        SystemCell("DaCapo-Spatiotemporal", PAIR, "S4", 0, 240.0),
        SystemCell("DaCapo-Ekya", PAIR, "S1", 0, 240.0),
        SystemCell("OrinHigh-EOMU", PAIR, "S4", 0, 240.0),
        SystemCell("OrinLow-Ekya", PAIR, "S1", 0, 240.0),
        Fig2Cell("student", "OrinHigh", PAIR, "S4", 0, 240.0),
        Fig2Cell("ekya", "OrinHigh", PAIR, "S4", 0, 240.0),
    ],
    ids=lambda cell: getattr(cell, "system", None) or f"fig2-{cell.kind}",
)
class TestIncrementalBitIdentity:
    def test_windows_match_prefix_runs(self, cell):
        # Every scheduler family: each resumed window's digest equals the
        # stateless prefix run's at the same duration.
        chained = chain_windows(cell, window_s=60.0)
        assert len(chained) == 4
        for i, result in enumerate(chained):
            prefix = run_cell(replace(cell, duration_s=60.0 * (i + 1)))
            assert run_digest(result) == run_digest(prefix), f"window {i}"


class TestIncrementalFallbacks:
    def test_unaligned_duration_emits_no_snapshot(self):
        cell = SystemCell("DaCapo-Ekya", PAIR, "S1", 0, 90.0)
        result, snapshot = run_cell_incremental(cell, emit_snapshot=True)
        assert snapshot is None
        assert run_digest(result) == run_digest(run_cell(cell))

    def test_bad_snapshot_falls_back_to_prefix(self):
        cell = SystemCell("DaCapo-Ekya", PAIR, "S1", 0, 60.0)
        _, snapshot = run_cell_incremental(cell, emit_snapshot=True)
        longer = replace(cell, duration_s=120.0)
        stale = dict(snapshot, v=SNAPSHOT_VERSION + 1)
        result, _ = run_cell_incremental(longer, snapshot=stale)
        assert run_digest(result) == run_digest(run_cell(longer))

    def test_corrupt_weights_fall_back_to_prefix(self):
        # Decode succeeds but restore blows up mid-way: the run must be
        # rebuilt fresh, not resumed from half-restored state.
        cell = SystemCell("DaCapo-Ekya", PAIR, "S1", 0, 60.0)
        _, snapshot = run_cell_incremental(cell, emit_snapshot=True)
        longer = replace(cell, duration_s=120.0)
        corrupt = json.loads(json.dumps(snapshot))
        corrupt["correct"] = encode_array(np.zeros(3, dtype=bool))
        result, _ = run_cell_incremental(longer, snapshot=corrupt)
        assert run_digest(result) == run_digest(run_cell(longer))


class TestEncodeIdentity:
    def test_payload_names_its_run(self):
        cell = SystemCell("DaCapo-Ekya", PAIR, "S1", 3, 60.0)
        _, snapshot = run_cell_incremental(cell, emit_snapshot=True)
        assert snapshot["v"] == SNAPSHOT_VERSION
        assert snapshot["system"] == "DaCapo-Ekya"
        assert snapshot["scenario"] == "S1"
        assert snapshot["seed"] == 3
        assert snapshot["policy"] == active_policy().name
        assert snapshot["origin_duration_s"] == 60.0
        # JSON-safe end to end: the service journals this payload as-is.
        json.dumps(snapshot)
