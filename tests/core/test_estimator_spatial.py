"""Tests for the performance estimator and the spatial allocator."""

import pytest

from repro.accelerator import SystolicArray
from repro.core import KernelRates, PerformanceEstimator, allocate_partition
from repro.core.spatial import min_inference_rows
from repro.errors import ConfigurationError, PartitionError
from repro.models import get_model, get_pair
from repro.mx import MX4, MX6, MX9
from repro.platform import build_dacapo_platform, jetson_orin_high

PAIR = get_pair("resnet18_wrn50")


class TestKernelRates:
    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            KernelRates(-1, 0, 0, 0)


class TestEstimator:
    def test_rates_on_dacapo(self):
        platform = build_dacapo_platform(rows_tsa=13)
        rates = PerformanceEstimator(platform, PAIR).rates()
        assert rates.inference_fps > 30
        assert rates.labeling_sps > 0
        assert rates.training_sps > 0

    def test_share_scales_training_side(self):
        platform = jetson_orin_high()
        estimator = PerformanceEstimator(platform, PAIR)
        full = estimator.rates(share=1.0)
        half = estimator.rates(share=0.5)
        assert half.labeling_sps == pytest.approx(full.labeling_sps / 2)
        assert half.inference_fps == full.inference_fps  # dedicated metric

    def test_precision_report_on_dacapo(self):
        platform = build_dacapo_platform(rows_tsa=13)
        report = PerformanceEstimator(platform, PAIR).precision_report()
        assert set(report) == {"MX4", "MX6", "MX9"}
        # Lower precision is strictly faster (workflow step 2's tradeoff).
        assert (
            report["MX4"].inference_fps
            > report["MX6"].inference_fps
            > report["MX9"].inference_fps
        )

    def test_precision_report_on_gpu_is_native(self):
        report = PerformanceEstimator(jetson_orin_high(), PAIR)
        assert set(report.precision_report()) == {"native"}


class TestSpatialAllocation:
    def test_min_rows_meets_frame_rate(self):
        array = SystolicArray()
        student = get_model("resnet18")
        rows = min_inference_rows(array, student, frame_rate=30)
        _, bsa = array.split(array.rows - rows)
        from repro.accelerator import AcceleratorSimulator

        sim = AcceleratorSimulator()
        assert sim.inference_throughput(student, MX6, bsa) >= 30
        if rows > 1:
            _, smaller = array.split(array.rows - rows + 1)
            assert sim.inference_throughput(student, MX6, smaller) < 30

    def test_partition_maximizes_tsa(self):
        partition = allocate_partition(
            SystolicArray(), get_model("resnet18"), frame_rate=30
        )
        assert partition.rows_tsa + partition.rows_bsa == 16
        assert partition.rows_tsa >= 8  # students are cheap at MX6

    def test_heavier_student_needs_more_rows(self):
        r18 = min_inference_rows(SystolicArray(), get_model("resnet18"), 30)
        r34 = min_inference_rows(SystolicArray(), get_model("resnet34"), 30)
        assert r34 >= r18

    def test_impossible_frame_rate_raises(self):
        with pytest.raises(PartitionError):
            min_inference_rows(
                SystolicArray(), get_model("wide_resnet101_2"),
                frame_rate=10000, fmt=MX9,
            )

    def test_invalid_frame_rate(self):
        with pytest.raises(PartitionError):
            min_inference_rows(SystolicArray(), get_model("resnet18"), 0)

    def test_higher_precision_needs_more_rows(self):
        lo = min_inference_rows(
            SystolicArray(), get_model("resnet18"), 30, fmt=MX4
        )
        hi = min_inference_rows(
            SystolicArray(), get_model("resnet18"), 30, fmt=MX9
        )
        assert hi >= lo
