"""Integration tests for the baseline systems."""

import pytest

from repro.core import PhaseKind, build_system, run_on_scenario
from repro.core.runner import build_fig2_system
from repro.errors import ConfigurationError

PAIR = "resnet18_wrn50"
SHORT = 300.0


class TestFixedWindow:
    def test_window_cadence(self):
        system = build_system("OrinHigh-Ekya", PAIR)
        result = run_on_scenario(system, "S1", seed=0, duration_s=SHORT)
        retrains = result.retraining_completions()
        # One retraining per 120 s window once the buffer is warm.
        assert 1 <= len(retrains) <= 3

    def test_no_drift_reaction(self):
        system = build_system("OrinHigh-Ekya", PAIR)
        result = run_on_scenario(system, "S5", seed=0, duration_s=SHORT)
        assert len(result.drift_detections()) == 0

    def test_gpu_power(self):
        result = run_on_scenario(
            build_system("OrinHigh-Ekya", PAIR), "S1", seed=0,
            duration_s=SHORT,
        )
        assert result.average_power_w == 60.0

    def test_orinlow_weaker_than_orinhigh_on_drifty_scenario(self):
        low = run_on_scenario(
            build_system("OrinLow-Ekya", PAIR), "S5", seed=0,
            duration_s=600,
        )
        high = run_on_scenario(
            build_system("OrinHigh-Ekya", PAIR), "S5", seed=0,
            duration_s=600,
        )
        assert low.average_accuracy() <= high.average_accuracy() + 0.01


class TestEomu:
    def test_frequent_retrainings(self):
        eomu = run_on_scenario(
            build_system("OrinHigh-EOMU", PAIR), "S5", seed=0,
            duration_s=600,
        )
        ekya = run_on_scenario(
            build_system("OrinHigh-Ekya", PAIR), "S5", seed=0,
            duration_s=600,
        )
        # The paper's Figure 10: EOMU triggers substantially more
        # retrainings than Ekya's fixed windows.
        assert len(eomu.retraining_completions()) > len(
            ekya.retraining_completions()
        )

    def test_monitoring_windows_label_continuously(self):
        result = run_on_scenario(
            build_system("OrinHigh-EOMU", PAIR), "S1", seed=0,
            duration_s=SHORT,
        )
        labels = [p for p in result.phases if p.kind is PhaseKind.LABEL]
        assert len(labels) >= SHORT / 10 / 2  # most windows are monitoring


class TestNoRetrain:
    def test_student_never_retrains(self):
        system = build_fig2_system("student", "OrinHigh", PAIR)
        result = run_on_scenario(system, "S1", seed=0, duration_s=SHORT)
        assert len(result.retraining_completions()) == 0

    def test_teacher_drops_frames_on_orin(self):
        system = build_fig2_system("teacher", "OrinHigh", PAIR)
        result = run_on_scenario(system, "S1", seed=0, duration_s=SHORT)
        assert result.frame_drop_rate > 0.0

    def test_teacher_clean_on_rtx3090(self):
        system = build_fig2_system("teacher", "RTX3090", PAIR)
        result = run_on_scenario(system, "S1", seed=0, duration_s=SHORT)
        assert result.frame_drop_rate == 0.0

    def test_teacher_beats_student_on_drifty_stream(self):
        student = run_on_scenario(
            build_fig2_system("student", "RTX3090", PAIR), "S5",
            seed=0, duration_s=600,
        )
        teacher = run_on_scenario(
            build_fig2_system("teacher", "RTX3090", PAIR), "S5",
            seed=0, duration_s=600,
        )
        assert teacher.average_accuracy() > student.average_accuracy()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fig2_system("oracle", "RTX3090", PAIR)

    def test_unknown_platform_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fig2_system("student", "H100", PAIR)


class TestBuilderRegistry:
    def test_all_fig9_systems_build(self):
        from repro.core import SYSTEM_BUILDERS

        assert set(SYSTEM_BUILDERS) == {
            "OrinLow-Ekya", "OrinHigh-Ekya", "OrinHigh-EOMU",
            "DaCapo-Ekya", "DaCapo-Spatial", "DaCapo-Spatiotemporal",
        }

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            build_system("H100-Ekya", PAIR)
