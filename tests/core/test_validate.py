"""Tests for schedule-trace validation, including property-based system runs.

``validate_run`` encodes the simulator's contract; the property tests below
run real systems under randomized configurations/seeds and require every
produced trace to satisfy it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DaCapoConfig, build_system, run_on_scenario, validate_run
from repro.core.phases import PhaseKind, PhaseRecord
from repro.core.results import RunResult
from repro.errors import ScheduleError


def make_result(phases, duration=30.0, n=60):
    times = np.linspace(0, duration, n, endpoint=False)
    return RunResult(
        system="x", scenario="S1", pair="p",
        times=times, correct=np.ones(n, dtype=bool),
        dropped=np.zeros(n, dtype=bool), phases=tuple(phases),
        duration_s=duration, energy_j=1.0, average_power_w=1.0,
    )


class TestInvariantViolations:
    def test_clean_trace_passes(self):
        phases = [
            PhaseRecord(PhaseKind.RETRAIN, 0, 10),
            PhaseRecord(PhaseKind.LABEL, 10, 30),
        ]
        validate_run(make_result(phases))

    def test_overlap_detected(self):
        phases = [
            PhaseRecord(PhaseKind.RETRAIN, 0, 12),
            PhaseRecord(PhaseKind.LABEL, 10, 30),
        ]
        with pytest.raises(ScheduleError, match="overlap"):
            validate_run(make_result(phases))

    def test_gap_detected(self):
        phases = [
            PhaseRecord(PhaseKind.RETRAIN, 0, 10),
            PhaseRecord(PhaseKind.LABEL, 15, 30),
        ]
        with pytest.raises(ScheduleError, match="gap"):
            validate_run(make_result(phases))

    def test_trailing_time_detected(self):
        phases = [PhaseRecord(PhaseKind.RETRAIN, 0, 10)]
        with pytest.raises(ScheduleError, match="unaccounted"):
            validate_run(make_result(phases))

    def test_overrun_detected(self):
        phases = [PhaseRecord(PhaseKind.RETRAIN, 0, 31)]
        with pytest.raises(ScheduleError, match="past the run"):
            validate_run(make_result(phases))

    def test_dropped_scored_correct_detected(self):
        result = make_result([PhaseRecord(PhaseKind.IDLE, 0, 30)])
        bad = RunResult(
            system="x", scenario="S1", pair="p",
            times=result.times, correct=np.ones(60, dtype=bool),
            dropped=np.ones(60, dtype=bool), phases=result.phases,
            duration_s=30.0, energy_j=1.0, average_power_w=1.0,
        )
        with pytest.raises(ScheduleError, match="dropped"):
            validate_run(bad)

    def test_drift_without_escalation_detected(self):
        phases = [
            PhaseRecord(PhaseKind.LABEL, 0, 10, drift_detected=True),
            PhaseRecord(PhaseKind.RETRAIN, 10, 30),
        ]
        with pytest.raises(ScheduleError, match="escalated"):
            validate_run(make_result(phases))

    def test_trailing_drift_tolerated(self):
        phases = [
            PhaseRecord(PhaseKind.RETRAIN, 0, 10),
            PhaseRecord(PhaseKind.LABEL, 10, 30, drift_detected=True),
        ]
        validate_run(make_result(phases))


@given(
    system=st.sampled_from(
        ["DaCapo-Spatiotemporal", "OrinHigh-Ekya", "OrinHigh-EOMU"]
    ),
    scenario=st.sampled_from(["S1", "S5"]),
    seed=st.integers(0, 5),
    num_label=st.sampled_from([128, 384]),
    multiplier=st.sampled_from([2, 4]),
)
@settings(max_examples=12, deadline=None)
def test_every_real_trace_validates(
    system, scenario, seed, num_label, multiplier
):
    config = DaCapoConfig(
        num_label=num_label, drift_label_multiplier=multiplier
    )
    instance = build_system(system, "resnet18_wrn50", config=config,
                            seed=seed)
    result = run_on_scenario(instance, scenario, seed=seed, duration_s=120)
    validate_run(result)
