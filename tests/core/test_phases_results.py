"""Tests for phase records and run results."""

import numpy as np
import pytest

from repro.core import PhaseKind, PhaseRecord, RunResult
from repro.core.phases import phase_time_breakdown
from repro.errors import ScheduleError


class TestPhaseRecord:
    def test_duration(self):
        assert PhaseRecord(PhaseKind.RETRAIN, 1.0, 4.0).duration_s == 3.0

    def test_invalid_interval(self):
        with pytest.raises(ScheduleError):
            PhaseRecord(PhaseKind.LABEL, 5.0, 4.0)

    def test_breakdown(self):
        phases = [
            PhaseRecord(PhaseKind.RETRAIN, 0, 10),
            PhaseRecord(PhaseKind.LABEL, 10, 15),
            PhaseRecord(PhaseKind.RETRAIN, 15, 25),
        ]
        totals = phase_time_breakdown(phases)
        assert totals[PhaseKind.RETRAIN] == 20
        assert totals[PhaseKind.LABEL] == 5
        assert totals[PhaseKind.IDLE] == 0


def make_result(correct=None, dropped=None, phases=()):
    n = 60
    times = np.arange(n) / 2.0  # 30 seconds at 2 fps
    if correct is None:
        correct = np.ones(n, dtype=bool)
    if dropped is None:
        dropped = np.zeros(n, dtype=bool)
    return RunResult(
        system="test", scenario="S1", pair="resnet18_wrn50",
        times=times, correct=correct, dropped=dropped,
        phases=tuple(phases), duration_s=30.0,
        energy_j=60.0, average_power_w=2.0,
    )


class TestRunResult:
    def test_average_accuracy_all_correct(self):
        assert make_result().average_accuracy() == 1.0

    def test_windowed_metric_weighs_windows_equally(self):
        correct = np.ones(60, dtype=bool)
        correct[:30] = False  # first 15 s wrong
        result = make_result(correct=correct)
        assert result.average_accuracy(window_s=15.0) == pytest.approx(0.5)

    def test_frame_drop_rate(self):
        dropped = np.zeros(60, dtype=bool)
        dropped[:15] = True
        assert make_result(dropped=dropped).frame_drop_rate == 0.25

    def test_phase_queries(self):
        phases = [
            PhaseRecord(PhaseKind.RETRAIN, 0, 10, samples=100),
            PhaseRecord(PhaseKind.LABEL, 10, 20, samples=50,
                        drift_detected=True),
            PhaseRecord(PhaseKind.LABEL, 20, 30, samples=150),
        ]
        result = make_result(phases=phases)
        assert result.retraining_completions() == (10,)
        assert result.drift_detections() == (20,)
        retrain, label = result.retrain_label_ratio()
        assert retrain == pytest.approx(1 / 3)
        assert label == pytest.approx(2 / 3)

    def test_ratio_with_no_phases(self):
        assert make_result().retrain_label_ratio() == (0.0, 0.0)

    def test_accuracy_series_length(self):
        starts, series = make_result().accuracy_series(window_s=15.0)
        assert len(starts) == 2

    def test_summary_keys(self):
        summary = make_result().summary()
        for key in ("system", "scenario", "average_accuracy",
                    "frame_drop_rate", "energy_j"):
            assert key in summary

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ScheduleError):
            RunResult(
                system="x", scenario="S1", pair="p",
                times=np.zeros(3), correct=np.zeros(2, dtype=bool),
                dropped=np.zeros(3, dtype=bool), phases=(),
                duration_s=1.0, energy_j=0.0, average_power_w=0.0,
            )
