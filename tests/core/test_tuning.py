"""Tests for the offline hyperparameter tuner (section VI-D)."""

import pytest

from repro.core import DaCapoConfig, tune_hyperparameters
from repro.core.tuning import default_search_space
from repro.errors import ConfigurationError


class TestSearchSpace:
    def test_default_space_fields_exist_on_config(self):
        config = DaCapoConfig()
        for field in default_search_space():
            assert hasattr(config, field)


class TestTuner:
    @pytest.fixture(scope="class")
    def outcome(self):
        # A deliberately tiny search so the test stays fast.
        return tune_hyperparameters(
            "resnet18_wrn50",
            scenarios=("S5",),
            search_space={
                "num_label": (256, 384),
                "drift_threshold": (-0.12, -0.05),
            },
            duration_s=120.0,
        )

    def test_explores_full_grid(self, outcome):
        assert len(outcome.trials) == 4

    def test_trials_ranked_best_first(self, outcome):
        scores = [score for _, score in outcome.trials]
        assert scores == sorted(scores, reverse=True)

    def test_best_matches_top_trial(self, outcome):
        assert outcome.best is outcome.trials[0][0]
        assert outcome.best_score == outcome.trials[0][1]

    def test_best_is_valid_config(self, outcome):
        assert isinstance(outcome.best, DaCapoConfig)
        assert outcome.best.num_label in (256, 384)

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigurationError):
            tune_hyperparameters(
                "resnet18_wrn50", search_space={}, duration_s=60.0
            )

    def test_invalid_combinations_skipped(self):
        # num_train larger than buffer capacity is invalid and must be
        # skipped rather than crash the search.
        outcome = tune_hyperparameters(
            "resnet18_wrn50",
            scenarios=("S1",),
            search_space={"num_train": (128, 4096)},
            duration_s=60.0,
        )
        assert len(outcome.trials) == 1
        assert outcome.best.num_train == 128
