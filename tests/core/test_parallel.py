"""Tests for the parallel experiment runner (determinism and equivalence)."""

import numpy as np
import pytest

from repro.core import Fig2Cell, SystemCell, parallel_map, run_cells
from repro.core.parallel import (
    JOBS_ENV,
    _run_cell,
    default_jobs,
    plan_shards,
    warm_model_caches,
)
from repro.errors import ConfigurationError
from repro.learn.cache import CACHE_ENV

DURATION = 60.0


@pytest.fixture(autouse=True)
def isolated_disk_cache(tmp_path, monkeypatch):
    """Keep worker processes' pretrain cache inside the test sandbox."""
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))


def assert_results_identical(a, b):
    assert a.system == b.system and a.scenario == b.scenario
    np.testing.assert_array_equal(a.correct, b.correct)
    np.testing.assert_array_equal(a.dropped, b.dropped)
    assert a.phases == b.phases
    assert a.duration_s == b.duration_s


class TestRunCells:
    def test_parallel_matches_serial(self):
        cells = [
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0, DURATION),
            SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S4", 0, DURATION),
            SystemCell("OrinHigh-EOMU", "resnet18_wrn50", "S1", 0, DURATION),
        ]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert len(serial) == len(parallel) == len(cells)
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)

    def test_same_seed_is_deterministic_through_the_pool(self):
        # The ISSUE's determinism guard: the same (system, scenario, seed)
        # cell yields identical RunResult.correct wherever it runs.
        cell = SystemCell(
            "DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0, DURATION
        )
        twice = run_cells([cell, cell], jobs=2)
        assert_results_identical(twice[0], twice[1])
        assert_results_identical(twice[0], _run_cell(cell))

    def test_different_seeds_differ(self):
        cells = [
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0, DURATION),
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 7, DURATION),
        ]
        results = run_cells(cells, jobs=1)
        assert not np.array_equal(results[0].correct, results[1].correct)

    def test_fig2_cells_run(self):
        cells = [
            Fig2Cell("student", "RTX3090", "resnet18_wrn50", "S5", 0, DURATION),
            Fig2Cell("ekya", "OrinHigh", "resnet18_wrn50", "S5", 0, DURATION),
        ]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)

    def test_rejects_unknown_cell_types(self):
        with pytest.raises(ConfigurationError):
            run_cells(["not-a-cell"], jobs=1)
        with pytest.raises(ConfigurationError):
            run_cells([], jobs=-1)

    def test_empty_grid(self):
        assert run_cells([], jobs=4) == []

    def test_jobs_zero_means_all_cores(self):
        cell = SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", 0, DURATION)
        auto = run_cells([cell], jobs=0)
        assert_results_identical(auto[0], _run_cell(cell))


class TestSharding:
    def test_cells_group_by_stream_signature(self):
        cells = [
            SystemCell(system, "resnet18_wrn50", scenario, 0, DURATION)
            for scenario in ("S1", "S4")
            for system in ("OrinHigh-Ekya", "OrinHigh-EOMU", "DaCapo-Ekya")
        ]
        shards = plan_shards(cells, jobs=2)
        assert len(shards) == 2  # one per (scenario, seed, duration) stream
        for shard in shards:
            signatures = {(cell.scenario, cell.seed) for _, cell in shard}
            assert len(signatures) == 1
        # every cell appears exactly once, with its original index
        indices = sorted(index for shard in shards for index, _ in shard)
        assert indices == list(range(len(cells)))

    def test_large_shards_split_to_fill_workers(self):
        cells = [
            SystemCell(system, "resnet18_wrn50", "S1", 0, DURATION)
            for system in ("OrinHigh-Ekya", "OrinHigh-EOMU", "DaCapo-Ekya",
                           "OrinLow-Ekya")
        ]
        shards = plan_shards(cells, jobs=4)
        assert len(shards) == 4  # split down to singletons
        shards = plan_shards(cells, jobs=2)
        assert len(shards) == 2

    def test_sharded_grid_matches_serial(self):
        # Multiple systems per stream (the sharing case) plus a second
        # scenario and seed: parallel results must equal serial, in order.
        cells = [
            SystemCell(system, "resnet18_wrn50", scenario, seed, DURATION)
            for scenario in ("S1", "S4")
            for seed in (0, 1)
            for system in ("OrinHigh-Ekya", "DaCapo-Spatiotemporal")
        ]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=3)
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)


def _square(x):
    return x * x


class TestParallelMap:
    def test_matches_serial_in_order(self):
        items = list(range(7))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]
        assert parallel_map(_square, items, jobs=3) == [x * x for x in items]

    def test_rejects_negative_jobs(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, [1], jobs=-2)

    def test_jobs_zero_uses_all_cores(self):
        assert parallel_map(_square, [1, 2], jobs=0) == [1, 4]


class TestDefaultJobs:
    def test_unset_uses_available_cpus(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() >= 1

    def test_env_override_pins_worker_count(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert default_jobs() == 7
        monkeypatch.setenv(JOBS_ENV, " 3 ")
        assert default_jobs() == 3

    @pytest.mark.parametrize("value", ["zero", "2.5", "0", "-1", "1e2"])
    def test_env_garbage_raises_configuration_error(
        self, monkeypatch, value
    ):
        monkeypatch.setenv(JOBS_ENV, value)
        with pytest.raises(ConfigurationError, match=JOBS_ENV):
            default_jobs()

    def test_empty_env_falls_through(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "")
        assert default_jobs() >= 1

    def test_jobs_zero_routes_through_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "2")
        cell = SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", 0, DURATION)
        results = run_cells([cell], jobs=0)
        assert_results_identical(results[0], _run_cell(cell))


class TestWarmModelCaches:
    def test_warms_each_pair_once(self):
        cells = [
            SystemCell("OrinHigh-Ekya", "resnet18_wrn50", "S1", 0, DURATION),
            SystemCell("OrinLow-Ekya", "resnet18_wrn50", "S2", 0, DURATION),
        ]
        warm_model_caches(cells)  # must not raise; idempotent
        warm_model_caches(cells)
