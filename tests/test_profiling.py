"""Tests for the scoped phase profiler and its runner wiring."""

import time

import pytest

from repro import profiling


@pytest.fixture(autouse=True)
def profiling_off():
    """Every test starts and ends with profiling disabled."""
    profiling.disable()
    yield
    profiling.disable()


class TestScopes:
    def test_records_totals_and_counts(self):
        profiler = profiling.enable()
        with profiling.scope("a"):
            time.sleep(0.01)
        with profiling.scope("a"):
            pass
        with profiling.scope("b"):
            pass
        snapshot = profiler.snapshot()
        assert snapshot["a"]["count"] == 2
        assert snapshot["b"]["count"] == 1
        assert snapshot["a"]["total_s"] >= 0.01

    def test_nested_scopes_do_not_overlap(self):
        profiler = profiling.enable()
        with profiling.scope("outer"):
            time.sleep(0.005)
            with profiling.scope("inner"):
                time.sleep(0.02)
            time.sleep(0.005)
        totals = profiler.totals
        # Exclusive accounting: the inner 20 ms is not double-counted.
        assert totals["inner"] >= 0.02
        assert totals["outer"] < 0.02
        assert totals["outer"] >= 0.005

    def test_phases_sum_to_at_most_wall_time(self):
        profiler = profiling.enable()
        t0 = time.perf_counter()
        with profiling.scope("x"):
            with profiling.scope("y"):
                time.sleep(0.005)
        with profiling.scope("z"):
            time.sleep(0.005)
        wall = time.perf_counter() - t0
        assert profiler.total_s() <= wall

    def test_report_formats(self):
        profiler = profiling.enable()
        with profiling.scope("alpha"):
            pass
        text = profiler.report()
        assert "alpha" in text and "phase breakdown" in text


class TestDisabledPath:
    def test_scope_is_a_shared_noop_singleton(self):
        # Zero allocations on the hot path: every disabled scope() call
        # returns the same preallocated null context manager.
        assert profiling.active() is None
        first = profiling.scope("materialize")
        second = profiling.scope("retrain")
        assert first is second
        assert first is profiling._NULL_SCOPE
        with first:
            pass  # enter/exit are no-ops

    def test_enable_disable_cycle(self):
        profiler = profiling.enable()
        assert profiling.active() is profiler
        assert profiling.scope("a") is not profiling._NULL_SCOPE
        profiling.disable()
        assert profiling.active() is None
        assert profiling.scope("a") is profiling._NULL_SCOPE


class TestRunnerWiring:
    def test_run_records_the_paper_phases(self):
        from repro.core import build_system, run_on_scenario
        import repro.learn.student as student_mod
        import repro.learn.teacher as teacher_mod

        # Drop pretrain memos so the pretrain phase actually executes here.
        student_mod._pretrained_mlp.cache_clear()
        teacher_mod._pretrained_mlp.cache_clear()

        profiler = profiling.enable()
        t0 = time.perf_counter()
        system = build_system("DaCapo-Spatiotemporal", "resnet18_wrn50")
        run_on_scenario(system, "S4", seed=0, duration_s=60.0)
        wall = time.perf_counter() - t0

        snapshot = profiler.snapshot()
        for phase in (
            profiling.MATERIALIZE,
            profiling.PRETRAIN,
            profiling.LABEL,
            profiling.RETRAIN,
            profiling.INFERENCE,
        ):
            assert phase in snapshot, snapshot.keys()
            assert snapshot[phase]["total_s"] >= 0.0
        # Non-overlapping scopes: their sum cannot exceed the wall time.
        assert profiler.total_s() <= wall

    def test_disabled_runs_record_nothing(self):
        from repro.core import build_system, run_on_scenario

        system = build_system("OrinHigh-Ekya", "resnet18_wrn50")
        run_on_scenario(system, "S1", seed=0, duration_s=60.0)
        assert profiling.active() is None
