"""Tests for the experiment definitions (short-duration smoke + shape)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    run_ablation_precision,
    run_experiment,
    run_fig3,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table1", "table2", "table3", "table4",
            "fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12",
            "headline",
            "ablation_partitioning", "ablation_precision", "ablation_nldd",
            "ablation_dataflow", "ablation_scaling",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_experiment_dispatch(self):
        result = run_experiment("table1")
        assert result.name == "table1"

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_unknown_override_is_configuration_error(self):
        # Bad kwargs bind-check happens before the runner executes, so
        # the caller sees a configuration mistake, not a raw TypeError.
        with pytest.raises(ConfigurationError, match="table1"):
            run_experiment("table1", bogus=1)


class TestTables:
    def test_table1_rows(self):
        result = run_table1()
        assert len(result.rows) == 6
        assert "Nt" in result.report

    def test_table2_rows(self):
        result = run_table2(duration_s=300)
        assert [r["name"] for r in result.rows][:2] == ["S1", "S2"]

    def test_table3_matches_paper(self):
        for row in run_table3().rows:
            assert row["params_M"] == pytest.approx(
                row["paper_params_M"], rel=0.005
            )

    def test_table4_ratios(self):
        result = run_table4()
        assert result.extras["ratio_high"] == pytest.approx(254, rel=0.01)


class TestLightFigures:
    def test_fig8_shares_sum_to_one(self):
        from repro.data import ALL_CLASSES

        result = run_fig8(duration_s=180)
        for row in result.rows:
            total = sum(row[c] for c in ALL_CLASSES)
            assert total == pytest.approx(1.0)

    def test_fig3_breakdown_monotone(self):
        result = run_fig3(duration_s=120)
        shares = [r["retraining_share"] for r in result.rows]
        assert shares == sorted(shares)

    def test_precision_ablation_shape(self):
        result = run_ablation_precision()
        by_fmt = {r["format"]: r for r in result.rows}
        assert by_fmt["MX4"]["inference_fps"] > by_fmt["MX9"]["inference_fps"]
        assert by_fmt["MX4"]["sqnr_db"] < by_fmt["MX9"]["sqnr_db"]

    def test_reports_are_nonempty_text(self):
        for runner in (run_table1, run_table3, run_table4):
            result = runner()
            assert isinstance(result.report, str)
            assert len(result.report) > 50
