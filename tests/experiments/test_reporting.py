"""Tests for the reporting helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import format_table
from repro.experiments.reporting import format_series


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "20" in lines[3]
        assert "0.250" in lines[3]

    def test_empty(self):
        assert "no rows" in format_table([])

    def test_heterogeneous_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([{"a": 1}, {"b": 2}])

    def test_floatfmt(self):
        text = format_table([{"x": 0.123456}], floatfmt=".1f")
        assert "0.1" in text and "0.12" not in text

    @pytest.mark.parametrize("scalar", [np.float32, np.float64])
    def test_numpy_scalars_honor_floatfmt(self, scalar):
        # np.float32 is not a ``float`` subclass: before the fix,
        # float32-policy reports printed raw numpy reprs.
        text = format_table([{"x": scalar(0.123456789)}])
        assert "0.123" in text
        assert "np.float" not in text and "0.1234567" not in text

    def test_none_renders_as_dash(self):
        text = format_table([{"x": None}])
        assert "-" in text.splitlines()[2]


class TestFormatSeries:
    def test_renders_all_names(self):
        times = np.arange(5.0)
        series = {"sys_a": np.ones(5), "sys_b": np.zeros(5)}
        text = format_series(times, series)
        assert "sys_a" in text and "sys_b" in text
        assert len(text.splitlines()) == 7  # header + rule + 5 rows

    def test_downsamples_long_series(self):
        times = np.arange(1000.0)
        series = {"x": np.ones(1000)}
        text = format_series(times, series, width=50)
        assert len(text.splitlines()) < 60

    @pytest.mark.parametrize("n", [119, 120, 121, 60, 61, 240, 1000])
    def test_at_most_width_rows(self, n):
        # A floor stride emitted up to ~2x width rows (119 points at
        # width 60 -> stride 1 -> 119 rows).
        text = format_series(
            np.arange(float(n)), {"x": np.ones(n)}, width=60
        )
        assert len(text.splitlines()) - 2 <= 60

    def test_final_point_always_included(self):
        n = 1000
        text = format_series(
            np.arange(float(n)), {"x": np.arange(float(n))}, width=50
        )
        last = text.splitlines()[-1]
        assert last.startswith(f"{n - 1}")

    def test_empty(self):
        assert "empty" in format_series(np.array([]), {})
