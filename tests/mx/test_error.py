"""Tests for the quantization-error metrics."""

import numpy as np

from repro.mx import MX4, MX6, MX9, max_abs_error, mse, quantization_report, sqnr


class TestMetrics:
    def test_exact_input_has_zero_error(self):
        x = np.array([1.0, 2.0, 4.0, 0.5] * 4)
        assert max_abs_error(x, MX9) == 0.0
        assert mse(x, MX9) == 0.0
        assert sqnr(x, MX9) == float("inf")

    def test_zero_signal(self):
        x = np.zeros(16)
        assert sqnr(x, MX4) == float("-inf") or sqnr(x, MX4) == float("inf")

    def test_sqnr_improves_with_precision(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1024)
        assert sqnr(x, MX9) > sqnr(x, MX6) > sqnr(x, MX4)

    def test_mse_nonnegative(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=256)
        for fmt in (MX4, MX6, MX9):
            assert mse(x, fmt) >= 0.0


class TestReport:
    def test_report_covers_all_formats(self):
        rng = np.random.default_rng(2)
        report = quantization_report(rng.normal(size=128))
        assert set(report) == {"MX4", "MX6", "MX9"}
        for entry in report.values():
            assert {"max_abs_error", "mse", "sqnr_db", "bits_per_value"} <= set(
                entry
            )

    def test_report_reflects_paper_precision_observation(self):
        # MX4 degrades markedly; MX6/MX9 track FP32 closely (section IV).
        rng = np.random.default_rng(3)
        report = quantization_report(rng.normal(size=4096))
        assert report["MX4"]["sqnr_db"] < report["MX6"]["sqnr_db"] - 5
        assert report["MX6"]["sqnr_db"] < report["MX9"]["sqnr_db"]
