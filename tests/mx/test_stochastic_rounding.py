"""Tests for stochastic rounding (FAST-style low-precision training)."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.mx import MX4, MX9, dequantize, quantize_blocks


class TestStochasticRounding:
    def test_requires_rng(self):
        with pytest.raises(QuantizationError, match="rng"):
            quantize_blocks(np.ones(16), MX9, rounding="stochastic")

    def test_unknown_mode_rejected(self):
        with pytest.raises(QuantizationError, match="rounding"):
            quantize_blocks(np.ones(16), MX9, rounding="floor")

    def test_representable_values_unchanged(self):
        x = np.array([1.0, 2.0, 0.5, 4.0] * 4)
        enc = quantize_blocks(
            x, MX9, rounding="stochastic", rng=np.random.default_rng(0)
        )
        np.testing.assert_array_equal(dequantize(enc), x)

    def test_unbiased_in_expectation(self):
        # A value a quarter of the way between two MX4 codes must round up
        # about 25% of the time.
        x = np.full(16, 1.0 + 0.25 * 0.5)  # codes at 1.0 and 1.5 (block max 1.125 -> E=0)
        rng = np.random.default_rng(1)
        ups = 0
        trials = 400
        for _ in range(trials):
            dec = dequantize(
                quantize_blocks(x, MX4, rounding="stochastic", rng=rng)
            )
            ups += int(np.count_nonzero(dec > x[0] - 1e-12))
        # Expected p = fractional distance to the lower code.
        enc = quantize_blocks(x, MX4)
        scale = 2.0 ** (
            int(enc.shared_exponents.ravel()[0])
            - int(enc.microexponents.ravel()[0])
            - (MX4.mantissa_bits - 1)
        )
        frac = (x[0] / scale) % 1.0
        observed = ups / (trials * 16)
        assert observed == pytest.approx(frac, abs=0.08)

    def test_error_bounded_by_one_step(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=160)
        enc = quantize_blocks(x, MX9, rounding="stochastic", rng=rng)
        dec = dequantize(enc)
        scales = np.ldexp(
            1.0, enc.shared_exponents.astype(int) - (MX9.mantissa_bits - 1)
        )
        bound = np.repeat(scales.ravel(), MX9.block_size)[: x.size]
        assert np.all(np.abs(x - dec) <= bound + 1e-300)

    def test_deterministic_per_seed(self):
        x = np.random.default_rng(3).normal(size=64)
        a = dequantize(quantize_blocks(
            x, MX4, rounding="stochastic", rng=np.random.default_rng(7)
        ))
        b = dequantize(quantize_blocks(
            x, MX4, rounding="stochastic", rng=np.random.default_rng(7)
        ))
        np.testing.assert_array_equal(a, b)
