"""Unit tests for MX encode/decode."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.mx import MX4, MX6, MX9, dequantize, quantize, quantize_blocks


class TestRoundTripShapes:
    def test_1d_exact_block(self):
        x = np.linspace(-1, 1, 16)
        assert quantize(x, MX9).shape == x.shape

    def test_1d_partial_block_preserves_shape(self):
        x = np.linspace(-1, 1, 19)
        assert quantize(x, MX9).shape == x.shape

    def test_2d_default_axis(self):
        x = np.random.default_rng(0).normal(size=(5, 40))
        assert quantize(x, MX6).shape == x.shape

    def test_2d_axis0(self):
        x = np.random.default_rng(0).normal(size=(40, 5))
        assert quantize(x, MX6, axis=0).shape == x.shape

    def test_scalar_input(self):
        assert quantize(np.float64(0.5), MX9).shape == (1,)

    def test_3d_middle_axis(self):
        x = np.random.default_rng(1).normal(size=(3, 33, 4))
        assert quantize(x, MX4, axis=1).shape == x.shape


class TestEncodedMetadata:
    def test_shared_exponent_is_block_max(self):
        x = np.array([0.25] * 15 + [8.0])  # exponents -2 and 3
        enc = quantize_blocks(x, MX9)
        assert enc.shared_exponents.ravel()[0] == 3

    def test_microexponent_set_for_small_subblocks(self):
        # First sub-block holds the max (micro=0); all others are one binade
        # or more below, so their microexponent bit must be 1.
        x = np.array([8.0, 8.0] + [0.25] * 14)
        enc = quantize_blocks(x, MX9)
        micro = enc.microexponents.ravel()
        assert micro[0] == 0
        assert np.all(micro[1:] == 1)

    def test_microexponent_zero_when_subblock_contains_max(self):
        x = np.array([1.0] * 16)
        enc = quantize_blocks(x, MX9)
        assert np.all(enc.microexponents == 0)

    def test_num_values_and_nbytes(self):
        x = np.zeros(33)
        enc = quantize_blocks(x, MX6)
        assert enc.num_values == 33
        assert enc.num_blocks == 3
        assert enc.nbytes == 3 * MX6.block_bytes

    def test_mantissas_within_format_range(self):
        x = np.random.default_rng(2).normal(size=256) * 100
        for fmt in (MX4, MX6, MX9):
            enc = quantize_blocks(x, fmt)
            assert np.all(np.abs(enc.mantissas) <= fmt.max_mantissa)


class TestValues:
    def test_zero_maps_to_zero(self):
        x = np.zeros(16)
        assert np.all(quantize(x, MX4) == 0.0)

    def test_powers_of_two_are_exact(self):
        x = np.array([1.0, 2.0, 4.0, 0.5] * 4)
        np.testing.assert_array_equal(quantize(x, MX9), x)

    def test_uniform_block_is_exact_for_representable_values(self):
        # 1.25 = 1.01b needs 3 mantissa bits -> exact in MX6/MX9, not MX4.
        x = np.full(16, 1.25)
        np.testing.assert_array_equal(quantize(x, MX9), x)
        np.testing.assert_array_equal(quantize(x, MX6), x)
        assert not np.array_equal(quantize(x, MX4), x)

    def test_error_bounded_by_one_ulp(self):
        # Sign-magnitude mantissas saturate in the top sliver of the shared
        # binade, so the hardware-faithful bound is one ULP of the block
        # scale (half a ULP away from saturation).
        rng = np.random.default_rng(3)
        x = rng.normal(size=160)
        for fmt in (MX4, MX6, MX9):
            enc = quantize_blocks(x, fmt)
            dec = dequantize(enc)
            scales = np.ldexp(
                1.0, enc.shared_exponents.astype(int) - (fmt.mantissa_bits - 1)
            )
            bound = np.repeat(scales.ravel(), fmt.block_size)[: x.size]
            assert np.all(np.abs(x - dec) <= bound + 1e-300)

    def test_error_half_ulp_away_from_saturation(self):
        # Values whose mantissa does not clamp meet the classic half-ULP
        # round-to-nearest bound.
        rng = np.random.default_rng(30)
        x = rng.uniform(-1.4, 1.4, size=160)  # stays below saturation zone
        x[::16] = 1.5  # pin every block's shared exponent to 0
        for fmt in (MX4, MX6, MX9):
            enc = quantize_blocks(x, fmt)
            dec = dequantize(enc)
            saturated = np.abs(enc.mantissas) == fmt.max_mantissa
            scales = np.ldexp(
                1.0, enc.shared_exponents.astype(int) - (fmt.mantissa_bits - 1)
            )
            err = np.abs(x - dec).reshape(enc.mantissas.shape)
            ok = err <= 0.5 * scales[..., None] + 1e-300
            assert np.all(ok | saturated)

    def test_more_mantissa_bits_never_increase_error(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=320)
        err4 = np.abs(x - quantize(x, MX4)).max()
        err6 = np.abs(x - quantize(x, MX6)).max()
        err9 = np.abs(x - quantize(x, MX9)).max()
        assert err9 <= err6 <= err4

    def test_sign_symmetry(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=64)
        np.testing.assert_allclose(quantize(-x, MX6), -quantize(x, MX6))

    def test_idempotent(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=64)
        once = quantize(x, MX6)
        twice = quantize(once, MX6)
        np.testing.assert_array_equal(once, twice)

    def test_tiny_values_flush_to_zero_in_wide_range_block(self):
        x = np.array([1.0] + [1e-30] * 15)
        dec = quantize(x, MX4)
        assert dec[0] == 1.0
        assert np.all(dec[1:] == 0.0)


class TestErrors:
    def test_nan_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.array([np.nan] * 16), MX9)

    def test_inf_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.array([np.inf] + [0.0] * 15), MX9)

    def test_bad_axis_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.zeros((4, 4)), MX9, axis=2)

    def test_empty_axis_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.zeros((4, 0)), MX9)
