"""Unit tests for the MX format definitions."""

import pytest

from repro.errors import ConfigurationError
from repro.mx import FORMATS, MX4, MX6, MX9, MXFormat, format_by_name


class TestFormatNaming:
    def test_bits_per_value_match_format_names(self):
        # The formats earn their names from amortized storage cost.
        assert MX4.bits_per_value == 4.0
        assert MX6.bits_per_value == 6.0
        assert MX9.bits_per_value == 9.0

    def test_mantissa_bits_follow_the_paper(self):
        # Figure 6: mantissas truncated to 2 (MX4), 4 (MX6), or 7 (MX9) bits.
        assert MX4.mantissa_bits == 2
        assert MX6.mantissa_bits == 4
        assert MX9.mantissa_bits == 7

    def test_formats_ordered_by_increasing_precision(self):
        bits = [fmt.mantissa_bits for fmt in FORMATS]
        assert bits == sorted(bits)

    def test_str_is_name(self):
        assert str(MX6) == "MX6"


class TestBlockGeometry:
    def test_paper_default_block_and_subblock_sizes(self):
        for fmt in FORMATS:
            assert fmt.block_size == 16
            assert fmt.subblock_size == 2
            assert fmt.subblocks_per_block == 8

    def test_block_bits_mx9(self):
        # 16 * (1 + 7) + 8 shared + 8 micro = 144 bits = 18 bytes.
        assert MX9.block_bits == 144
        assert MX9.block_bytes == 18

    def test_block_bits_mx4(self):
        # 16 * (1 + 2) + 8 + 8 = 64 bits = 8 bytes.
        assert MX4.block_bits == 64
        assert MX4.block_bytes == 8

    def test_block_bits_mx6(self):
        # 16 * (1 + 4) + 8 + 8 = 96 bits = 12 bytes.
        assert MX6.block_bits == 96
        assert MX6.block_bytes == 12


class TestBytesFor:
    def test_exact_blocks(self):
        assert MX9.bytes_for(32) == 2 * MX9.block_bytes

    def test_partial_block_rounds_up(self):
        assert MX9.bytes_for(17) == 2 * MX9.block_bytes

    def test_zero_values(self):
        assert MX6.bytes_for(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            MX6.bytes_for(-1)


class TestMaxMantissa:
    def test_sign_magnitude_limits(self):
        assert MX4.max_mantissa == 3
        assert MX6.max_mantissa == 15
        assert MX9.max_mantissa == 127


class TestLookup:
    def test_lookup_by_name(self):
        assert format_by_name("MX9") is MX9

    def test_lookup_case_insensitive(self):
        assert format_by_name("mx4") is MX4

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown MX format"):
            format_by_name("MX7")


class TestValidation:
    def test_invalid_mantissa_bits(self):
        with pytest.raises(ConfigurationError):
            MXFormat("bad", mantissa_bits=0)

    def test_subblock_must_divide_block(self):
        with pytest.raises(ConfigurationError):
            MXFormat("bad", mantissa_bits=4, block_size=16, subblock_size=3)

    def test_custom_block_size(self):
        fmt = MXFormat("custom", mantissa_bits=4, block_size=32, subblock_size=4)
        assert fmt.subblocks_per_block == 8
