"""Unit and property tests for MX dot products / GEMMs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import QuantizationError
from repro.mx import MX4, MX6, MX9, mx_dot, mx_matmul, quantize


class TestMxDot:
    def test_matches_quantized_reference(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=32), rng.normal(size=32)
        expected = float(np.dot(quantize(a, MX6), quantize(b, MX9)))
        assert mx_dot(a, b, MX6, MX9) == expected

    def test_default_second_format(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=16), rng.normal(size=16)
        assert mx_dot(a, b, MX9) == mx_dot(a, b, MX9, MX9)

    def test_exact_for_representable_inputs(self):
        a = np.array([1.0, 2.0, 0.5, 4.0] * 4)
        b = np.array([2.0] * 16)
        assert mx_dot(a, b, MX9) == float(np.dot(a, b))

    def test_length_mismatch(self):
        with pytest.raises(QuantizationError):
            mx_dot(np.zeros(4), np.zeros(5), MX6)

    def test_non_1d_rejected(self):
        with pytest.raises(QuantizationError):
            mx_dot(np.zeros((4, 4)), np.zeros((4, 4)), MX6)


class TestMxMatmul:
    def test_matches_quantized_reference(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(8, 32))
        b = rng.normal(size=(32, 5))
        expected = quantize(a, MX6, axis=1) @ quantize(b, MX9, axis=0)
        np.testing.assert_array_equal(mx_matmul(a, b, MX6, MX9), expected)

    def test_shape(self):
        a = np.ones((3, 20))
        b = np.ones((20, 7))
        assert mx_matmul(a, b, MX4).shape == (3, 7)

    def test_inner_mismatch(self):
        with pytest.raises(QuantizationError):
            mx_matmul(np.ones((3, 4)), np.ones((5, 2)), MX6)

    def test_non_2d_rejected(self):
        with pytest.raises(QuantizationError):
            mx_matmul(np.ones(4), np.ones((4, 2)), MX6)


vec16 = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=64),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@given(vec16)
@settings(max_examples=100, deadline=None)
def test_integer_datapath_equivalence(a):
    """Integer mantissa x power-of-two scale arithmetic == dequantized dot.

    This is the claim justifying the fake-quantize implementation of the DPE
    functional path: both sides are exact in float64.
    """
    from repro.mx import dequantize, quantize_blocks

    b = a[::-1].copy()
    enc_a = quantize_blocks(a, MX6)
    enc_b = quantize_blocks(b, MX6)
    # Integer-domain computation with explicit scales.
    fmt = MX6
    sa = np.ldexp(
        1.0,
        (
            enc_a.shared_exponents[..., None]
            - enc_a.microexponents.astype(int)
            - (fmt.mantissa_bits - 1)
        ),
    )
    sb = np.ldexp(
        1.0,
        (
            enc_b.shared_exponents[..., None]
            - enc_b.microexponents.astype(int)
            - (fmt.mantissa_bits - 1)
        ),
    )
    sub = fmt.subblock_size
    ma = enc_a.mantissas.reshape(-1, fmt.subblocks_per_block, sub).astype(float)
    mb = enc_b.mantissas.reshape(-1, fmt.subblocks_per_block, sub).astype(float)
    integer_dot = float(
        np.sum(ma * mb * (sa.reshape(-1, fmt.subblocks_per_block, 1))
               * (sb.reshape(-1, fmt.subblocks_per_block, 1)))
    )
    reference = float(np.dot(dequantize(enc_a), dequantize(enc_b)))
    assert integer_dot == pytest.approx(reference, rel=1e-12, abs=1e-12)
