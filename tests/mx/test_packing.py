"""Tests for the packed MX bitstream layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import QuantizationError
from repro.mx import FORMATS, MX4, MX6, MX9, dequantize, pack, quantize_blocks, unpack


class TestPackUnpack:
    def test_round_trip_1d(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=40)
        enc = quantize_blocks(x, MX6)
        dec = unpack(pack(enc), MX6, enc.shape, enc.axis)
        np.testing.assert_array_equal(dec.mantissas, enc.mantissas)
        np.testing.assert_array_equal(
            dec.shared_exponents, enc.shared_exponents
        )
        np.testing.assert_array_equal(
            dec.microexponents, enc.microexponents
        )

    def test_round_trip_values(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 33))
        enc = quantize_blocks(x, MX9, axis=1)
        dec = unpack(pack(enc), MX9, enc.shape, enc.axis)
        np.testing.assert_array_equal(dequantize(dec), dequantize(enc))

    def test_packed_size_matches_accounting(self):
        for fmt in FORMATS:
            x = np.random.default_rng(2).normal(size=50)
            enc = quantize_blocks(x, fmt)
            assert len(pack(enc)) == enc.nbytes == fmt.bytes_for(50)

    def test_wrong_payload_size_rejected(self):
        x = np.zeros(16)
        enc = quantize_blocks(x, MX4)
        with pytest.raises(QuantizationError):
            unpack(pack(enc)[:-1], MX4, enc.shape, enc.axis)

    def test_negative_mantissas_survive(self):
        x = np.array([-1.0, 1.0] * 8)
        enc = quantize_blocks(x, MX9)
        dec = unpack(pack(enc), MX9, enc.shape, enc.axis)
        np.testing.assert_array_equal(dequantize(dec), x)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 80),
        elements=st.floats(
            min_value=-1e20, max_value=1e20,
            allow_nan=False, allow_infinity=False,
        ),
    ),
    st.sampled_from(FORMATS),
)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_identity(x, fmt):
    enc = quantize_blocks(x, fmt)
    dec = unpack(pack(enc), fmt, enc.shape, enc.axis)
    np.testing.assert_array_equal(dequantize(dec), dequantize(enc))
    assert len(pack(enc)) == fmt.bytes_for(x.size)
