"""Property-based tests (hypothesis) for MX quantization invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mx import FORMATS, MX4, MX9, dequantize, quantize, quantize_blocks
from repro.mx.formats import MIN_SHARED_EXPONENT

finite_floats = st.floats(
    min_value=-1e30,
    max_value=1e30,
    allow_nan=False,
    allow_infinity=False,
)

vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=100),
    elements=finite_floats,
)

formats = st.sampled_from(FORMATS)

#: Magnitude floor keeping every exponent comfortably above the shared-
#: exponent clamp even after scaling by the test's power-of-two factors.
#: Below ``2 ** MIN_SHARED_EXPONENT`` the 8-bit shared exponent saturates
#: and power-of-two scaling genuinely stops commuting (see
#: ``test_clamped_binade_saturates``), exactly as on the hardware.
_UNCLAMPED_MIN = 2.0 ** (MIN_SHARED_EXPONENT + 6)

unclamped_floats = st.one_of(
    st.just(0.0),
    st.floats(min_value=_UNCLAMPED_MIN, max_value=1e30),
    st.floats(min_value=-1e30, max_value=-_UNCLAMPED_MIN),
)

unclamped_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=100),
    elements=unclamped_floats,
)


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_round_trip_preserves_shape(x, fmt):
    assert quantize(x, fmt).shape == x.shape


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_quantization_is_idempotent(x, fmt):
    once = quantize(x, fmt)
    np.testing.assert_array_equal(quantize(once, fmt), once)


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_error_bounded_by_one_ulp_of_block_scale(x, fmt):
    # One ULP covers the sign-magnitude saturation sliver at the top of the
    # shared binade; non-saturating values meet half a ULP (unit test).
    enc = quantize_blocks(x, fmt)
    dec = dequantize(enc)
    scales = np.ldexp(
        1.0, enc.shared_exponents.astype(int) - (fmt.mantissa_bits - 1)
    )
    bound = np.repeat(scales.ravel(), fmt.block_size)[: x.size]
    assert np.all(np.abs(x - dec) <= bound * (1 + 1e-12) + 1e-300)


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_sign_antisymmetry(x, fmt):
    np.testing.assert_array_equal(quantize(-x, fmt), -quantize(x, fmt))


@given(vectors)
@settings(max_examples=200, deadline=None)
def test_precision_ordering(x):
    # Higher-precision formats never produce a larger max error.
    errors = [np.abs(x - quantize(x, fmt)).max() for fmt in FORMATS]
    assert errors == sorted(errors, reverse=True) or np.allclose(
        errors, sorted(errors, reverse=True)
    )


@given(unclamped_vectors, formats, st.floats(min_value=0.25, max_value=4.0))
@settings(max_examples=200, deadline=None)
def test_power_of_two_scaling_commutes(x, fmt, scale_pow):
    # Scaling inputs by a power of two scales the output identically,
    # because block exponents shift uniformly -- as long as no block
    # saturates the shared-exponent clamp (bounded by the strategy; the
    # clamped binade is pinned by test_clamped_binade_saturates below).
    factor = 2.0 ** np.floor(np.log2(scale_pow))
    lhs = quantize(x * factor, fmt)
    rhs = quantize(x, fmt) * factor
    np.testing.assert_allclose(lhs, rhs, rtol=0, atol=0)


def test_clamped_binade_saturates():
    # Regression for the property above: below 2**MIN_SHARED_EXPONENT the
    # 8-bit shared exponent clamps, the mantissa grid stops tracking the
    # input binade, and power-of-two scaling no longer commutes.  This is
    # faithful hardware saturation, not an encoder bug.
    tiny = 1.74710504e-39  # ~1.19 * 2**-129, three binades under the clamp
    x = np.array([tiny])

    for fmt in FORMATS:
        enc = quantize_blocks(x, fmt)
        # The shared exponent saturates at the clamp (the zero padding of
        # the block carries the sentinel minimum exponent as well).
        assert enc.shared_exponents.max() == MIN_SHARED_EXPONENT

    # At MX4 the clamped grid step is 2**-127: quantize(x) underflows to 0
    # while quantize(2 * x) rounds up to one step, so scaling by 2 does not
    # commute -- the exact falsifying example the unbounded property finds.
    assert quantize(x, MX4)[0] == 0.0
    assert quantize(2.0 * x, MX4)[0] != 0.0

    # Back inside the representable range the property holds again.
    safe = x * 2.0 ** 64
    np.testing.assert_array_equal(
        quantize(2.0 * safe, MX4), 2.0 * quantize(safe, MX4)
    )


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_fused_quantize_matches_encode_decode_bitwise(x, fmt):
    # The fused fake-quantize must equal the explicit encode/decode path to
    # the last bit -- including the sign of zeros, which array_equal would
    # not catch (the int32 round-trip normalizes -0.0 to +0.0).
    fused = quantize(x, fmt)
    reference = dequantize(quantize_blocks(x, fmt))
    assert fused.tobytes() == reference.tobytes()


def test_fused_quantize_normalizes_negative_zero():
    # round(-0.001 / scale) produces -0.0; the fused kernel must emit +0.0
    # exactly as the old float64 -> int32 -> float64 round-trip did.
    out = quantize(np.array([-0.2, 0.0, 1.0, -3.7, -1e-3]), MX4)
    assert not np.signbit(out[np.where(out == 0.0)]).any()


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_zeros_stay_zero(x, fmt):
    mask = x == 0.0
    dec = quantize(x, fmt)
    assert np.all(dec[mask] == 0.0)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=40),
        ),
        elements=finite_floats,
    ),
    formats,
)
@settings(max_examples=100, deadline=None)
def test_rows_quantize_independently(x, fmt):
    # Quantizing a matrix along its last axis equals quantizing each row.
    full = quantize(x, fmt, axis=1)
    for i in range(x.shape[0]):
        np.testing.assert_array_equal(full[i], quantize(x[i], fmt))


@given(vectors, formats)
@settings(max_examples=100, deadline=None)
def test_packed_bytes_match_format_accounting(x, fmt):
    enc = quantize_blocks(x, fmt)
    assert enc.nbytes == fmt.bytes_for(x.size)


@given(vectors)
@settings(max_examples=100, deadline=None)
def test_mx4_mantissas_fit_two_bits(x):
    enc = quantize_blocks(x, MX4)
    assert np.all(np.abs(enc.mantissas) <= 3)


@given(vectors)
@settings(max_examples=100, deadline=None)
def test_mx9_representable_round_trip_is_exact(x):
    # Anything MX9 emits must round-trip exactly through MX9 again.
    once = quantize(x, MX9)
    np.testing.assert_array_equal(quantize(once, MX9), once)
