"""Property-based tests (hypothesis) for MX quantization invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mx import FORMATS, MX4, MX9, dequantize, quantize, quantize_blocks

finite_floats = st.floats(
    min_value=-1e30,
    max_value=1e30,
    allow_nan=False,
    allow_infinity=False,
)

vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=100),
    elements=finite_floats,
)

formats = st.sampled_from(FORMATS)


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_round_trip_preserves_shape(x, fmt):
    assert quantize(x, fmt).shape == x.shape


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_quantization_is_idempotent(x, fmt):
    once = quantize(x, fmt)
    np.testing.assert_array_equal(quantize(once, fmt), once)


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_error_bounded_by_one_ulp_of_block_scale(x, fmt):
    # One ULP covers the sign-magnitude saturation sliver at the top of the
    # shared binade; non-saturating values meet half a ULP (unit test).
    enc = quantize_blocks(x, fmt)
    dec = dequantize(enc)
    scales = np.ldexp(
        1.0, enc.shared_exponents.astype(int) - (fmt.mantissa_bits - 1)
    )
    bound = np.repeat(scales.ravel(), fmt.block_size)[: x.size]
    assert np.all(np.abs(x - dec) <= bound * (1 + 1e-12) + 1e-300)


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_sign_antisymmetry(x, fmt):
    np.testing.assert_array_equal(quantize(-x, fmt), -quantize(x, fmt))


@given(vectors)
@settings(max_examples=200, deadline=None)
def test_precision_ordering(x):
    # Higher-precision formats never produce a larger max error.
    errors = [np.abs(x - quantize(x, fmt)).max() for fmt in FORMATS]
    assert errors == sorted(errors, reverse=True) or np.allclose(
        errors, sorted(errors, reverse=True)
    )


@given(vectors, formats, st.floats(min_value=0.25, max_value=4.0))
@settings(max_examples=200, deadline=None)
def test_power_of_two_scaling_commutes(x, fmt, scale_pow):
    # Scaling inputs by a power of two scales the output identically,
    # because block exponents shift uniformly.
    factor = 2.0 ** np.floor(np.log2(scale_pow))
    lhs = quantize(x * factor, fmt)
    rhs = quantize(x, fmt) * factor
    np.testing.assert_allclose(lhs, rhs, rtol=0, atol=0)


@given(vectors, formats)
@settings(max_examples=200, deadline=None)
def test_zeros_stay_zero(x, fmt):
    mask = x == 0.0
    dec = quantize(x, fmt)
    assert np.all(dec[mask] == 0.0)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=40),
        ),
        elements=finite_floats,
    ),
    formats,
)
@settings(max_examples=100, deadline=None)
def test_rows_quantize_independently(x, fmt):
    # Quantizing a matrix along its last axis equals quantizing each row.
    full = quantize(x, fmt, axis=1)
    for i in range(x.shape[0]):
        np.testing.assert_array_equal(full[i], quantize(x[i], fmt))


@given(vectors, formats)
@settings(max_examples=100, deadline=None)
def test_packed_bytes_match_format_accounting(x, fmt):
    enc = quantize_blocks(x, fmt)
    assert enc.nbytes == fmt.bytes_for(x.size)


@given(vectors)
@settings(max_examples=100, deadline=None)
def test_mx4_mantissas_fit_two_bits(x):
    enc = quantize_blocks(x, MX4)
    assert np.all(np.abs(enc.mantissas) <= 3)


@given(vectors)
@settings(max_examples=100, deadline=None)
def test_mx9_representable_round_trip_is_exact(x):
    # Anything MX9 emits must round-trip exactly through MX9 again.
    once = quantize(x, MX9)
    np.testing.assert_array_equal(quantize(once, MX9), once)
