"""Tests for the energy accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.platform import EnergyAccount, energy_ratio


class TestEnergyAccount:
    def test_record_accumulates(self):
        acct = EnergyAccount("x")
        acct.record(10.0, 5.0)
        acct.record(10.0, 15.0)
        assert acct.wall_time_s == 20.0
        assert acct.energy_j == 200.0
        assert acct.average_power_w == 10.0

    def test_empty_account(self):
        assert EnergyAccount("x").average_power_w == 0.0

    def test_invalid_segments(self):
        acct = EnergyAccount("x")
        with pytest.raises(ConfigurationError):
            acct.record(-1.0, 5.0)
        with pytest.raises(ConfigurationError):
            acct.record(1.0, -5.0)


class TestEnergyRatio:
    def test_254x_headline(self):
        # A 20-minute run: Orin-high at 60 W vs DaCapo at 0.236 W.
        gpu = EnergyAccount("OrinHigh")
        gpu.record(1200.0, 60.0)
        dacapo = EnergyAccount("DaCapo")
        dacapo.record(1200.0, 0.236)
        assert energy_ratio(gpu, dacapo) == pytest.approx(254, rel=0.01)

    def test_zero_candidate_rejected(self):
        gpu = EnergyAccount("g")
        gpu.record(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            energy_ratio(gpu, EnergyAccount("d"))
