"""Tests for the DaCapo platform wrapper."""

import pytest

from repro.errors import ConfigurationError
from repro.models import get_model
from repro.mx import MX6, MX9
from repro.platform import build_dacapo_platform


class TestConstruction:
    def test_build_partitions_rows(self):
        plat = build_dacapo_platform(rows_tsa=13)
        assert plat.partition.rows_tsa == 13
        assert plat.partition.rows_bsa == 3

    def test_paper_precisions(self):
        plat = build_dacapo_platform(rows_tsa=8)
        assert plat.inference_fmt is MX6
        assert plat.labeling_fmt is MX6
        assert plat.training_fmt is MX9


class TestRates:
    def test_student_inference_meets_frame_rate(self):
        plat = build_dacapo_platform(rows_tsa=13)
        assert plat.inference_rate(get_model("resnet18")) >= 30

    def test_inference_ignores_share(self):
        plat = build_dacapo_platform(rows_tsa=13)
        model = get_model("resnet18")
        assert plat.inference_rate(model, share=0.5) == plat.inference_rate(
            model, share=1.0
        )

    def test_tsa_share_scales_labeling(self):
        plat = build_dacapo_platform(rows_tsa=13)
        teacher = get_model("wide_resnet50_2")
        full = plat.labeling_rate(teacher, share=1.0)
        half = plat.labeling_rate(teacher, share=0.5)
        assert half == pytest.approx(full / 2)

    def test_tsa_share_scales_training(self):
        plat = build_dacapo_platform(rows_tsa=13)
        student = get_model("resnet18")
        full = plat.training_rate(student, share=1.0)
        half = plat.training_rate(student, share=0.5)
        assert half == pytest.approx(full / 2)

    def test_latency_consistent_with_rate(self):
        plat = build_dacapo_platform(rows_tsa=13)
        model = get_model("resnet18")
        assert plat.inference_latency_s(model) == pytest.approx(
            1.0 / plat.inference_rate(model)
        )

    def test_more_tsa_rows_speed_up_labeling(self):
        teacher = get_model("wide_resnet50_2")
        small = build_dacapo_platform(rows_tsa=8)
        large = build_dacapo_platform(rows_tsa=13)
        assert large.labeling_rate(teacher) > small.labeling_rate(teacher)

    def test_invalid_share(self):
        plat = build_dacapo_platform(rows_tsa=8)
        with pytest.raises(ConfigurationError):
            plat.labeling_rate(get_model("wide_resnet50_2"), share=-0.1)


class TestPower:
    def test_chip_power_matches_table4(self):
        plat = build_dacapo_platform(rows_tsa=8)
        assert plat.average_power_w(1.0) == pytest.approx(0.236)

    def test_power_scales_with_utilization(self):
        plat = build_dacapo_platform(rows_tsa=8)
        assert plat.average_power_w(0.2) < plat.average_power_w(0.9)
