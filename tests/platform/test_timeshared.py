"""Tests for the time-multiplexed DaCapo platform (DaCapo-Ekya's substrate)."""

import pytest

from repro.errors import ConfigurationError
from repro.models import get_model
from repro.platform import DaCapoTimeShared, build_dacapo_platform


class TestTimeShared:
    def test_not_dedicated(self):
        assert DaCapoTimeShared().dedicated_inference is False
        assert build_dacapo_platform(13).dedicated_inference is True

    def test_multiplexing_penalty_applied(self):
        shared = DaCapoTimeShared()
        clean = DaCapoTimeShared(multiplexing_efficiency=1.0)
        model = get_model("resnet18")
        ratio = shared.inference_rate(model) / clean.inference_rate(model)
        assert ratio == pytest.approx(shared.multiplexing_efficiency)

    def test_full_array_beats_partition_at_equal_share(self):
        # The whole point of time-sharing: all 16 rows are available...
        shared = DaCapoTimeShared(multiplexing_efficiency=1.0)
        partitioned = build_dacapo_platform(13)
        teacher = get_model("wide_resnet50_2")
        assert shared.labeling_rate(teacher) > partitioned.labeling_rate(
            teacher
        )

    def test_but_inference_consumes_shared_time(self):
        # ...the cost appears once inference claims its share.
        shared = DaCapoTimeShared()
        partitioned = build_dacapo_platform(14)
        student = get_model("resnet18")
        inference_share = 30.0 / shared.inference_rate(student)
        remaining = 1.0 - inference_share
        teacher = get_model("wide_resnet50_2")
        shared_effective = shared.labeling_rate(teacher, remaining)
        dedicated = partitioned.labeling_rate(teacher, 1.0)
        # With the multiplexing penalty the time-shared configuration's
        # training-side throughput falls near/below the dedicated T-SA's.
        assert shared_effective < dedicated * 1.15

    def test_share_scaling(self):
        shared = DaCapoTimeShared()
        model = get_model("resnet18")
        assert shared.training_rate(model, 0.5) == pytest.approx(
            shared.training_rate(model, 1.0) / 2
        )

    def test_invalid_share(self):
        with pytest.raises(ConfigurationError):
            DaCapoTimeShared().training_rate(get_model("resnet18"), 1.5)

    def test_power_matches_table4(self):
        assert DaCapoTimeShared().average_power_w(1.0) == pytest.approx(0.236)

    def test_precision_report_works(self):
        from repro.core import PerformanceEstimator
        from repro.models import get_pair

        estimator = PerformanceEstimator(
            DaCapoTimeShared(), get_pair("resnet18_wrn50")
        )
        report = estimator.precision_report()
        assert set(report) == {"MX4", "MX6", "MX9"}
