"""Tests for the GPU roofline platforms."""

import pytest

from repro.errors import ConfigurationError
from repro.models import get_model
from repro.platform import (
    GpuPlatform,
    jetson_orin_high,
    jetson_orin_low,
    rtx_3090,
)

FRAME_RATE = 30.0
STUDENTS = ["resnet18", "resnet34", "vit_b_32"]
TEACHERS = ["wide_resnet50_2", "wide_resnet101_2", "vit_b_16"]


class TestFigure2Calibration:
    """The platforms must reproduce Figure 2's frame-drop structure."""

    def test_rtx3090_never_drops(self):
        gpu = rtx_3090()
        for name in STUDENTS + TEACHERS:
            assert gpu.inference_rate(get_model(name)) >= FRAME_RATE

    def test_orin_students_hold_frame_rate(self):
        for gpu in (jetson_orin_high(), jetson_orin_low()):
            for name in STUDENTS:
                assert gpu.inference_rate(get_model(name)) >= FRAME_RATE

    def test_orin_teachers_drop_frames(self):
        for gpu in (jetson_orin_high(), jetson_orin_low()):
            for name in TEACHERS:
                assert gpu.inference_rate(get_model(name)) < FRAME_RATE

    def test_low_power_mode_slower(self):
        model = get_model("resnet18")
        assert jetson_orin_low().inference_rate(model) < jetson_orin_high(
        ).inference_rate(model)


class TestPowerRatios:
    def test_orin_high_is_254x_dacapo(self):
        # Section VII-A: OrinHigh consumes 254x more power than DaCapo.
        from repro.accelerator import DACAPO_POWER_W
        assert jetson_orin_high().power_w / DACAPO_POWER_W == pytest.approx(
            254, rel=0.01
        )

    def test_orin_low_is_127x_dacapo(self):
        from repro.accelerator import DACAPO_POWER_W
        assert jetson_orin_low().power_w / DACAPO_POWER_W == pytest.approx(
            127, rel=0.01
        )


class TestRates:
    def test_share_scales_linearly(self):
        gpu = jetson_orin_high()
        model = get_model("resnet18")
        full = gpu.inference_rate(model, share=1.0)
        half = gpu.inference_rate(model, share=0.5)
        assert half == pytest.approx(full / 2)

    def test_training_slower_than_inference(self):
        gpu = jetson_orin_high()
        model = get_model("resnet18")
        assert gpu.training_rate(model) < gpu.inference_rate(model)

    def test_labeling_derated_by_inference_interference(self):
        # Labeling shares the device with the latency-critical inference
        # stream, so its sustained rate sits well below plain inference.
        gpu = jetson_orin_high()
        teacher = get_model("wide_resnet50_2")
        assert gpu.labeling_rate(teacher) < gpu.inference_rate(teacher)
        ratio = gpu.labeling_rate(teacher) / gpu.inference_rate(teacher)
        assert ratio == pytest.approx(
            gpu.labeling_efficiency / gpu.inference_efficiency
        )

    def test_invalid_share(self):
        gpu = jetson_orin_high()
        with pytest.raises(ConfigurationError):
            gpu.inference_rate(get_model("resnet18"), share=1.5)


class TestPower:
    def test_average_power_interpolates(self):
        gpu = jetson_orin_high()
        idle = gpu.average_power_w(0.0)
        full = gpu.average_power_w(1.0)
        assert idle < gpu.average_power_w(0.5) < full
        assert full == gpu.power_w

    def test_invalid_utilization(self):
        with pytest.raises(ConfigurationError):
            jetson_orin_high().average_power_w(2.0)


class TestValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            GpuPlatform("bad", peak_flops=0, power_w=10)
        with pytest.raises(ConfigurationError):
            GpuPlatform("bad", peak_flops=1e12, power_w=10,
                        inference_efficiency=0)
        with pytest.raises(ConfigurationError):
            GpuPlatform("bad", peak_flops=1e12, power_w=10, idle_fraction=2)
