"""The sharing bit-identity contract, both paths, through the executor.

Two frozen sections (``tests/reference/digests_sharing.json``):

- ``independent``: the default off-path over the reference fleet must
  stay byte-identical to the historical executor -- sharing machinery is
  opt-in and its *absence* is digest-pinned.
- ``shared``: the cluster path is deterministic too (a cluster's cells
  are co-located and run sequentially), so its digests are frozen with
  the same severity.
"""

import json

import pytest

from repro.exec import execute_cells
from repro.exec.backends import resolve_backend
from repro.exec.shard import (
    ShardSpec,
    cell_key,
    run_spec_cells,
    shard_key,
)
from repro.reference import run_digest
from repro.share.policy import CLUSTER, use_sharing
from repro.share.reference import (
    run_shared_cells,
    sharing_reference_cells,
    sharing_reference_path,
)

POLICY = "float64"


@pytest.fixture(scope="module")
def frozen():
    path = sharing_reference_path()
    assert path.is_file(), f"missing reference file {path}"
    payload = json.loads(path.read_text())
    assert payload["policy"] == POLICY
    return payload["digests"]


@pytest.fixture(scope="module")
def fleet():
    return sharing_reference_cells()


@pytest.fixture(scope="module")
def shared_run(fleet):
    return run_shared_cells(fleet)


class TestOffPath:
    def test_independent_digests_match_frozen(self, frozen, fleet):
        # The default path: no sharing context, plain executor.
        backend, workers, owned = resolve_backend("serial", 1, len(fleet))
        try:
            results = execute_cells(fleet, backend=backend, workers=workers)
        finally:
            if owned:
                backend.close()
        computed = {
            cell_key(POLICY, cell): run_digest(result)
            for cell, result in zip(fleet, results)
        }
        assert computed == frozen["independent"]


class TestSharedPath:
    def test_shared_digests_match_frozen(self, frozen, fleet, shared_run):
        results, _ = shared_run
        computed = {
            cell_key(POLICY, cell): run_digest(result)
            for cell, result in zip(fleet, results)
        }
        assert computed == frozen["shared"]

    def test_founder_is_bit_identical_to_independent(
        self, frozen, fleet
    ):
        # The cluster founder adopts nothing -- it publishes.  Its result
        # is therefore byte-equal to its independent run; only later
        # members diverge (they inherit the founder's learning).
        founder = cell_key(POLICY, fleet[0])
        assert frozen["shared"][founder] == frozen["independent"][founder]
        later = cell_key(POLICY, fleet[1])
        assert frozen["shared"][later] != frozen["independent"][later]

    def test_counters_show_realized_reuse(self, shared_run):
        _, runtimes = shared_run
        assert set(runtimes) == {"c0"}
        counters = runtimes["c0"].counters
        assert counters["labels_shared"] > 0
        assert counters["retrains_reused"] > 0
        assert counters["warm_starts"] == 3  # every member but the founder
        # Reuse must dominate: three of four cameras ride the founder.
        assert counters["labels_shared"] > counters["labels_computed"]

    def test_shard_spec_path_matches(self, frozen, fleet):
        # The worker-side entry point (what every backend executes) must
        # produce the same frozen digests as the direct runtime path.
        spec = ShardSpec(
            key=shard_key(POLICY, fleet),
            cells=tuple(fleet),
            indices=tuple(range(len(fleet))),
            policy=POLICY,
            sharing="cluster",
        )
        with use_sharing(CLUSTER):
            results, run_snapshot, _, cluster_state = run_spec_cells(spec)
        assert run_snapshot is None and cluster_state is None
        computed = {
            cell_key(POLICY, cell): run_digest(result)
            for cell, result in zip(fleet, results)
        }
        assert computed == frozen["shared"]

    def test_cluster_state_emitted_for_single_cell(self, fleet):
        spec = ShardSpec(
            key=shard_key(POLICY, fleet[:1]),
            cells=tuple(fleet[:1]),
            indices=(0,),
            policy=POLICY,
            sharing="cluster",
            emit_cluster_state=True,
        )
        with use_sharing(CLUSTER):
            _, _, _, cluster_state = run_spec_cells(spec)
        assert cluster_state is not None
        assert cluster_state["cluster"] == "c0"
        assert cluster_state["counters"]["retrains_run"] > 0
