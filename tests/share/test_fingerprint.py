"""Fingerprint determinism: the clustering contract's foundation.

A stream's drift fingerprint must be a pure function of (scenario,
duration) -- identical across processes, worker counts, numeric policies,
and cell seeds -- or clusters would silently differ between a ``--jobs 8``
sweep and a serial one.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.exec.shard import SystemCell
from repro.numeric import FLOAT32, FLOAT64, use_policy
from repro.share.fingerprint import (
    cell_fingerprint,
    feature_fingerprint,
    fingerprint_distance,
    schedule_fingerprint,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestScheduleFingerprint:
    def test_deterministic_within_process(self):
        a = schedule_fingerprint("S4", 240.0)
        b = schedule_fingerprint("S4", 240.0)
        assert a == b
        assert a.digest() == b.digest()
        assert a.source == "schedule"

    def test_seed_independent(self):
        # Two cameras at one intersection: same scenario, different cell
        # seeds.  Their fingerprints are identical by construction.
        cells = [
            SystemCell(
                "DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", s, 240.0
            )
            for s in range(4)
        ]
        digests = {cell_fingerprint(cell).digest() for cell in cells}
        assert len(digests) == 1

    @pytest.mark.parametrize("policy", [FLOAT64, FLOAT32], ids=lambda p: p.name)
    def test_numeric_policy_independent(self, policy):
        baseline = schedule_fingerprint("ES1", 180.0).digest()
        with use_policy(policy):
            assert schedule_fingerprint("ES1", 180.0).digest() == baseline

    def test_scenarios_differ(self):
        assert (
            schedule_fingerprint("S1", 240.0).digest()
            != schedule_fingerprint("S4", 240.0).digest()
        )

    def test_cross_process_deterministic(self):
        # The digest a spawned interpreter computes matches this one's --
        # the property that keeps clusters identical on spawn/subprocess/
        # queue workers.
        here = schedule_fingerprint("S4", 240.0).digest()
        script = (
            "from repro.share.fingerprint import schedule_fingerprint\n"
            "print(schedule_fingerprint('S4', 240.0).digest())"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == here


class TestFeatureFingerprint:
    def test_quantized_and_stable(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(600, 8))
        times = np.linspace(0.0, 180.0, 600, endpoint=False)
        a = feature_fingerprint(features, times)
        b = feature_fingerprint(features + 1e-9, times)
        assert a.source == "features"
        assert a == b  # sub-grid jitter quantizes away

    def test_empty_stream_and_empty_segment(self):
        # Zero-length stream: no tokens at all.
        assert feature_fingerprint(np.empty((0, 4)), np.empty(0)).tokens == ()
        # A gap inside a stream hashes to the fixed sentinel token.
        times = np.array([10.0, 130.0])  # nothing lands in [60, 120)
        fp = feature_fingerprint(np.ones((2, 4)), times)
        assert fp.tokens[1] == "empty"


class TestDistance:
    def test_identity_and_range(self):
        a = schedule_fingerprint("S4", 240.0)
        b = schedule_fingerprint("S1", 240.0)
        assert fingerprint_distance(a, a) == 0.0
        assert 0.0 <= fingerprint_distance(a, b) <= 1.0

    def test_source_mismatch_is_max(self):
        a = schedule_fingerprint("S4", 240.0)
        b = feature_fingerprint(
            np.zeros((10, 2)), np.linspace(0, 240, 10, endpoint=False)
        )
        assert fingerprint_distance(a, b) == 1.0
