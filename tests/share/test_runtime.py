"""ClusterRuntime behavior: labels, warm starts, deltas, state codec."""

import numpy as np
import pytest

from repro.errors import SnapshotError
from repro.exec.shard import SystemCell
from repro.share.cluster import cluster_cells
from repro.share.policy import CLUSTER
from repro.share.runtime import (
    ClusterRuntime,
    active_cluster_runtime,
    decode_cluster_state,
    encode_cluster_state,
)


def cell(seed, scenario="S4", duration=240.0):
    return SystemCell(
        "DaCapo-Spatiotemporal", "resnet18_wrn50", scenario, seed, duration
    )


def state(value, shapes=((4, 3), (3,))):
    weights = [np.full(shapes[0], float(value))]
    biases = [np.full(shapes[1], float(value))]
    return (weights, biases)


class _FakeMLP:
    def __init__(self, value):
        self._state = state(value)

    def snapshot(self):
        return (
            [w.copy() for w in self._state[0]],
            [b.copy() for b in self._state[1]],
        )

    def restore(self, snap):
        self._state = snap


class TestActivation:
    def test_default_is_none(self):
        assert active_cluster_runtime() is None

    def test_activate_installs_and_resets(self):
        runtime = ClusterRuntime(CLUSTER, "c0")
        with runtime.activate(cell(0)):
            assert active_cluster_runtime() is runtime
            assert runtime._member == "S4/s0/240"
            assert runtime._tokens  # schedule tokens resolved
        assert active_cluster_runtime() is None
        assert runtime._member is None


class TestLabelSharing:
    def test_first_writer_publishes_neighbor_reads(self):
        runtime = ClusterRuntime(CLUSTER, "c0")
        x = np.ones((16, 4))
        y = np.arange(16)
        with runtime.activate(cell(0)):
            assert runtime.shared_labels(0.0) is None
            runtime.publish_labels(0.0, x, y)
            # The publisher itself never re-adopts its own labels.
            assert runtime.shared_labels(0.0) is None
        with runtime.activate(cell(1)):
            shared = runtime.shared_labels(0.0)
            assert shared is not None
            np.testing.assert_array_equal(shared[0], x)
            np.testing.assert_array_equal(shared[1], y)
        assert runtime.counters["labels_computed"] == 16
        assert runtime.counters["labels_shared"] == 16

    def test_different_slots_do_not_collide(self):
        runtime = ClusterRuntime(CLUSTER, "c0")
        with runtime.activate(cell(0)):
            runtime.publish_labels(0.0, np.ones((4, 2)), np.zeros(4))
        with runtime.activate(cell(1)):
            assert runtime.shared_labels(60.0) is None


class TestWarmStartAndDeltas:
    def test_first_member_founds_base_later_warm_start(self):
        runtime = ClusterRuntime(CLUSTER, "c0")
        founder = _FakeMLP(0.0)
        with runtime.activate(cell(0)):
            runtime.adopt_student("mlp", founder)
            assert runtime.base is not None
            runtime.publish_retrain(0.0, state(2.0), samples=100)
        neighbor = _FakeMLP(5.0)
        with runtime.activate(cell(1)):
            runtime.adopt_student("mlp", neighbor)
        # Neighbor starts from the freshest published weights, not init.
        np.testing.assert_allclose(neighbor.snapshot()[0][0], 2.0)
        assert runtime.counters["warm_starts"] == 1

    def test_retrain_reuse_is_base_plus_delta(self):
        runtime = ClusterRuntime(CLUSTER, "c0")
        with runtime.activate(cell(0)):
            runtime.adopt_student("mlp", _FakeMLP(1.0))
            runtime.publish_retrain(0.0, state(3.0), samples=10)
        with runtime.activate(cell(1)):
            reused = runtime.reusable_retrain(0.0, samples=10)
        assert reused is not None
        np.testing.assert_allclose(reused[0][0], 3.0)  # base 1 + delta 2
        assert runtime.counters["retrains_reused"] == 1
        assert runtime.counters["retrain_samples_reused"] == 10

    def test_own_delta_never_reused(self):
        runtime = ClusterRuntime(CLUSTER, "c0")
        with runtime.activate(cell(0)):
            runtime.adopt_student("mlp", _FakeMLP(1.0))
            runtime.publish_retrain(0.0, state(3.0), samples=10)
            assert runtime.reusable_retrain(0.0, samples=10) is None

    def test_divergent_deltas_blend(self):
        runtime = ClusterRuntime(CLUSTER, "c0")
        with runtime.activate(cell(0)):
            runtime.adopt_student("mlp", _FakeMLP(0.0))
            runtime.publish_retrain(0.0, state(2.0), samples=10)
        with runtime.activate(cell(1)):
            runtime.publish_retrain(0.0, state(4.0), samples=10)
        assert runtime.counters["merges"] == 1
        # alpha=0.5: blended delta (2 + 4) / 2 = 3 over base 0.
        entry = next(iter(runtime.deltas.values()))
        np.testing.assert_allclose(entry.delta[0][0], 3.0)


class TestStateCodec:
    def build(self):
        runtime = ClusterRuntime(CLUSTER, "c0")
        with runtime.activate(cell(0)):
            runtime.adopt_student("mlp", _FakeMLP(1.0))
            runtime.publish_retrain(0.0, state(3.0), samples=10)
        return runtime

    def test_roundtrip(self):
        runtime = self.build()
        payload = encode_cluster_state(runtime)
        decoded = decode_cluster_state(payload, CLUSTER)
        assert decoded.cluster_id == "c0"
        assert decoded.base_model == runtime.base_model
        np.testing.assert_allclose(decoded.base[0][0], runtime.base[0][0])
        np.testing.assert_allclose(
            decoded.freshest[0][0], runtime.freshest[0][0]
        )
        assert set(decoded.deltas) == set(runtime.deltas)
        assert decoded.counters == runtime.counters
        # Labels are deliberately not journaled.
        assert not decoded.labels

    def test_roundtrip_survives_json(self):
        import json

        payload = json.loads(json.dumps(encode_cluster_state(self.build())))
        decoded = decode_cluster_state(payload, CLUSTER)
        np.testing.assert_allclose(decoded.base[0][0], 1.0)

    def test_version_mismatch_is_typed(self):
        payload = encode_cluster_state(self.build())
        payload["version"] = 999
        with pytest.raises(SnapshotError):
            decode_cluster_state(payload, CLUSTER)

    def test_malformed_is_typed(self):
        with pytest.raises(SnapshotError):
            decode_cluster_state({"version": 1}, CLUSTER)


class TestClusterCellsHelper:
    def test_counters_start_zero(self):
        cells = [cell(s) for s in range(2)]
        assignment = cluster_cells(cells, CLUSTER)
        runtime = ClusterRuntime(CLUSTER, assignment.cluster_of(cells[0]))
        assert all(v == 0 for v in runtime.counters.values())
