"""Clustering stability: permutations, work-profile walls, the tracker."""

import itertools

from repro.exec.shard import Fig2Cell, SystemCell
from repro.share.cluster import ClusterTracker, cluster_cells
from repro.share.policy import CLUSTER


def correlated_fleet():
    return [
        SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", s, 240.0)
        for s in range(4)
    ]


class TestBatchClustering:
    def test_correlated_cameras_form_one_cluster(self):
        cells = correlated_fleet()
        assignment = cluster_cells(cells, CLUSTER)
        assert len(assignment.clusters) == 1
        grouped = assignment.cluster_cells_of(cells)
        assert len(grouped["c0"]) == 4

    def test_permutation_stable(self):
        # Satellite contract: camera order in the spec must not change
        # cluster membership or ids.
        cells = correlated_fleet() + [
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0,
                       240.0),
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "ES1", 0,
                       180.0),
        ]
        baseline = cluster_cells(cells, CLUSTER)
        base_map = {
            (c.scenario, c.seed): baseline.cluster_of(c) for c in cells
        }
        for perm in itertools.islice(itertools.permutations(cells), 0, 40, 7):
            shuffled = cluster_cells(list(perm), CLUSTER)
            assert {
                (c.scenario, c.seed): shuffled.cluster_of(c) for c in perm
            } == base_map

    def test_work_profiles_never_merge(self):
        # Identical scenario/duration but different systems (or pairs, or
        # cell kinds) must not share weights -- they run different models.
        cells = [
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0,
                       240.0),
            SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S4", 0, 240.0),
            SystemCell("DaCapo-Spatiotemporal", "vit32_wrn50", "S4", 0,
                       240.0),
            Fig2Cell("student", "RTX3090", "resnet18_wrn50", "S4", 0, 240.0),
        ]
        assignment = cluster_cells(cells, CLUSTER)
        ids = [assignment.cluster_of(cell) for cell in cells]
        assert len(set(ids)) == 4

    def test_distinct_scenarios_split(self):
        cells = [
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0,
                       240.0),
            SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "ES2", 0,
                       240.0),
        ]
        assignment = cluster_cells(cells, CLUSTER)
        assert (
            assignment.cluster_of(cells[0])
            != assignment.cluster_of(cells[1])
        )


class TestTracker:
    def test_matches_batch_for_same_members(self):
        cells = correlated_fleet()
        tracker = ClusterTracker(CLUSTER)
        ids = [tracker.assign(cell) for cell in cells]
        assert ids == ["c0"] * 4
        batch = cluster_cells(cells, CLUSTER)
        assert batch.cluster_of(cells[0]) == "c0"

    def test_admission_order_ids(self):
        a = SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0,
                       240.0)
        b = SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "ES2", 0,
                       240.0)
        tracker = ClusterTracker(CLUSTER)
        assert tracker.assign(a) == "c0"
        assert tracker.assign(b) == "c1"
        assert tracker.assign(a) == "c0"  # idempotent re-admit
        # A replay in the same order reproduces identical ids.
        replay = ClusterTracker(CLUSTER)
        assert [replay.assign(a), replay.assign(b)] == ["c0", "c1"]

    def test_profile_wall_holds_incrementally(self):
        tracker = ClusterTracker(CLUSTER)
        a = SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0,
                       240.0)
        b = SystemCell("DaCapo-Ekya", "resnet18_wrn50", "S4", 0, 240.0)
        assert tracker.assign(a) != tracker.assign(b)
