"""Tests for the SharingPolicy resolution surface (mirrors NumericPolicy)."""

import pytest

from repro.errors import ConfigurationError
from repro.share.policy import (
    CLUSTER,
    OFF,
    SHARING_ENV,
    SHARING_POLICIES,
    active_sharing,
    resolve_sharing,
    use_sharing,
)


class TestResolution:
    def test_default_is_off(self):
        assert resolve_sharing(None) is OFF
        assert not OFF.enabled

    def test_instances_pass_through(self):
        assert resolve_sharing(OFF) is OFF
        assert resolve_sharing(CLUSTER) is CLUSTER

    @pytest.mark.parametrize(
        "alias", ["", "off", "0", "no", "none", "false", "independent"]
    )
    def test_off_aliases(self, alias):
        assert resolve_sharing(alias) is OFF

    @pytest.mark.parametrize(
        "alias", ["cluster", "on", "1", "yes", "true", "shared", "CLUSTER"]
    )
    def test_cluster_aliases(self, alias):
        assert resolve_sharing(alias) is CLUSTER

    def test_unknown_is_typed(self):
        with pytest.raises(ConfigurationError, match="unknown sharing"):
            resolve_sharing("bogus")

    def test_registry_names(self):
        assert set(SHARING_POLICIES) == {"off", "cluster"}
        assert SHARING_POLICIES["cluster"].enabled


class TestAmbient:
    def test_env_respected(self, monkeypatch):
        monkeypatch.setenv(SHARING_ENV, "cluster")
        assert active_sharing() is CLUSTER
        monkeypatch.setenv(SHARING_ENV, "off")
        assert active_sharing() is OFF

    def test_bad_env_is_typed(self, monkeypatch):
        monkeypatch.setenv(SHARING_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            active_sharing()

    def test_use_sharing_overrides_env(self, monkeypatch):
        monkeypatch.setenv(SHARING_ENV, "off")
        with use_sharing(CLUSTER):
            assert active_sharing() is CLUSTER
            with use_sharing("off"):
                assert active_sharing() is OFF
            assert active_sharing() is CLUSTER
        assert active_sharing() is OFF

    def test_namespaces_differ(self):
        # Digest namespaces keep shared and independent artifacts apart.
        assert OFF.digest_namespace != CLUSTER.digest_namespace
