"""Tests for GEMM compute timing and backward-GEMM derivation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import SubAccelerator, backward_gemms, gemm_compute_cycles
from repro.errors import PartitionError
from repro.models import Gemm
from repro.mx import MX4, MX6, MX9

SUB = SubAccelerator("T-SA", rows=16, cols=16)


class TestGemmComputeCycles:
    def test_single_tile_single_block(self):
        # 16x16x16 GEMM: one tile, one block dot, plus wavefront skew.
        g = Gemm(16, 16, 16)
        assert gemm_compute_cycles(g, MX4, SUB) == 1 + 30
        assert gemm_compute_cycles(g, MX6, SUB) == 4 + 30
        assert gemm_compute_cycles(g, MX9, SUB) == 16 + 30

    def test_tiling_scales_cycles(self):
        small = gemm_compute_cycles(Gemm(16, 64, 16), MX6, SUB)
        wide = gemm_compute_cycles(Gemm(16, 64, 64), MX6, SUB)
        tall = gemm_compute_cycles(Gemm(64, 64, 16), MX6, SUB)
        assert wide == 4 * small
        assert tall == 4 * small

    def test_partial_tiles_round_up(self):
        exact = gemm_compute_cycles(Gemm(16, 16, 16), MX6, SUB)
        assert gemm_compute_cycles(Gemm(17, 16, 16), MX6, SUB) == 2 * exact

    def test_fewer_rows_cost_more(self):
        g = Gemm(256, 256, 256)
        narrow = SubAccelerator("B-SA", rows=4, cols=16)
        assert gemm_compute_cycles(g, MX6, narrow) > gemm_compute_cycles(
            g, MX6, SUB
        )

    def test_empty_sub_accelerator_rejected(self):
        empty = SubAccelerator("T-SA", rows=0)
        with pytest.raises(PartitionError):
            gemm_compute_cycles(Gemm(16, 16, 16), MX6, empty)


class TestBackwardGemms:
    def test_shapes(self):
        dx, dw = backward_gemms(Gemm(8, 32, 4))
        assert dx == Gemm(8, 4, 32)
        assert dw == Gemm(32, 8, 4)

    def test_total_training_macs_is_3x(self):
        g = Gemm(8, 32, 4)
        total = g.macs + sum(b.macs for b in backward_gemms(g))
        assert total == 3 * g.macs


@given(
    m=st.integers(1, 512),
    k=st.integers(1, 512),
    n=st.integers(1, 512),
    rows=st.integers(1, 16),
)
@settings(max_examples=100, deadline=None)
def test_cycles_positive_and_precision_monotone(m, k, n, rows):
    g = Gemm(m, k, n)
    sub = SubAccelerator("T-SA", rows=rows, cols=16)
    c4 = gemm_compute_cycles(g, MX4, sub)
    c6 = gemm_compute_cycles(g, MX6, sub)
    c9 = gemm_compute_cycles(g, MX9, sub)
    assert 0 < c4 <= c6 <= c9


@given(
    m=st.integers(1, 256),
    k=st.integers(1, 256),
    n=st.integers(1, 256),
    rows=st.integers(1, 15),
)
@settings(max_examples=100, deadline=None)
def test_more_rows_never_slower(m, k, n, rows):
    g = Gemm(m, k, n)
    fewer = SubAccelerator("X", rows=rows, cols=16)
    more = SubAccelerator("X", rows=rows + 1, cols=16)
    # Wavefront skew grows with rows, but tiling shrinks; for GEMMs at least
    # one tile tall the net effect can be a wash -- assert no pathological
    # blowup (more rows never cost more than the skew delta per tile).
    c_few = gemm_compute_cycles(g, MX6, fewer)
    c_more = gemm_compute_cycles(g, MX6, more)
    tiles_more = -(-m // more.rows) * -(-n // more.cols)
    assert c_more <= c_few + tiles_more
