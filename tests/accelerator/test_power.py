"""Tests for the power/area/energy model (Table IV)."""

import pytest

from repro.accelerator import (
    DACAPO_AREA_MM2,
    DACAPO_POWER_W,
    PowerModel,
    component_table,
)
from repro.errors import ConfigurationError


class TestTableIV:
    def test_totals_match_paper(self):
        model = PowerModel()
        assert model.total_power_w == pytest.approx(DACAPO_POWER_W)
        assert model.total_area_mm2 == pytest.approx(DACAPO_AREA_MM2)

    def test_paper_constants(self):
        assert DACAPO_POWER_W == 0.236
        assert DACAPO_AREA_MM2 == 2.501

    def test_dpe_array_dominates(self):
        table = {c.name: c for c in component_table()}
        assert table["dpe_array"].power_w == max(
            c.power_w for c in component_table()
        )

    def test_static_plus_dynamic_is_total(self):
        model = PowerModel()
        assert model.static_power_w + model.dynamic_power_w == pytest.approx(
            model.total_power_w
        )


class TestEnergy:
    def test_idle_burns_only_static(self):
        model = PowerModel()
        assert model.energy_j(10.0, 0.0) == pytest.approx(
            10.0 * model.static_power_w
        )

    def test_fully_busy_burns_total(self):
        model = PowerModel()
        assert model.energy_j(10.0, 10.0) == pytest.approx(
            10.0 * model.total_power_w
        )

    def test_energy_monotone_in_busy_time(self):
        model = PowerModel()
        assert model.energy_j(10.0, 5.0) < model.energy_j(10.0, 9.0)

    def test_busy_cannot_exceed_wall(self):
        with pytest.raises(ConfigurationError):
            PowerModel().energy_j(1.0, 2.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel().energy_j(-1.0, 0.0)

    def test_average_power_bounds(self):
        model = PowerModel()
        assert model.average_power_w(0.0) == pytest.approx(model.static_power_w)
        assert model.average_power_w(1.0) == pytest.approx(model.total_power_w)
        with pytest.raises(ConfigurationError):
            model.average_power_w(1.5)

    def test_empty_components_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(components=())
