"""Equivalence tests: memoized accelerator timings == uncached timings."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    SystolicArray,
    backward_gemms,
    clear_timing_caches,
)
from repro.accelerator.simulator import Timing
from repro.mx import FORMATS, MX6, MX9
from repro.models.zoo import get_model


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_timing_caches()
    yield
    clear_timing_caches()


def uncached_forward_timing(sim, model, fmt, sub, batch=1):
    """Replicates forward_timing without any memoization."""
    total = Timing(0.0, 0.0, 0.0)
    for gemm in model.gemms(batch):
        clear_timing_caches()
        total = total + sim.gemm_timing(gemm, fmt, sub)
    clear_timing_caches()
    overhead = total.cycles * sim.vector_overhead
    return Timing(
        total.cycles + overhead, total.compute_cycles, total.memory_cycles
    )


def uncached_training_timing(sim, model, fmt, sub, batch):
    """Replicates training_timing without any memoization."""
    total = Timing(0.0, 0.0, 0.0)
    for gemm in model.gemms(batch):
        clear_timing_caches()
        total = total + sim.gemm_timing(gemm, fmt, sub, for_training=True)
        for grad in backward_gemms(gemm):
            clear_timing_caches()
            total = total + sim.gemm_timing(grad, fmt, sub, for_training=True)
    clear_timing_caches()
    overhead = total.cycles * sim.vector_overhead
    return Timing(
        total.cycles + overhead, total.compute_cycles, total.memory_cycles
    )


class TestTimingCacheEquivalence:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_forward_timing_cached_equals_uncached(self, fmt):
        sim = AcceleratorSimulator()
        sub = SystolicArray().full()
        model = get_model("resnet18")
        reference = uncached_forward_timing(sim, model, fmt, sub, batch=1)
        first = sim.forward_timing(model, fmt, sub, 1)
        second = sim.forward_timing(model, fmt, sub, 1)  # cache hit
        assert first == reference
        assert second == reference

    def test_training_timing_cached_equals_uncached(self):
        sim = AcceleratorSimulator()
        sub = SystolicArray().full()
        model = get_model("resnet18")
        reference = uncached_training_timing(sim, model, MX9, sub, 16)
        assert sim.training_timing(model, MX9, sub, 16) == reference
        assert sim.training_timing(model, MX9, sub, 16) == reference

    def test_cache_hit_returns_equal_timing_after_clear(self):
        sim = AcceleratorSimulator()
        tsa, bsa = SystolicArray().split(6)
        model = get_model("vit_b_32")
        warm = sim.forward_timing(model, MX6, tsa, 8)
        clear_timing_caches()
        cold = sim.forward_timing(model, MX6, tsa, 8)
        assert warm == cold
        assert bsa.rows != tsa.rows  # distinct sub-accelerators...
        assert sim.forward_timing(model, MX6, bsa, 8) != warm  # ...miss

    def test_distinct_simulators_do_not_share_entries(self):
        sub = SystolicArray().full()
        model = get_model("resnet18")
        gemm = model.gemms(1)[0]
        out_stat = AcceleratorSimulator(dataflow="output_stationary")
        w_stat = AcceleratorSimulator(dataflow="weight_stationary")
        a = out_stat.gemm_timing(gemm, MX6, sub)
        b = w_stat.gemm_timing(gemm, MX6, sub)
        assert a.compute_cycles != b.compute_cycles

    def test_training_and_inference_entries_are_separate(self):
        sim = AcceleratorSimulator()
        sub = SystolicArray().full()
        model = get_model("resnet18")
        fwd = sim.forward_timing(model, MX9, sub, 16)
        train = sim.training_timing(model, MX9, sub, 16)
        assert train.cycles > fwd.cycles


class TestKernelRateMemo:
    def test_system_rates_match_direct_platform_queries(self):
        from repro.core import build_system

        system = build_system("DaCapo-Spatiotemporal", "resnet18_wrn50")
        expected_training = system.platform.training_rate(
            system.pair.student_graph(), system.training_share
        )
        expected_validation = system.platform.labeling_rate(
            system.pair.student_graph(), system.training_share
        )
        # First call computes, second is the memo; both match the platform.
        for _ in range(2):
            assert system.training_sps() == expected_training
            assert system.validation_sps() == expected_validation
            raw_labeling = system.platform.labeling_rate(
                system.pair.teacher_graph(), system.training_share
            )
            expected_labeling = (
                min(raw_labeling, system.config.frame_rate)
                if raw_labeling > 0
                else 0.0
            )
            assert system.labeling_sps() == expected_labeling

    def test_estimator_rates_cached_per_share(self):
        from repro.core import PerformanceEstimator
        from repro.models.zoo import get_pair
        from repro.platform import jetson_orin_high

        est = PerformanceEstimator(jetson_orin_high(), get_pair("resnet18_wrn50"))
        first = est.rates(0.5)
        assert est.rates(0.5) is first  # memoized object
        fresh = PerformanceEstimator(
            jetson_orin_high(), get_pair("resnet18_wrn50")
        )
        assert fresh.rates(0.5) == first  # and equal to an uncached compute
        assert est.rates(1.0) != first
