"""Tests for array scaling and chiplet packaging."""

import pytest

from repro.accelerator import (
    AcceleratorSimulator,
    ChipletPackage,
    PowerModel,
    scaled_array,
    scaled_power_model,
)
from repro.errors import ConfigurationError
from repro.models import get_model
from repro.mx import MX6


class TestScaledArray:
    def test_32x32_configuration(self):
        array = scaled_array(32, 32)
        assert array.num_dpes == 1024

    def test_larger_array_is_faster(self):
        sim = AcceleratorSimulator()
        model = get_model("wide_resnet50_2")
        small = scaled_array(16, 16).full()
        large = scaled_array(32, 32).full()
        assert sim.inference_throughput(
            model, MX6, large
        ) > sim.inference_throughput(model, MX6, small)


class TestScaledPower:
    def test_base_configuration_matches_table4(self):
        scaled = scaled_power_model(16, 16)
        base = PowerModel()
        assert scaled.total_power_w == pytest.approx(base.total_power_w)
        assert scaled.total_area_mm2 == pytest.approx(base.total_area_mm2)

    def test_dpe_array_power_scales_quadratically(self):
        big = scaled_power_model(32, 32)
        table = {c.name: c for c in big.components}
        assert table["dpe_array"].power_w == pytest.approx(4 * 0.150)
        # Shared memory interface does not scale.
        assert table["memory_interface"].power_w == pytest.approx(0.014)

    def test_row_scaled_components(self):
        big = scaled_power_model(32, 16)
        table = {c.name: c for c in big.components}
        assert table["sram_96kb"].power_w == pytest.approx(2 * 0.040)

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            scaled_power_model(0, 16)


class TestChipletPackage:
    def test_single_chip_identity(self):
        package = ChipletPackage(chips=1)
        assert package.throughput_scale() == 1.0
        assert package.power_w() == pytest.approx(0.236)

    def test_multi_chip_scaling(self):
        package = ChipletPackage(chips=4)
        assert package.throughput_scale() == pytest.approx(3.6)
        assert package.power_w() == pytest.approx(4 * 0.236)
        assert package.area_mm2() == pytest.approx(4 * 2.501)

    def test_coordination_overhead_bounds(self):
        assert ChipletPackage(4).throughput_scale() < 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChipletPackage(chips=0)
        with pytest.raises(ConfigurationError):
            ChipletPackage(chips=2, coordination_efficiency=0)
