"""Tests for the precision-conversion unit model."""

import pytest

from repro.accelerator import PrecisionConversionUnit
from repro.errors import ConfigurationError
from repro.mx import MX6, MXFormat


class TestPCU:
    def test_one_block_per_cycle(self):
        pcu = PrecisionConversionUnit()
        assert pcu.cycles(16, MX6) == 1
        assert pcu.cycles(17, MX6) == 2
        assert pcu.cycles(256, MX6) == 16

    def test_training_doubles_conversion(self):
        # Column-major copy for transposed training operands (section V-C).
        pcu = PrecisionConversionUnit()
        assert pcu.cycles(256, MX6, for_training=True) == 32

    def test_zero_values(self):
        assert PrecisionConversionUnit().cycles(0, MX6) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            PrecisionConversionUnit().cycles(-1, MX6)

    def test_block_size_mismatch_rejected(self):
        odd = MXFormat("odd", mantissa_bits=4, block_size=32, subblock_size=2)
        with pytest.raises(ConfigurationError):
            PrecisionConversionUnit().cycles(32, odd)

    def test_invalid_throughput(self):
        with pytest.raises(ConfigurationError):
            PrecisionConversionUnit(values_per_cycle=0)
