"""Tests for the Dot-Product Engine model."""

import numpy as np
import pytest

from repro.accelerator import DPE_LANES, DotProductEngine, cycles_per_dot
from repro.errors import ConfigurationError
from repro.mx import MX4, MX6, MX9, MXFormat, quantize


class TestCyclesPerDot:
    def test_paper_serialization(self):
        # Section V-B: MX4 one cycle, MX6 four, MX9 sixteen.
        assert cycles_per_dot(MX4) == 1
        assert cycles_per_dot(MX6) == 4
        assert cycles_per_dot(MX9) == 16

    def test_rejects_foreign_block_size(self):
        odd = MXFormat("odd", mantissa_bits=4, block_size=32, subblock_size=2)
        with pytest.raises(ConfigurationError):
            cycles_per_dot(odd)

    def test_cycles_monotone_in_precision(self):
        assert cycles_per_dot(MX4) < cycles_per_dot(MX6) < cycles_per_dot(MX9)


class TestDotProductEngine:
    def test_lanes_default(self):
        assert DotProductEngine().lanes == DPE_LANES == 16

    def test_functional_dot_matches_mx_reference(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=16), rng.normal(size=16)
        dpe = DotProductEngine()
        expected = float(np.dot(quantize(a, MX6), quantize(b, MX9)))
        assert dpe.dot(a, b, MX6, MX9) == expected

    def test_functional_dot_default_format(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=16), rng.normal(size=16)
        dpe = DotProductEngine()
        assert dpe.dot(a, b, MX9) == dpe.dot(a, b, MX9, MX9)

    def test_wrong_operand_shape(self):
        dpe = DotProductEngine()
        with pytest.raises(ConfigurationError):
            dpe.dot(np.zeros(8), np.zeros(8), MX6)

    def test_dots_for_depth(self):
        dpe = DotProductEngine()
        assert dpe.dots_for_depth(16) == 1
        assert dpe.dots_for_depth(17) == 2
        assert dpe.dots_for_depth(1) == 1

    def test_dots_for_depth_invalid(self):
        with pytest.raises(ConfigurationError):
            DotProductEngine().dots_for_depth(0)
