"""Tests for the programmable memory-interface layout programs."""

import pytest

from repro.accelerator import Partition, SystolicArray
from repro.accelerator.layout import (
    BufferSite,
    Majorness,
    program_layout,
)
from repro.errors import PartitionError
from repro.mx import MX6, MX9

PARTITION = Partition(SystolicArray(), rows_tsa=13)


class TestProgramLayout:
    def test_inference_targets_bottom_edge(self):
        program = program_layout(PARTITION, "inference", MX6)
        assert program.sub_accelerator == "B-SA"
        assert program.placement("weight").site is BufferSite.BOTTOM
        assert program.placement("output").site is BufferSite.BOTTOM

    def test_labeling_targets_top_edge(self):
        program = program_layout(PARTITION, "labeling", MX6)
        assert program.sub_accelerator == "T-SA"
        assert program.placement("weight").site is BufferSite.TOP

    def test_inputs_stream_from_west(self):
        for kernel in ("inference", "labeling", "retraining"):
            fmt = MX9 if kernel == "retraining" else MX6
            program = program_layout(PARTITION, kernel, fmt)
            assert program.placement("input").site is BufferSite.WEST

    def test_retraining_adds_transposed_copies(self):
        program = program_layout(PARTITION, "retraining", MX9)
        assert (
            program.placement("input_transposed").majorness
            is Majorness.COLUMN_MAJOR
        )
        assert (
            program.placement("output_transposed").majorness
            is Majorness.COLUMN_MAJOR
        )
        assert len(program.placements) == 5

    def test_forward_kernels_are_row_major_only(self):
        program = program_layout(PARTITION, "inference", MX6)
        assert all(
            p.majorness is Majorness.ROW_MAJOR for p in program.placements
        )
        assert len(program.placements) == 3

    def test_format_recorded(self):
        program = program_layout(PARTITION, "retraining", MX9)
        assert program.placement("weight").fmt is MX9

    def test_unknown_kernel(self):
        with pytest.raises(PartitionError, match="unknown kernel"):
            program_layout(PARTITION, "profiling", MX6)

    def test_empty_sub_accelerator_rejected(self):
        all_tsa = Partition(SystolicArray(), rows_tsa=16)
        with pytest.raises(PartitionError, match="no rows"):
            program_layout(all_tsa, "inference", MX6)

    def test_missing_operand_lookup(self):
        program = program_layout(PARTITION, "inference", MX6)
        with pytest.raises(PartitionError, match="no operand"):
            program.placement("bias")
