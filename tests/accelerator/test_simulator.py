"""Tests for the accelerator simulator facade."""

import pytest

from repro.accelerator import AcceleratorSimulator, SystolicArray
from repro.accelerator.simulator import Timing
from repro.errors import PartitionError
from repro.models import get_model
from repro.mx import MX4, MX6, MX9

SIM = AcceleratorSimulator()
ARRAY = SystolicArray()
FULL = ARRAY.full()


class TestTiming:
    def test_utilization(self):
        assert Timing(100, 50, 10).utilization == 0.5
        assert Timing(0, 0, 0).utilization == 0.0

    def test_utilization_capped(self):
        assert Timing(10, 20, 5).utilization == 1.0

    def test_addition(self):
        total = Timing(1, 2, 3) + Timing(4, 5, 6)
        assert (total.cycles, total.compute_cycles, total.memory_cycles) == (
            5, 7, 9,
        )


class TestForward:
    def test_student_meets_frame_rate_on_full_array(self):
        model = get_model("resnet18")
        fps = SIM.inference_throughput(model, MX6, FULL)
        assert fps > 30  # must keep up with the 30 FPS stream

    def test_teacher_slower_than_student(self):
        student = get_model("resnet18")
        teacher = get_model("wide_resnet50_2")
        assert SIM.forward_latency_s(teacher, MX6, FULL) > SIM.forward_latency_s(
            student, MX6, FULL
        )

    def test_lower_precision_is_faster(self):
        model = get_model("resnet18")
        t4 = SIM.forward_latency_s(model, MX4, FULL)
        t6 = SIM.forward_latency_s(model, MX6, FULL)
        t9 = SIM.forward_latency_s(model, MX9, FULL)
        assert t4 < t6 < t9

    def test_fewer_rows_slower(self):
        model = get_model("resnet18")
        _, bsa = ARRAY.split(12)
        assert SIM.forward_latency_s(model, MX6, bsa) > SIM.forward_latency_s(
            model, MX6, FULL
        )

    def test_batching_amortizes(self):
        model = get_model("resnet18")
        single = SIM.inference_throughput(model, MX6, FULL, batch=1)
        batched = SIM.inference_throughput(model, MX6, FULL, batch=8)
        assert batched > single

    def test_empty_partition_rejected(self):
        tsa, _ = ARRAY.split(0)
        with pytest.raises(PartitionError):
            SIM.forward_timing(get_model("resnet18"), MX6, tsa)


class TestTraining:
    def test_training_costs_about_3x_forward(self):
        model = get_model("resnet18")
        fwd = SIM.forward_timing(model, MX9, FULL, batch=16)
        train = SIM.training_timing(model, MX9, FULL, batch=16)
        ratio = train.compute_cycles / fwd.compute_cycles
        assert 2.5 < ratio < 3.5

    def test_training_throughput_positive(self):
        tsa, _ = ARRAY.split(12)
        tput = SIM.training_throughput(get_model("resnet18"), MX9, tsa, batch=16)
        assert tput > 0

    def test_empty_partition_rejected(self):
        tsa, _ = ARRAY.split(0)
        with pytest.raises(PartitionError):
            SIM.training_timing(get_model("resnet18"), MX9, tsa, batch=16)


class TestConcurrency:
    def test_split_halves_roughly_halve_throughput(self):
        model = get_model("resnet18")
        tsa, bsa = ARRAY.split(8)
        full_fps = SIM.inference_throughput(model, MX6, FULL)
        half_fps = SIM.inference_throughput(model, MX6, bsa)
        assert 0.3 * full_fps < half_fps < 0.8 * full_fps
