"""Tests for the weight-stationary dataflow option."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import AcceleratorSimulator, SubAccelerator, gemm_compute_cycles
from repro.errors import ConfigurationError
from repro.models import Gemm, get_model
from repro.mx import MX6

SUB = SubAccelerator("T-SA", rows=16, cols=16)


class TestWeightStationary:
    def test_unknown_dataflow_rejected(self):
        with pytest.raises(ConfigurationError):
            gemm_compute_cycles(Gemm(16, 16, 16), MX6, SUB, "diagonal")

    def test_single_tile_costs(self):
        g = Gemm(16, 256, 16)  # K = 16 lanes x 16 rows: one WS weight tile
        ws = gemm_compute_cycles(g, MX6, SUB, "weight_stationary")
        assert ws == 16 * 4 + 30  # M rows x cycles_per_dot + skew

    def test_ws_wins_for_tall_reuse_with_full_depth(self):
        # Many activation rows against a weight panel that fills the array
        # (K = 16 lanes x 16 rows): WS keeps it resident while every row
        # streams once; OS pays per-tile skew for each of the 256 row tiles.
        g = Gemm(4096, 256, 16)
        ws = gemm_compute_cycles(g, MX6, SUB, "weight_stationary")
        os_ = gemm_compute_cycles(g, MX6, SUB, "output_stationary")
        assert ws < os_

    def test_os_wins_for_deep_contraction(self):
        # Few outputs, deep K: OS contracts in place; WS re-streams M per
        # K-tile.
        g = Gemm(16, 8192, 16)
        ws = gemm_compute_cycles(g, MX6, SUB, "weight_stationary")
        os_ = gemm_compute_cycles(g, MX6, SUB, "output_stationary")
        assert os_ <= ws

    def test_simulator_dataflow_plumbed_through(self):
        model = get_model("resnet18")
        os_sim = AcceleratorSimulator(dataflow="output_stationary")
        ws_sim = AcceleratorSimulator(dataflow="weight_stationary")
        t_os = os_sim.forward_timing(model, MX6, SUB)
        t_ws = ws_sim.forward_timing(model, MX6, SUB)
        assert t_os.cycles != t_ws.cycles


@given(
    m=st.integers(1, 300),
    k=st.integers(1, 300),
    n=st.integers(1, 300),
)
@settings(max_examples=100, deadline=None)
def test_both_dataflows_positive_and_cover_all_macs(m, k, n):
    g = Gemm(m, k, n)
    for dataflow in ("output_stationary", "weight_stationary"):
        cycles = gemm_compute_cycles(g, MX6, SUB, dataflow)
        assert cycles > 0
        # A 16x16 array of 16-lane DPEs retires at most 4096 MACs/cycle at
        # 4 cycles per MX6 dot; the model must never be optimistic beyond
        # the hardware's peak.
        peak_macs_per_cycle = 16 * 16 * 16 / 4
        assert cycles >= g.macs / peak_macs_per_cycle
