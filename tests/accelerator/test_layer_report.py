"""Tests for the per-layer timing report."""

import pytest

from repro.accelerator import AcceleratorSimulator, SystolicArray
from repro.errors import PartitionError
from repro.models import get_model
from repro.mx import MX6

SIM = AcceleratorSimulator()
FULL = SystolicArray().full()


class TestLayerReport:
    def test_covers_compute_layers_only(self):
        model = get_model("resnet18")
        report = SIM.layer_report(model, MX6, FULL)
        names = {row["layer"] for row in report}
        assert "conv1" in names
        assert "fc" in names
        assert "bn1" not in names  # vector-unit layer, no GEMMs
        assert "maxpool" not in names

    def test_cycles_sum_close_to_forward_timing(self):
        model = get_model("resnet18")
        report = SIM.layer_report(model, MX6, FULL)
        total = sum(row["cycles"] for row in report)
        forward = SIM.forward_timing(model, MX6, FULL).cycles
        # forward_timing adds the vector-unit overhead on top.
        assert forward == pytest.approx(total * (1 + SIM.vector_overhead))

    def test_bound_classification(self):
        model = get_model("resnet18")
        for row in SIM.layer_report(model, MX6, FULL):
            assert row["bound"] in ("compute", "memory")
            assert 0.0 <= row["utilization"] <= 1.0

    def test_early_convs_are_compute_bound(self):
        # Large spatial GEMMs with small weight tensors saturate the array.
        model = get_model("resnet18")
        report = {r["layer"]: r for r in SIM.layer_report(model, MX6, FULL)}
        assert report["layer1.0.0.conv"]["bound"] == "compute"

    def test_fc_matvec_pays_underutilization(self):
        # At batch 1 a 512x1000 matvec activates a single array row, so the
        # "compute" time is inflated by idle rows -- the batch-1
        # underutilization the paper's labeling/training batching avoids.
        model = get_model("resnet18")
        single = {r["layer"]: r for r in SIM.layer_report(model, MX6, FULL)}
        batched = {
            r["layer"]: r for r in SIM.layer_report(model, MX6, FULL, batch=16)
        }
        # 16x the work costs the same array time: the rows were idle before.
        assert batched["fc"]["cycles"] == pytest.approx(
            single["fc"]["cycles"]
        )

    def test_empty_partition_rejected(self):
        tsa, _ = SystolicArray().split(0)
        with pytest.raises(PartitionError):
            SIM.layer_report(get_model("resnet18"), MX6, tsa)

    def test_macs_scale_with_batch(self):
        model = get_model("resnet18")
        single = SIM.layer_report(model, MX6, FULL, batch=1)
        batched = SIM.layer_report(model, MX6, FULL, batch=4)
        assert batched[0]["macs"] == 4 * single[0]["macs"]
