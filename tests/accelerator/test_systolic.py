"""Tests for array geometry and partitioning."""

import pytest

from repro.accelerator import Partition, SubAccelerator, SystolicArray
from repro.errors import PartitionError


class TestSystolicArray:
    def test_prototype_defaults(self):
        arr = SystolicArray()
        assert (arr.rows, arr.cols) == (16, 16)
        assert arr.frequency_hz == 500e6
        assert arr.num_dpes == 256

    def test_full_view(self):
        full = SystolicArray().full()
        assert full.rows == 16
        assert full.name == "FULL"

    def test_split_partitions_all_rows(self):
        tsa, bsa = SystolicArray().split(10)
        assert tsa.rows == 10
        assert bsa.rows == 6
        assert (tsa.name, bsa.name) == ("T-SA", "B-SA")

    def test_split_bounds(self):
        arr = SystolicArray()
        with pytest.raises(PartitionError):
            arr.split(-1)
        with pytest.raises(PartitionError):
            arr.split(17)

    def test_split_extremes_allowed(self):
        tsa, bsa = SystolicArray().split(0)
        assert tsa.is_empty
        assert bsa.rows == 16

    def test_invalid_geometry(self):
        with pytest.raises(PartitionError):
            SystolicArray(rows=0)
        with pytest.raises(PartitionError):
            SystolicArray(frequency_hz=0)

    def test_scaled_configuration(self):
        # Section VII-A: DaCapo could scale to 32x32.
        big = SystolicArray(rows=32, cols=32)
        assert big.num_dpes == 1024


class TestSubAccelerator:
    def test_seconds(self):
        sub = SubAccelerator("T-SA", rows=8, frequency_hz=500e6)
        assert sub.seconds(500e6) == 1.0

    def test_num_dpes(self):
        assert SubAccelerator("B-SA", rows=4, cols=16).num_dpes == 64

    def test_invalid(self):
        with pytest.raises(PartitionError):
            SubAccelerator("X", rows=-1)


class TestPartition:
    def test_views_are_consistent(self):
        part = Partition(SystolicArray(), rows_tsa=12)
        assert part.tsa.rows == 12
        assert part.bsa.rows == 4
        assert part.rows_bsa == 4

    def test_describe(self):
        text = Partition(SystolicArray(), rows_tsa=12).describe()
        assert "12" in text and "4" in text

    def test_bounds(self):
        with pytest.raises(PartitionError):
            Partition(SystolicArray(), rows_tsa=20)

    def test_frequency_propagates(self):
        arr = SystolicArray(frequency_hz=1e9)
        part = Partition(arr, rows_tsa=8)
        assert part.tsa.frequency_hz == 1e9
        assert part.bsa.frequency_hz == 1e9
