"""Tests for the memory interface and MX byte accounting."""

import pytest

from repro.accelerator import MemoryInterface
from repro.accelerator.memory import gemm_traffic_bytes
from repro.errors import ConfigurationError
from repro.models import Gemm
from repro.mx import MX4, MX6, MX9


class TestTrafficBytes:
    def test_components(self):
        g = Gemm(16, 16, 16)
        expected = MX6.bytes_for(256) + MX6.bytes_for(256) + 256 * 4
        assert gemm_traffic_bytes(g, MX6) == expected

    def test_lower_precision_less_traffic(self):
        g = Gemm(64, 256, 64)
        assert gemm_traffic_bytes(g, MX4) < gemm_traffic_bytes(g, MX6)
        assert gemm_traffic_bytes(g, MX6) < gemm_traffic_bytes(g, MX9)


class TestMemoryInterface:
    def test_defaults_match_table4(self):
        mem = MemoryInterface()
        assert mem.dram_bandwidth == 204.8e9
        assert mem.sram_bytes == 96 * 1024

    def test_transfer_seconds(self):
        mem = MemoryInterface(dram_bandwidth=1e9)
        assert mem.transfer_seconds(1e9) == 1.0

    def test_transfer_cycles(self):
        mem = MemoryInterface(dram_bandwidth=1e9)
        assert mem.transfer_cycles(1e9, frequency_hz=500e6) == 500e6

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryInterface().transfer_seconds(-1)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            MemoryInterface(dram_bandwidth=0)
        with pytest.raises(ConfigurationError):
            MemoryInterface(sram_bytes=0)


class TestRefetch:
    def test_small_weights_no_refetch(self):
        mem = MemoryInterface()
        assert mem.refetch_factor(Gemm(64, 64, 64), MX9) == 1.0

    def test_large_weights_refetch(self):
        mem = MemoryInterface()
        # 4096 x 4096 MX9 weights = ~18.9 MB >> 48 KB budget.
        factor = mem.refetch_factor(Gemm(16, 4096, 4096), MX9)
        assert factor > 1.0

    def test_refetch_increases_memory_cycles(self):
        mem = MemoryInterface()
        big = Gemm(16, 4096, 4096)
        small = Gemm(16, 64, 64)
        assert mem.gemm_memory_cycles(big, MX9, 500e6) > mem.gemm_memory_cycles(
            small, MX9, 500e6
        )

    def test_higher_bandwidth_fewer_cycles(self):
        slow = MemoryInterface(dram_bandwidth=50e9)
        fast = MemoryInterface(dram_bandwidth=200e9)
        g = Gemm(256, 256, 256)
        assert fast.gemm_memory_cycles(g, MX6, 500e6) < slow.gemm_memory_cycles(
            g, MX6, 500e6
        )
