"""The numeric policy: one explicit dtype decision threaded everywhere.

Historically every float-producing layer hardcoded ``np.float64``.  That is
the safe default -- all reference digests were frozen under it -- but it is
also double the memory traffic and half the SIMD throughput the experiments
could have on bandwidth-starved hosts (the same scarcity DaCapo itself is
built around).  This module makes the dtype an explicit *policy* object:

- :data:`FLOAT64` -- the default.  Bit-identical to the historical
  behavior; the frozen reference digests in ``tests/reference/`` are
  re-verified against it.
- :data:`FLOAT32` -- the opt-in fast path (``REPRO_DTYPE=float32``).
  Streams, proxy weights, and MX tensors are generated and carried in
  float32; it has its *own* frozen reference digests and accuracy-delta
  bounds against float64.

Resolution order for the active policy:

1. an ambient override installed with :func:`use_policy` (a
   :class:`contextvars.ContextVar`, so it nests and is async/thread-safe);
2. the ``REPRO_DTYPE`` environment variable (re-read per call so tests can
   repoint it with a plain ``monkeypatch.setenv``; parsing is one dict
   lookup);
3. :data:`FLOAT64`.

Layering contract: the *data-producing* layers (streams, proxy models,
buffers, caches) consult :func:`active_policy` when they allocate, and from
then on arrays are self-describing -- the MX kernels and the accelerator
functional models are policy-free and simply preserve whatever float dtype
reaches them (:func:`ensure_float`).  Reductions that would drift past test
tolerances in float32 (loss means, SQNR statistics, windowed-accuracy
accumulation, geometric means) accumulate in float64 regardless of policy;
each such site is documented where it lives.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DTYPE_ENV",
    "FLOAT32",
    "FLOAT64",
    "POLICIES",
    "NumericPolicy",
    "active_policy",
    "ensure_float",
    "resolve_policy",
    "use_policy",
]

#: Environment variable selecting the process-wide policy.
DTYPE_ENV = "REPRO_DTYPE"

#: The float dtypes arrays are allowed to flow through the numeric layers
#: in; anything else is cast (never silently upcast between these two).
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


@dataclass(frozen=True)
class NumericPolicy:
    """Every dtype-dependent constant, resolved once and threaded through.

    Attributes:
        name: Canonical policy name (``"float64"`` / ``"float32"``) -- the
            value ``REPRO_DTYPE`` takes and the token cache keys embed.
        dtype: The numpy dtype streams, weights, and activations carry.
        eps: Machine epsilon of :attr:`dtype`.
        atol: Absolute tolerance for closeness assertions at this precision.
        rtol: Relative tolerance for closeness assertions at this precision.
        loss_floor: Clip floor under probabilities before ``log`` (exactly
            representable in both dtypes, so it is policy-invariant).
        digest_namespace: Short token namespacing content-addressed cache
            keys and reference-digest files, so float32 and float64
            artifacts can never collide.
    """

    name: str
    dtype: np.dtype
    eps: float
    atol: float
    rtol: float
    loss_floor: float
    digest_namespace: str

    def asarray(self, values) -> np.ndarray:
        """``values`` as an array of the policy dtype (no copy if already)."""
        return np.asarray(values, dtype=self.dtype)

    def empty(self, shape) -> np.ndarray:
        """An uninitialized array of the policy dtype."""
        return np.empty(shape, dtype=self.dtype)

    def zeros(self, shape) -> np.ndarray:
        """A zero array of the policy dtype."""
        return np.zeros(shape, dtype=self.dtype)

    def __str__(self) -> str:
        return self.name


FLOAT64 = NumericPolicy(
    name="float64",
    dtype=np.dtype(np.float64),
    eps=float(np.finfo(np.float64).eps),
    atol=1e-9,
    rtol=1e-9,
    loss_floor=1e-12,
    digest_namespace="f64",
)

FLOAT32 = NumericPolicy(
    name="float32",
    dtype=np.dtype(np.float32),
    eps=float(np.finfo(np.float32).eps),
    atol=1e-4,
    rtol=1e-4,
    loss_floor=1e-12,
    digest_namespace="f32",
)

#: Supported policies by canonical name.
POLICIES: dict[str, NumericPolicy] = {
    FLOAT64.name: FLOAT64,
    FLOAT32.name: FLOAT32,
}

#: Accepted spellings for each policy (environment values, CLI args).
_ALIASES: dict[str, NumericPolicy] = {
    "": FLOAT64,
    "float64": FLOAT64,
    "fp64": FLOAT64,
    "f64": FLOAT64,
    "64": FLOAT64,
    "double": FLOAT64,
    "float32": FLOAT32,
    "fp32": FLOAT32,
    "f32": FLOAT32,
    "32": FLOAT32,
    "single": FLOAT32,
}

_override: ContextVar[NumericPolicy | None] = ContextVar(
    "repro_numeric_policy", default=None
)


def resolve_policy(spec: "str | NumericPolicy | None") -> NumericPolicy:
    """A policy from a name/alias, an existing policy, or None (default)."""
    if spec is None:
        return FLOAT64
    if isinstance(spec, NumericPolicy):
        return spec
    try:
        return _ALIASES[spec.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ConfigurationError(
            f"unknown numeric policy {spec!r} "
            f"(set {DTYPE_ENV} to one of: {known})"
        )


def active_policy() -> NumericPolicy:
    """The policy in effect: override > ``$REPRO_DTYPE`` > float64."""
    override = _override.get()
    if override is not None:
        return override
    return resolve_policy(os.environ.get(DTYPE_ENV))


@contextmanager
def use_policy(spec: "str | NumericPolicy"):
    """Force a policy for the dynamic extent of the ``with`` block.

    Nests (the previous override is restored on exit) and takes precedence
    over the environment.  Benchmarks use this for the float64/float32 A/B;
    tests use it to parametrize over both policies in one process.
    """
    policy = resolve_policy(spec)
    token = _override.set(policy)
    try:
        yield policy
    finally:
        _override.reset(token)


def ensure_float(values) -> np.ndarray:
    """``values`` as a float32/float64 array, preserving which one it is.

    The dtype-polymorphic layers (MX kernels, DPE functional model) accept
    either policy dtype without silently upcasting float32 work to float64;
    non-float inputs (ints, bools, lists) are cast to float64, matching the
    historical behavior for those call sites.
    """
    arr = np.asarray(values)
    if arr.dtype in _FLOAT_DTYPES:
        return arr
    return arr.astype(np.float64)
