"""Figure 8: label distributions across 60-second scenario segments."""

from __future__ import annotations

import numpy as np

from repro.data import ALL_CLASSES, build_scenario
from repro.experiments.reporting import ExperimentResult, format_table

__all__ = ["run_fig8"]


def run_fig8(
    scenario: str = "S5",
    duration_s: float = 600.0,
    segment_s: float = 60.0,
    seed: int = 0,
) -> ExperimentResult:
    """Measure per-segment class histograms of a scenario stream."""
    stream = build_scenario(scenario, duration_s=duration_s)
    frames = stream.materialize(seed=seed)
    rows = []
    num_segments = int(duration_s // segment_s)
    for index in range(num_segments):
        window = frames.window(index * segment_s, (index + 1) * segment_s)
        counts = np.bincount(window.labels, minlength=len(ALL_CLASSES))
        shares = counts / max(1, counts.sum())
        segment = stream.segment_at(index * segment_s + 1.0)
        row = {
            "segment": index,
            "domain": segment.domain.describe(),
        }
        for cls, share in zip(ALL_CLASSES, shares):
            row[cls] = float(share)
        rows.append(row)
    report = (
        f"Figure 8: label distribution per {segment_s:.0f}-second segment "
        f"of {scenario}\n" + format_table(rows, floatfmt=".2f")
    )
    return ExperimentResult(
        name="fig8",
        title="Per-segment label distributions (Figure 8)",
        rows=rows,
        report=report,
        extras={"scenario": scenario},
    )
