"""Figure 12: extreme data-drift scenarios ES1 and ES2.

DaCapo (spatiotemporal) vs EOMU vs Ekya with the (ResNet18, WRN50) pair on
the scenarios where all four attributes drift simultaneously.  The
reproduced shape: Ekya degrades most, EOMU's frequent retraining tolerates
drift better, DaCapo stays on top.
"""

from __future__ import annotations

import numpy as np

from repro.core import SystemCell, run_cells
from repro.experiments.reporting import (
    ExperimentResult,
    format_series,
    format_table,
)

__all__ = ["run_fig12"]

FIG12_SYSTEMS = {
    "Ekya": "OrinHigh-Ekya",
    "EOMU": "OrinHigh-EOMU",
    "DaCapo": "DaCapo-Spatiotemporal",
}

FIG12_SCENARIOS = ("ES1", "ES2")


def run_fig12(
    duration_s: float = 1200.0,
    pair: str = "resnet18_wrn50",
    window_s: float = 15.0,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 12: averaged accuracy + time series on ES1/ES2.

    The (scenario, system) cells run on the sharded grid runner;
    ``jobs > 1`` fans them across worker processes with results identical
    to the serial run at any worker count.
    """
    cells = [
        SystemCell(system_name, pair, scenario, seed, duration_s)
        for scenario in FIG12_SCENARIOS
        for system_name in FIG12_SYSTEMS.values()
    ]
    results = iter(run_cells(cells, jobs=jobs))

    rows = []
    extras: dict = {"series": {}}
    report_parts = [
        f"Figure 12: extreme scenarios, pair {pair} ({duration_s:.0f} s)\n"
    ]
    for scenario in FIG12_SCENARIOS:
        series: dict[str, np.ndarray] = {}
        times = None
        for label in FIG12_SYSTEMS:
            result = next(results)
            starts, accs = result.accuracy_series(window_s)
            times = starts
            series[label] = accs
            rows.append(
                {
                    "scenario": scenario,
                    "system": label,
                    "accuracy": result.average_accuracy(),
                    "retrainings": len(result.retraining_completions()),
                }
            )
        extras["series"][scenario] = {"times": times, **series}
        report_parts.append(f"--- {scenario}\n")
        report_parts.append(format_series(times, series))
    report_parts.append("Averaged accuracies:\n" + format_table(rows))
    return ExperimentResult(
        name="fig12",
        title="Extreme data-drift scenarios (Figure 12)",
        rows=rows,
        report="".join(report_parts),
        extras=extras,
    )
