"""Table III: specifications of the evaluated DNN models."""

from __future__ import annotations

from repro.core import parallel_map
from repro.experiments.reporting import ExperimentResult, format_table
from repro.models import MODEL_PAIRS, get_model

__all__ = ["run_table3", "PAPER_TABLE3"]

#: The paper's published numbers: (params in millions, GFLOPs).
PAPER_TABLE3: dict[str, tuple[float, float]] = {
    "resnet18": (11.7, 1.82),
    "resnet34": (21.8, 3.67),
    "vit_b_32": (88.2, 4.37),
    "wide_resnet50_2": (68.9, 11.43),
    "vit_b_16": (86.6, 16.87),
    "wide_resnet101_2": (126.9, 22.80),
}


def _model_row(name: str) -> dict:
    """One Table III row (module-level so it maps across processes)."""
    roles = {}
    for pair in MODEL_PAIRS.values():
        roles[pair.student] = "Student"
        roles[pair.teacher] = "Teacher"
    paper_params, paper_gflops = PAPER_TABLE3[name]
    model = get_model(name)
    return {
        "type": roles[name],
        "name": name,
        "params_M": model.params / 1e6,
        "paper_params_M": paper_params,
        "gflops": model.gflops,
        "paper_gflops": paper_gflops,
    }


def run_table3(jobs: int = 1) -> ExperimentResult:
    """Reproduce Table III from the architectural specs, with paper deltas.

    ``jobs > 1`` genuinely shards the per-model rows over worker processes
    via :func:`~repro.core.parallel.parallel_map` (results identical at
    any worker count).  The rows are spec lookups, so this is about CLI
    uniformity *and* exercising the same fan-out path as the grids.
    """
    rows = parallel_map(_model_row, list(PAPER_TABLE3), jobs=jobs)
    report = (
        "Table III: evaluated DNN models (measured vs paper)\n"
        + format_table(rows, floatfmt=".2f")
    )
    return ExperimentResult(
        name="table3",
        title="DNN model specifications (Table III)",
        rows=rows,
        report=report,
    )
