"""Figure 9: end-to-end accuracy of six systems x six scenarios x 3 pairs.

The paper's headline evaluation.  The reproduced shape: DaCapo-
Spatiotemporal posts the best geometric mean for every model pair;
OrinLow-Ekya trails; DaCapo-Ekya suffers on the ViT pair (precision
sensitivity); the harder scenarios (S3-S6, geometry drifts) separate the
systems much more than S1/S2 (label-distribution drifts only).
"""

from __future__ import annotations

import numpy as np

from repro.core import SystemCell, run_cells
from repro.experiments.reporting import ExperimentResult, format_table
from repro.learn import geometric_mean

__all__ = ["run_fig9", "FIG9_SYSTEMS", "FIG9_SCENARIOS", "FIG9_PAIRS"]

FIG9_SYSTEMS = (
    "OrinLow-Ekya",
    "OrinHigh-Ekya",
    "OrinHigh-EOMU",
    "DaCapo-Ekya",
    "DaCapo-Spatial",
    "DaCapo-Spatiotemporal",
)
FIG9_SCENARIOS = ("S1", "S2", "S3", "S4", "S5", "S6")
FIG9_PAIRS = ("resnet18_wrn50", "vit_b32_b16", "resnet34_wrn101")


def run_fig9(
    duration_s: float = 1200.0,
    pairs: tuple[str, ...] = FIG9_PAIRS,
    systems: tuple[str, ...] = FIG9_SYSTEMS,
    scenarios: tuple[str, ...] = FIG9_SCENARIOS,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 9's accuracy matrix with per-pair gmeans.

    Every (pair, system, scenario) cell is independent, so ``jobs > 1``
    fans them across worker processes; results are identical to the serial
    run at any worker count (each cell seeds its own RNGs).
    """
    cells = [
        SystemCell(system_name, pair, scenario, seed, duration_s)
        for pair in pairs
        for system_name in systems
        for scenario in scenarios
    ]
    results = run_cells(cells, jobs=jobs)

    rows = []
    accuracy: dict[tuple[str, str], list[float]] = {}
    index = 0
    for pair in pairs:
        for system_name in systems:
            accs = []
            for _ in scenarios:
                accs.append(results[index].average_accuracy())
                index += 1
            accuracy[(pair, system_name)] = accs
            row = {"pair": pair, "system": system_name}
            row.update(
                {s: a for s, a in zip(scenarios, accs)}
            )
            row["gmean"] = geometric_mean(np.array(accs))
            rows.append(row)
    report = (
        f"Figure 9: end-to-end averaged accuracy ({duration_s:.0f} s streams)\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="fig9",
        title="End-to-end accuracy (Figure 9)",
        rows=rows,
        report=report,
        extras={"accuracy": accuracy, "duration_s": duration_s},
    )
