"""Table I: hyperparameters of the spatiotemporal resource allocator."""

from __future__ import annotations

from repro.core.config import DaCapoConfig, hyperparameter_table
from repro.experiments.reporting import ExperimentResult, format_table

__all__ = ["run_table1"]


def run_table1(config: DaCapoConfig | None = None) -> ExperimentResult:
    """Reproduce Table I with the configured hyperparameter values."""
    rows = hyperparameter_table(config)
    report = (
        "Table I: spatiotemporal resource allocation hyperparameters\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="table1",
        title="Hyperparameters (Table I)",
        rows=rows,
        report=report,
    )
