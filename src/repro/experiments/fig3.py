"""Figure 3: MAC-operation breakdown of the three kernels.

The paper characterizes a 120-second continuous-learning run while sweeping
the labeling sampling rate (3/5/10 %) and retraining epochs (3/5/10),
reporting the per-kernel share of total FLOPs and the resulting accuracy.
The reproduced shape: retraining's share surges (26 % -> 82 % in the paper)
as sampling rate and epochs grow, inference/labeling shares shrink, and
total FLOPs rise.

Known delta (see EXPERIMENTS.md): the paper's accuracy annotation rises
with the invested compute because its DNNs are data- and compute-hungry;
our proxies converge within ~2 epochs, so past that knee longer
retraining/labeling phases delay adaptation and the measured accuracy
trend flattens or inverts.  The FLOPs-breakdown shape -- the figure's main
content -- is unaffected.
"""

from __future__ import annotations

from repro.core import DaCapoConfig, build_system, run_on_scenario
from repro.experiments.reporting import ExperimentResult, format_table
from repro.models import get_pair

__all__ = ["run_fig3"]

#: (sampling rate, epochs) sweep of the paper's Figure 3.
FIG3_SWEEP = ((0.03, 3), (0.05, 5), (0.10, 10))


def _flops_breakdown(
    pair_name: str,
    sampling_rate: float,
    epochs: int,
    duration_s: float,
    frame_rate: float = 30.0,
) -> dict[str, float]:
    """Analytical per-kernel FLOPs for a run (1 MAC = 1 FLOP, as Table III)."""
    pair = get_pair(pair_name)
    student = pair.student_graph()
    teacher = pair.teacher_graph()
    frames = duration_s * frame_rate
    sampled = frames * sampling_rate
    inference = frames * student.macs(1)
    labeling = sampled * teacher.macs(1)
    retraining = epochs * sampled * student.training_macs(1)
    return {
        "inference": inference,
        "labeling": labeling,
        "retraining": retraining,
    }


def run_fig3(
    duration_s: float = 120.0,
    pair_name: str = "resnet18_wrn50",
    scenario: str = "S5",
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 3's breakdown and accuracy sweep."""
    rows = []
    for rate, epochs in FIG3_SWEEP:
        breakdown = _flops_breakdown(pair_name, rate, epochs, duration_s)
        total = sum(breakdown.values())

        # Accuracy from an actual run with matching labeling volume/epochs.
        num_label = max(16, int(rate * duration_s * 30.0))
        config = DaCapoConfig(
            num_label=min(num_label, 1024),
            epochs=epochs,
            num_train=min(max(64, num_label), 512),
        )
        system = build_system("DaCapo-Spatiotemporal", pair_name,
                              config=config, seed=seed)
        result = run_on_scenario(system, scenario, seed=seed,
                                 duration_s=duration_s * 5)
        rows.append(
            {
                "sampling_rate": f"{rate:.0%}",
                "epochs": epochs,
                "inference_share": breakdown["inference"] / total,
                "retraining_share": breakdown["retraining"] / total,
                "labeling_share": breakdown["labeling"] / total,
                "total_tflops": total / 1e12,
                "accuracy": result.average_accuracy(),
            }
        )
    report = (
        "Figure 3: per-kernel FLOPs breakdown and accuracy vs "
        "(sampling rate, epochs)\n"
        f"(pair {pair_name}, breakdown over {duration_s:.0f} s)\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="fig3",
        title="Kernel workload characterization (Figure 3)",
        rows=rows,
        report=report,
        extras={"pair": pair_name},
    )
