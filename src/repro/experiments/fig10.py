"""Figure 10: accuracy over time on S1 at 15-second granularity.

Two model pairs, four systems, plus the zoomed drift cases: the windows
where DaCapo-Spatiotemporal gains the most over DaCapo-Spatial (drift
recovery) and where it loses the most (the paper's acknowledged suboptimal
cases).
"""

from __future__ import annotations

import numpy as np

from repro.core import SystemCell, run_cells
from repro.experiments.reporting import (
    ExperimentResult,
    format_series,
    format_table,
)

__all__ = ["run_fig10"]

FIG10_SYSTEMS = (
    "OrinHigh-Ekya",
    "OrinHigh-EOMU",
    "DaCapo-Spatial",
    "DaCapo-Spatiotemporal",
)
FIG10_PAIRS = ("resnet18_wrn50", "resnet34_wrn101")


def run_fig10(
    duration_s: float = 1200.0,
    scenario: str = "S5",
    window_s: float = 15.0,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 10's time series and drift-case zooms.

    The paper plots S1 of its dataset; our S1 carries only label drifts, so
    the default is S5 (geometry drifts), which is where the time-series
    structure the figure highlights -- dips and recoveries -- lives.
    ``jobs > 1`` fans the (pair, system) cells across worker processes with
    results identical to the serial run.
    """
    cells = [
        SystemCell(system_name, pair, scenario, seed, duration_s)
        for pair in FIG10_PAIRS
        for system_name in FIG10_SYSTEMS
    ]
    results = iter(run_cells(cells, jobs=jobs))

    rows = []
    extras: dict = {"series": {}, "scenario": scenario}
    report_parts = [
        f"Figure 10: accuracy over time on {scenario} "
        f"({window_s:.0f}-s windows)\n"
    ]
    for pair in FIG10_PAIRS:
        series: dict[str, np.ndarray] = {}
        times = None
        markers = {}
        for system_name in FIG10_SYSTEMS:
            result = next(results)
            starts, accs = result.accuracy_series(window_s)
            times = starts
            series[system_name] = accs
            markers[system_name] = result.retraining_completions()
            rows.append(
                {
                    "pair": pair,
                    "system": system_name,
                    "mean_acc": float(np.mean(accs)),
                    "min_acc": float(np.min(accs)),
                    "retrainings": len(markers[system_name]),
                }
            )
        extras["series"][pair] = {"times": times, **series}
        extras.setdefault("markers", {})[pair] = markers

        st = series["DaCapo-Spatiotemporal"]
        sp = series["DaCapo-Spatial"]
        gain = st - sp
        best = int(np.argmax(gain))
        worst = int(np.argmin(gain))
        report_parts.append(f"--- pair {pair}\n")
        report_parts.append(format_series(times, series))
        report_parts.append(
            f"drift case 1 (largest ST gain): window t={times[best]:.0f}s, "
            f"ST-Spatial = +{gain[best]:.3f}\n"
            f"drift case 2 (largest ST loss): window t={times[worst]:.0f}s, "
            f"ST-Spatial = {gain[worst]:.3f}\n\n"
        )
    report_parts.append("Summary:\n" + format_table(rows))
    return ExperimentResult(
        name="fig10",
        title="Accuracy over time (Figure 10)",
        rows=rows,
        report="".join(report_parts),
        extras=extras,
    )
