"""Experiment definitions: one module per table/figure of the paper.

Every experiment exposes a ``run_*`` function returning an
:class:`~repro.experiments.reporting.ExperimentResult` (tabular rows plus a
formatted text report).  The benchmark harness under ``benchmarks/`` wraps
these functions with pytest-benchmark and writes the reports to
``benchmarks/results/``.

Durations are parameterizable: the paper's scenarios run 20 minutes; most
benchmarks default to shorter streams via the ``REPRO_BENCH_DURATION``
environment variable so a full benchmark sweep stays tractable, and
EXPERIMENTS.md records the full-length numbers.
"""

from repro.experiments.reporting import ExperimentResult, format_table
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.headline import run_headline
from repro.experiments.ablations import (
    run_ablation_dataflow,
    run_ablation_nldd,
    run_ablation_partitioning,
    run_ablation_precision,
    run_ablation_scaling,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    run_experiment,
    supports_backend,
    supports_jobs,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "run_ablation_dataflow",
    "run_ablation_nldd",
    "run_ablation_partitioning",
    "run_ablation_precision",
    "run_ablation_scaling",
    "run_experiment",
    "run_fig2",
    "run_fig3",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_headline",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "supports_backend",
    "supports_jobs",
]
