"""Figure 2: the GPU dilemma -- student/teacher/Ekya on RTX 3090 vs Orin.

The paper's preliminary study: frozen student and teacher models plus an
idealized Ekya, run on a datacenter GPU (RTX 3090) and an autonomous-system
GPU (Jetson Orin).  The reproduced shape: on the RTX 3090 nothing drops
frames and Ekya approaches (or exceeds) the teacher; on Orin the teacher
and Ekya lose accuracy, driven by frame drops and starved retraining.
"""

from __future__ import annotations

from repro.core import Fig2Cell, run_cells
from repro.experiments.reporting import ExperimentResult, format_table

__all__ = ["run_fig2"]

#: The paper evaluates these two pairs in Figure 2.
FIG2_PAIRS = ("resnet18_wrn50", "resnet34_wrn101")
FIG2_PLATFORMS = ("RTX3090", "OrinHigh")
FIG2_KINDS = ("student", "teacher", "ekya")


def run_fig2(
    duration_s: float = 600.0,
    scenario: str = "S5",
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 2's bars on a drifting scenario.

    ``jobs > 1`` fans the independent (pair, platform, kind) cells across
    worker processes with results identical to the serial run.
    """
    cells = [
        Fig2Cell(kind, platform, pair, scenario, seed, duration_s)
        for pair in FIG2_PAIRS
        for platform in FIG2_PLATFORMS
        for kind in FIG2_KINDS
    ]
    results = run_cells(cells, jobs=jobs)

    rows = [
        {
            "pair": cell.pair,
            "platform": cell.platform,
            "system": cell.kind,
            "accuracy": result.average_accuracy(),
            "frame_drop_rate": result.frame_drop_rate,
        }
        for cell, result in zip(cells, results)
    ]
    report = (
        "Figure 2: accuracy of student/teacher/Ekya on RTX 3090 vs Orin\n"
        f"(scenario {scenario}, {duration_s:.0f} s)\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="fig2",
        title="GPU dilemma (Figure 2)",
        rows=rows,
        report=report,
        extras={"scenario": scenario, "duration_s": duration_s},
    )
