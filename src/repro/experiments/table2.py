"""Table II: workload scenario definitions."""

from __future__ import annotations

from repro.core import parallel_map
from repro.data.scenarios import SCENARIO_NAMES, build_scenario, scenario_table
from repro.experiments.reporting import ExperimentResult, format_table

__all__ = ["run_table2"]


def _scenario_row(args: tuple[dict, float]) -> dict:
    """One Table II row (module-level so it maps across processes)."""
    spec, duration_s = args
    stream = build_scenario(spec["name"], duration_s=duration_s)
    return {
        **spec,
        "segments": len(stream.segments),
        "drifts": len(stream.drift_times()),
        "frames": stream.num_frames,
    }


def run_table2(duration_s: float = 1200.0, jobs: int = 1) -> ExperimentResult:
    """Reproduce Table II, adding measured drift counts per scenario.

    ``jobs > 1`` fans the per-scenario rows over worker processes (results
    identical at any worker count); rows are millisecond-cheap, so this
    mainly serves CLI uniformity with the grid experiments.
    """
    rows = parallel_map(
        _scenario_row,
        [(spec, duration_s) for spec in scenario_table()],
        jobs=jobs,
    )
    report = (
        "Table II: workload scenarios (20-minute streams at 30 FPS)\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="table2",
        title="Workload scenarios (Table II)",
        rows=rows,
        report=report,
        extras={"names": list(SCENARIO_NAMES)},
    )
