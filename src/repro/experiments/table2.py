"""Table II: workload scenario definitions."""

from __future__ import annotations

from repro.data.scenarios import SCENARIO_NAMES, build_scenario, scenario_table
from repro.experiments.reporting import ExperimentResult, format_table

__all__ = ["run_table2"]


def run_table2(duration_s: float = 1200.0) -> ExperimentResult:
    """Reproduce Table II, adding measured drift counts per scenario."""
    rows = []
    for spec in scenario_table():
        stream = build_scenario(spec["name"], duration_s=duration_s)
        rows.append(
            {
                **spec,
                "segments": len(stream.segments),
                "drifts": len(stream.drift_times()),
                "frames": stream.num_frames,
            }
        )
    report = (
        "Table II: workload scenarios (20-minute streams at 30 FPS)\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="table2",
        title="Workload scenarios (Table II)",
        rows=rows,
        report=report,
        extras={"names": list(SCENARIO_NAMES)},
    )
