"""Table IV: evaluated GPU and DaCapo platform specifications."""

from __future__ import annotations

from repro.accelerator import PowerModel, component_table
from repro.accelerator.power import (
    DACAPO_FREQUENCY_HZ,
    DACAPO_TECHNOLOGY_NM,
)
from repro.experiments.reporting import ExperimentResult, format_table
from repro.platform import jetson_orin_high, jetson_orin_low

__all__ = ["run_table4"]


def run_table4() -> ExperimentResult:
    """Reproduce Table IV plus the chip's per-component breakdown."""
    power = PowerModel()
    orin = jetson_orin_high()
    rows = [
        {
            "device": "Jetson Orin",
            "technology_nm": 8,
            "area_mm2": "N/A",
            "frequency_mhz": 1300.0,
            "power_w": f"{jetson_orin_low().power_w:.0f} - {orin.power_w:.0f}",
            "dram": "LPDDR5 204.8 GB/s",
        },
        {
            "device": "DaCapo",
            "technology_nm": DACAPO_TECHNOLOGY_NM,
            "area_mm2": f"{power.total_area_mm2:.3f}",
            "frequency_mhz": DACAPO_FREQUENCY_HZ / 1e6,
            "power_w": f"{power.total_power_w:.3f}",
            "dram": "LPDDR5 204.8 GB/s",
        },
    ]
    components = [
        {
            "component": c.name,
            "power_w": c.power_w,
            "area_mm2": c.area_mm2,
        }
        for c in component_table()
    ]
    ratio_high = orin.power_w / power.total_power_w
    ratio_low = jetson_orin_low().power_w / power.total_power_w
    report = (
        "Table IV: evaluated platforms\n"
        + format_table(rows)
        + "\nDaCapo component breakdown (model):\n"
        + format_table(components)
        + f"\nPower ratios: OrinHigh/DaCapo = {ratio_high:.0f}x (paper: 254x),"
        f" OrinLow/DaCapo = {ratio_low:.0f}x (paper: 127x)\n"
    )
    return ExperimentResult(
        name="table4",
        title="Platform specifications (Table IV)",
        rows=rows,
        report=report,
        extras={
            "components": components,
            "ratio_high": ratio_high,
            "ratio_low": ratio_low,
        },
    )
