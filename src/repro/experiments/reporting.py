"""Plain-text reporting helpers shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ExperimentResult", "format_table", "format_series"]


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one experiment.

    Attributes:
        name: Experiment id (e.g. ``"fig9"``).
        title: Human-readable title.
        rows: Tabular data (list of dicts with homogeneous keys).
        report: Formatted text report, ready to print or save.
        extras: Free-form auxiliary data (time series, parameters).
    """

    name: str
    title: str
    rows: list[dict]
    report: str
    extras: dict = field(default_factory=dict)


def format_table(rows: list[dict], floatfmt: str = ".3f") -> str:
    """Render homogeneous dict rows as an aligned text table."""
    if not rows:
        return "(no rows)\n"
    headers = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != headers:
            raise ConfigurationError("rows must share the same columns")

    def fmt(value: object) -> str:
        # np.floating covers float32 scalars, which are not ``float``
        # subclasses (float64 is) -- without it, float32-policy rows print
        # raw numpy reprs instead of honoring floatfmt.
        if isinstance(value, (float, np.floating)):
            return format(float(value), floatfmt)
        if value is None:
            return "-"
        return str(value)

    body = [[fmt(row[h]) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(line[i]) for line in body))
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for line in body:
        out.append(" | ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(out) + "\n"


def format_series(
    times: np.ndarray,
    series: dict[str, np.ndarray],
    width: int = 60,
    value_fmt: str = ".2f",
) -> str:
    """Render named time series as columns (one row per time point).

    Long series are downsampled to at most ``width`` rows; the first and
    final time points are always included.
    """
    times = np.asarray(times)
    if len(times) == 0:
        return "(empty series)\n"
    # Ceil stride over the *span* of indices: a floor stride emits up to
    # ~2x width rows (e.g. 119 points at width 60 -> stride 1 -> 119 rows).
    # With stride = ceil((n-1)/(width-1)), arange yields at most ``width``
    # picks, and appending the final index can only exceed that if
    # floor((n-1)/stride) = width-1 with a nonzero remainder -- impossible,
    # since stride*(width-1) >= n-1.
    span = len(times) - 1
    if width <= 1:
        picked = np.array([span])
    else:
        stride = max(1, -(-span // (width - 1)))
        picked = np.arange(0, len(times), stride)
        if picked[-1] != span:
            picked = np.append(picked, span)
    names = list(series)
    header = "time_s".ljust(8) + " | " + " | ".join(
        n.rjust(max(8, len(n))) for n in names
    )
    lines = [header, "-" * len(header)]
    for i in picked:
        cells = []
        for n in names:
            cells.append(
                format(float(series[n][i]), value_fmt).rjust(max(8, len(n)))
            )
        lines.append(f"{times[i]:<8.0f} | " + " | ".join(cells))
    return "\n".join(lines) + "\n"
