"""The paper's headline claims (abstract / section I).

- DaCapo achieves 6.5% higher accuracy than Ekya and 5.5% higher than EOMU
  (on their strongest GPU configuration), and
- consumes 254x less power than the GPU baseline.

This experiment derives the same quantities from a Figure 9 run plus the
Table IV power models.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import DACAPO_POWER_W
from repro.experiments.fig9 import FIG9_PAIRS, run_fig9
from repro.experiments.reporting import ExperimentResult, format_table
from repro.learn import geometric_mean
from repro.platform import jetson_orin_high, jetson_orin_low

__all__ = ["run_headline"]


def run_headline(
    duration_s: float = 1200.0,
    pairs: tuple[str, ...] = FIG9_PAIRS,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Measure the headline accuracy gains and power ratios.

    The underlying Figure 9 grid runs on the sharded runner; ``jobs > 1``
    fans its cells across worker processes (identical results at any
    worker count).
    """
    fig9 = run_fig9(duration_s=duration_s, pairs=pairs, seed=seed, jobs=jobs)
    accuracy = fig9.extras["accuracy"]

    def overall(system: str) -> float:
        values = np.concatenate(
            [accuracy[(pair, system)] for pair in pairs]
        )
        return geometric_mean(values)

    dacapo = overall("DaCapo-Spatiotemporal")
    ekya = overall("OrinHigh-Ekya")
    eomu = overall("OrinHigh-EOMU")
    ratio_high = jetson_orin_high().power_w / DACAPO_POWER_W
    ratio_low = jetson_orin_low().power_w / DACAPO_POWER_W

    rows = [
        {
            "claim": "accuracy gain vs OrinHigh-Ekya",
            "paper": "+6.5%",
            "measured": f"+{(dacapo - ekya) * 100:.1f}%",
        },
        {
            "claim": "accuracy gain vs OrinHigh-EOMU",
            "paper": "+5.5%",
            "measured": f"+{(dacapo - eomu) * 100:.1f}%",
        },
        {
            "claim": "power ratio vs OrinHigh",
            "paper": "254x",
            "measured": f"{ratio_high:.0f}x",
        },
        {
            "claim": "power ratio vs OrinLow",
            "paper": "127x",
            "measured": f"{ratio_low:.0f}x",
        },
    ]
    report = (
        "Headline claims (gmean over pairs x scenarios, "
        f"{duration_s:.0f} s streams)\n"
        f"DaCapo-Spatiotemporal {dacapo:.3f} | OrinHigh-Ekya {ekya:.3f} | "
        f"OrinHigh-EOMU {eomu:.3f}\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="headline",
        title="Headline claims",
        rows=rows,
        report=report,
        extras={
            "dacapo": dacapo,
            "ekya": ekya,
            "eomu": eomu,
            "ratio_high": ratio_high,
        },
    )
