"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    run_ablation_dataflow,
    run_ablation_nldd,
    run_ablation_partitioning,
    run_ablation_precision,
    run_ablation_scaling,
)
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.headline import run_headline
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "supports_backend",
    "supports_jobs",
]

#: Every reproducible table/figure, keyed by experiment id.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "headline": run_headline,
    "ablation_partitioning": run_ablation_partitioning,
    "ablation_precision": run_ablation_precision,
    "ablation_nldd": run_ablation_nldd,
    "ablation_dataflow": run_ablation_dataflow,
    "ablation_scaling": run_ablation_scaling,
}


def _get_runner(name: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {known}"
        )


def supports_jobs(name: str) -> bool:
    """Whether an experiment accepts a ``jobs`` worker-count argument."""
    return "jobs" in inspect.signature(_get_runner(name)).parameters


def supports_backend(name: str) -> bool:
    """Whether an experiment routes through the pluggable exec backends.

    An experiment dispatches through :mod:`repro.exec` iff it fans its
    grid out via ``run_cells``/``parallel_map`` -- exactly the runners
    that take a ``jobs`` parameter -- so the ambient ``--backend``
    selection (:func:`repro.exec.use_backend`) reaches it.  Runners
    without a ``jobs`` parameter are single-cell or analytic and always
    execute serially in-process.
    """
    return supports_jobs(name)


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run an experiment by id with optional overrides.

    Unknown override names raise :class:`ConfigurationError` (not a bare
    ``TypeError``) so callers -- the CLI, sweep tooling -- can report them
    as configuration mistakes; the check binds against the runner's
    signature *before* calling so experiment-internal ``TypeError``\\ s are
    never misclassified.
    """
    runner = _get_runner(name)
    try:
        inspect.signature(runner).bind(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"experiment {name!r}: {exc}")
    return runner(**kwargs)
