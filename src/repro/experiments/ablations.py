"""Ablations of the design choices DESIGN.md calls out.

- **Partitioning** (section III-B): time-multiplexed full array
  (DaCapo-Ekya) vs static spatial partition (DaCapo-Spatial) vs partition +
  temporal algorithm (DaCapo-Spatiotemporal).
- **Precision assignment** (section IV, workflow step 2): kernel rates and
  quantization quality for every MX format, motivating MX9-train /
  MX6-infer.
- **Nldd multiplier** (section VI-B): the paper empirically picks
  ``Nldd = 4 * Nl``; sweep the multiplier.

Every ablation fans its independent rows through the shared grid
infrastructure -- :func:`~repro.core.parallel.run_cells` for full system
runs, :func:`~repro.core.parallel.parallel_map` for the cheaper spec
sweeps -- so ``--jobs`` composes uniformly and results are identical at
any worker count.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    DaCapoConfig,
    PerformanceEstimator,
    SystemCell,
    build_system,
    parallel_map,
    run_cells,
    run_on_scenario,
)
from repro.experiments.reporting import ExperimentResult, format_table
from repro.models import get_pair
from repro.mx import FORMATS, sqnr
from repro.platform import build_dacapo_platform

__all__ = [
    "run_ablation_partitioning",
    "run_ablation_precision",
    "run_ablation_nldd",
    "run_ablation_dataflow",
    "run_ablation_scaling",
]


def run_ablation_partitioning(
    duration_s: float = 600.0,
    scenario: str = "S5",
    pair: str = "resnet18_wrn50",
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Isolate the benefit of spatial partitioning and the temporal policy."""
    systems = ("DaCapo-Ekya", "DaCapo-Spatial", "DaCapo-Spatiotemporal")
    cells = [
        SystemCell(system_name, pair, scenario, seed, duration_s)
        for system_name in systems
    ]
    results = run_cells(cells, jobs=jobs)
    rows = []
    for system_name, result in zip(systems, results):
        retrain, label = result.retrain_label_ratio()
        rows.append(
            {
                "system": system_name,
                "accuracy": result.average_accuracy(),
                "retrain_share": retrain,
                "label_share": label,
                "retrainings": len(result.retraining_completions()),
            }
        )
    report = (
        f"Ablation: time-sharing vs spatial vs spatiotemporal "
        f"({pair}, {scenario}, {duration_s:.0f} s)\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="ablation_partitioning",
        title="Partitioning ablation",
        rows=rows,
        report=report,
    )


def _precision_row(args: tuple[str, str, int]) -> dict:
    """One precision-ablation row (module-level so it maps across processes).

    Each row does only its own format's work -- one configured platform,
    one set of rate queries, one SQNR measurement -- so the serial path
    costs the same as the pre-parallel loop and workers never duplicate
    the other formats' graph walks.
    """
    from dataclasses import replace

    fmt_name, pair_name, seed = args
    fmt = next(f for f in FORMATS if f.name == fmt_name)
    pair = get_pair(pair_name)
    platform = replace(
        build_dacapo_platform(rows_tsa=13),
        inference_fmt=fmt,
        labeling_fmt=fmt,
        training_fmt=fmt,
    )
    rates = PerformanceEstimator(platform, pair).rates()

    rng = np.random.default_rng(seed)
    tensor = rng.normal(size=4096)

    return {
        "format": fmt.name,
        "bits_per_value": fmt.bits_per_value,
        "inference_fps": rates.inference_fps,
        "labeling_sps": rates.labeling_sps,
        "training_sps": rates.training_sps,
        "sqnr_db": sqnr(tensor, fmt),
    }


def run_ablation_precision(
    pair_name: str = "resnet18_wrn50", seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    """Kernel rates and numeric quality per MX precision (workflow step 2)."""
    rows = parallel_map(
        _precision_row,
        [(fmt.name, pair_name, seed) for fmt in FORMATS],
        jobs=jobs,
    )
    report = (
        f"Ablation: MX precision tradeoff ({pair_name})\n"
        + format_table(rows, floatfmt=".2f")
        + "\nPaper operating point: MX9 for retraining, MX6 for "
        "inference/labeling; MX4 degrades accuracy considerably.\n"
    )
    return ExperimentResult(
        name="ablation_precision",
        title="Precision ablation",
        rows=rows,
        report=report,
    )


def _dataflow_row(args: tuple[str, str, int]) -> dict:
    """One dataflow-comparison row (module-level for process mapping)."""
    from repro.accelerator import AcceleratorSimulator, SystolicArray
    from repro.mx import MX6, MX9

    dataflow, pair_name, rows_tsa = args
    pair = get_pair(pair_name)
    student = pair.student_graph()
    teacher = pair.teacher_graph()
    tsa, bsa = SystolicArray().split(rows_tsa)
    sim = AcceleratorSimulator(dataflow=dataflow)
    return {
        "dataflow": dataflow,
        "inference_fps": sim.inference_throughput(student, MX6, bsa, batch=1),
        "labeling_sps": sim.inference_throughput(teacher, MX6, tsa, batch=8),
        "training_sps": sim.training_throughput(student, MX9, tsa, batch=16),
    }


def run_ablation_dataflow(
    pair_name: str = "resnet18_wrn50", rows_tsa: int = 13, jobs: int = 1
) -> ExperimentResult:
    """Output-stationary vs weight-stationary kernel rates (section V-A).

    The paper's RTL employs the output-stationary design; this ablation
    quantifies what the choice costs/earns per kernel on the prototype.
    """
    rows = parallel_map(
        _dataflow_row,
        [
            (dataflow, pair_name, rows_tsa)
            for dataflow in ("output_stationary", "weight_stationary")
        ],
        jobs=jobs,
    )
    report = (
        f"Ablation: dataflow comparison ({pair_name}, "
        f"T-SA {rows_tsa} rows)\n"
        + format_table(rows, floatfmt=".2f")
        + "\nThe paper's RTL prototype uses output stationary (section V-A).\n"
    )
    return ExperimentResult(
        name="ablation_dataflow",
        title="Dataflow ablation",
        rows=rows,
        report=report,
    )


def _scaling_row(args: tuple[str, int, int, str]) -> dict:
    """One array-scaling row (module-level for process mapping)."""
    from repro.accelerator import (
        AcceleratorSimulator,
        scaled_array,
        scaled_power_model,
    )
    from repro.mx import MX6, MX9

    label, rows_count, cols, pair_name = args
    pair = get_pair(pair_name)
    student = pair.student_graph()
    teacher = pair.teacher_graph()
    sim = AcceleratorSimulator()
    array = scaled_array(rows_count, cols)
    power = scaled_power_model(rows_count, cols)
    full = array.full()
    return {
        "config": label,
        "dpes": array.num_dpes,
        "power_w": power.total_power_w,
        "area_mm2": power.total_area_mm2,
        "inference_fps": sim.inference_throughput(student, MX6, full, batch=1),
        "labeling_sps": sim.inference_throughput(teacher, MX6, full, batch=8),
        "training_sps": sim.training_throughput(student, MX9, full, batch=16),
    }


def run_ablation_scaling(
    pair_name: str = "resnet18_wrn50", jobs: int = 1
) -> ExperimentResult:
    """Array scaling study (section VII-A's 32x32 / chiplet remark)."""
    from repro.accelerator import ChipletPackage

    configs = (
        ("16x16 (prototype)", 16, 16),
        ("32x32", 32, 32),
        ("64x64", 64, 64),
    )
    rows = parallel_map(
        _scaling_row,
        [(label, r, c, pair_name) for label, r, c in configs],
        jobs=jobs,
    )
    for chips in (2, 4):
        package = ChipletPackage(chips=chips)
        base = rows[0]
        scale = package.throughput_scale()
        rows.append(
            {
                "config": f"{chips}x 16x16 chiplets",
                "dpes": chips * 256,
                "power_w": package.power_w(),
                "area_mm2": package.area_mm2(),
                "inference_fps": base["inference_fps"] * scale,
                "labeling_sps": base["labeling_sps"] * scale,
                "training_sps": base["training_sps"] * scale,
            }
        )
    report = (
        f"Ablation: array scaling and chiplet packaging ({pair_name})\n"
        + format_table(rows, floatfmt=".2f")
    )
    return ExperimentResult(
        name="ablation_scaling",
        title="Array scaling ablation",
        rows=rows,
        report=report,
    )


def _nldd_row(args: tuple[int, str, str, float, int]) -> dict:
    """One Nldd-sweep row (module-level for process mapping)."""
    multiplier, pair, scenario, duration_s, seed = args
    config = DaCapoConfig(drift_label_multiplier=multiplier)
    system = build_system(
        "DaCapo-Spatiotemporal", pair, config=config, seed=seed
    )
    result = run_on_scenario(
        system, scenario, seed=seed, duration_s=duration_s
    )
    return {
        "nldd_multiplier": multiplier,
        "accuracy": result.average_accuracy(),
        "drifts_detected": len(result.drift_detections()),
        "label_share": result.retrain_label_ratio()[1],
    }


def run_ablation_nldd(
    duration_s: float = 600.0,
    scenario: str = "S5",
    pair: str = "resnet18_wrn50",
    multipliers: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Sweep the drift-labeling multiplier around the paper's choice of 4.

    Each multiplier is a full system run with its own config (which
    :class:`~repro.core.parallel.SystemCell` cannot express), so the sweep
    rides :func:`~repro.core.parallel.parallel_map` rather than
    ``run_cells``; the shared stream still comes from the artifact store's
    disk tier in every worker.
    """
    rows = parallel_map(
        _nldd_row,
        [(m, pair, scenario, duration_s, seed) for m in multipliers],
        jobs=jobs,
    )
    report = (
        f"Ablation: Nldd multiplier sweep ({pair}, {scenario}, "
        f"{duration_s:.0f} s; paper uses 4)\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="ablation_nldd",
        title="Nldd multiplier ablation",
        rows=rows,
        report=report,
    )
