"""Figure 11: temporal resource allocation decisions over 3 minutes.

Per model pair: the retrain:label time breakdown of DaCapo-Spatial (DC-S)
versus DaCapo-Spatiotemporal (DC-ST), and the accuracy improvement of
DC-ST.  The reproduced shape: DC-ST shifts time toward labeling (the paper
reports +12.7% labeling share on drift) and gains accuracy.
"""

from __future__ import annotations

from repro.core import SystemCell, run_cells
from repro.experiments.reporting import ExperimentResult, format_table

__all__ = ["run_fig11"]

FIG11_PAIRS = ("resnet18_wrn50", "vit_b32_b16", "resnet34_wrn101")

_FIG11_SYSTEMS = (
    ("DC-S", "DaCapo-Spatial"),
    ("DC-ST", "DaCapo-Spatiotemporal"),
)


def run_fig11(
    duration_s: float = 600.0,
    scenario: str = "S5",
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Figure 11's phase-ratio comparison.

    The paper collects 3 minutes of S1; we default to a longer slice of a
    geometry-drifting scenario so several full phase cycles (and at least
    one drift reaction) land inside the measurement.  ``jobs > 1`` fans the
    (pair, system) cells across worker processes with identical results.
    """
    cells = [
        SystemCell(system_name, pair, scenario, seed, duration_s)
        for pair in FIG11_PAIRS
        for _, system_name in _FIG11_SYSTEMS
    ]
    results = iter(run_cells(cells, jobs=jobs))

    rows = []
    for pair in FIG11_PAIRS:
        shares = {}
        accs = {}
        for label, system_name in _FIG11_SYSTEMS:
            result = next(results)
            retrain, label_share = result.retrain_label_ratio()
            shares[label] = (retrain, label_share)
            accs[label] = result.average_accuracy()
        rows.append(
            {
                "pair": pair,
                "dcs_retrain": shares["DC-S"][0],
                "dcs_label": shares["DC-S"][1],
                "dcst_retrain": shares["DC-ST"][0],
                "dcst_label": shares["DC-ST"][1],
                "label_share_delta": shares["DC-ST"][1] - shares["DC-S"][1],
                "acc_improvement": accs["DC-ST"] - accs["DC-S"],
            }
        )
    report = (
        f"Figure 11: retrain:label time breakdown, DC-S vs DC-ST "
        f"({scenario}, {duration_s:.0f} s)\n"
        + format_table(rows)
    )
    return ExperimentResult(
        name="fig11",
        title="Temporal allocation decisions (Figure 11)",
        rows=rows,
        report=report,
        extras={"scenario": scenario},
    )
