"""GPU roofline models: Jetson Orin (low/high power) and RTX 3090.

A GPU's sustained kernel rate is ``peak_flops * efficiency * share /
flops_per_sample`` with FLOPs = 2 x MACs (multiply and add counted
separately, the GPU convention) and the paper's 3x factor for training.

The efficiency factors model an eager-mode FP32 framework stack without
TensorRT -- the configuration behind the paper's Figure 2, where the teacher
models drop frames on Orin while the RTX 3090 never does.  They are
calibrated so that exactly that happens: all three student models hold
30 FPS on both Orin modes, every teacher misses 30 FPS on Orin, and nothing
drops on the RTX 3090.

Power figures follow the paper: Orin-high 60 W (254x DaCapo's 0.236 W),
Orin-low 30 W (127x), both quoted in section VII-A.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.graph import TRAINING_MACS_FACTOR, ModelGraph

__all__ = ["GpuPlatform", "jetson_orin_high", "jetson_orin_low", "rtx_3090"]

#: FLOPs per MAC on a GPU (multiply + accumulate counted separately).
_FLOPS_PER_MAC = 2

#: Fraction of peak FP32 FLOPs an eager FP32 stack sustains for inference.
_INFERENCE_EFFICIENCY = 0.12

#: Training and labeling run *concurrently with* the latency-critical
#: 30 FPS inference stream: every frame preempts the training-side kernels,
#: so their sustained efficiency collapses well below the inference
#: stream's.  These factors model that interference; they are what makes
#: the GPU baselines resource-starved for continuous learning even when raw
#: peak FLOPs look sufficient (the paper's central observation).
_TRAINING_EFFICIENCY = 0.05
_LABELING_EFFICIENCY = 0.03


@dataclass(frozen=True)
class GpuPlatform:
    """A GPU as a derated FP32 roofline.

    Attributes:
        name: Platform name used in reports (e.g. ``"OrinHigh"``).
        peak_flops: Peak FP32 FLOPs/second.
        power_w: Board power at load.
        idle_fraction: Idle power as a fraction of load power.
        inference_efficiency / training_efficiency: Sustained fraction of
            peak for the respective kernel classes.
    """

    name: str
    peak_flops: float
    power_w: float
    idle_fraction: float = 0.35
    inference_efficiency: float = _INFERENCE_EFFICIENCY
    training_efficiency: float = _TRAINING_EFFICIENCY
    labeling_efficiency: float = _LABELING_EFFICIENCY

    #: GPUs time-share one device across the three kernels.
    dedicated_inference: bool = False

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.power_w <= 0:
            raise ConfigurationError(f"{self.name}: invalid roofline config")
        for label, eff in (
            ("inference", self.inference_efficiency),
            ("training", self.training_efficiency),
            ("labeling", self.labeling_efficiency),
        ):
            if not 0 < eff <= 1:
                raise ConfigurationError(
                    f"{self.name}: bad {label} efficiency"
                )
        if not 0 <= self.idle_fraction <= 1:
            raise ConfigurationError(f"{self.name}: bad idle fraction")

    def _check_share(self, share: float) -> None:
        if not 0 <= share <= 1:
            raise ConfigurationError(
                f"{self.name}: share must be in [0, 1], got {share}"
            )

    def inference_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Forward samples/second given a device share."""
        self._check_share(share)
        flops_per_sample = _FLOPS_PER_MAC * model.macs(1)
        sustained = self.peak_flops * self.inference_efficiency * share
        return sustained / flops_per_sample

    def labeling_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Teacher forward samples/second under inference interference."""
        self._check_share(share)
        flops_per_sample = _FLOPS_PER_MAC * model.macs(1)
        sustained = self.peak_flops * self.labeling_efficiency * share
        return sustained / flops_per_sample

    def training_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Training samples/second (forward + backward, batched)."""
        self._check_share(share)
        flops_per_sample = (
            _FLOPS_PER_MAC * TRAINING_MACS_FACTOR * model.macs(1)
        )
        sustained = self.peak_flops * self.training_efficiency * share
        return sustained / flops_per_sample

    def average_power_w(self, utilization: float = 1.0) -> float:
        """Board power at a utilization in ``[0, 1]``."""
        if not 0 <= utilization <= 1:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        idle = self.power_w * self.idle_fraction
        return idle + (self.power_w - idle) * utilization


def jetson_orin_high() -> GpuPlatform:
    """Jetson AGX Orin, default 60 W mode: 2048 CUDA cores at 1.3 GHz."""
    return GpuPlatform(
        name="OrinHigh", peak_flops=2048 * 2 * 1.3e9, power_w=60.0
    )


def jetson_orin_low() -> GpuPlatform:
    """Jetson AGX Orin, 30 W mode: GPU capped at 624.8 MHz (section VII-A)."""
    return GpuPlatform(
        name="OrinLow", peak_flops=2048 * 2 * 624.8e6, power_w=30.0
    )


def rtx_3090() -> GpuPlatform:
    """NVIDIA RTX 3090: 35.6 TFLOPS FP32 peak, 350 W."""
    return GpuPlatform(name="RTX3090", peak_flops=35.6e12, power_w=350.0)
