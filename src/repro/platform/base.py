"""The platform interface consumed by the continuous-learning system."""

from __future__ import annotations

import enum
from typing import Protocol, runtime_checkable

from repro.models.graph import ModelGraph

__all__ = ["KernelKind", "Platform"]


class KernelKind(enum.Enum):
    """The three continuous-learning kernels (paper Figure 1)."""

    INFERENCE = "inference"
    LABELING = "labeling"
    RETRAINING = "retraining"


@runtime_checkable
class Platform(Protocol):
    """What a compute platform must provide to run continuous learning.

    Rates are sustained samples/second.  ``share`` is the fraction of the
    platform granted to the kernel: GPU systems time/space-share one device;
    DaCapo ignores shares below 1.0 for inference (B-SA is dedicated) and
    interprets the T-SA share for labeling/retraining time-sharing.
    """

    name: str

    def inference_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Student-inference samples/second with a resource share."""
        ...

    def labeling_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Teacher-labeling samples/second with a resource share."""
        ...

    def training_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Retraining samples/second (one epoch-pass) with a resource share."""
        ...

    def average_power_w(self, utilization: float = 1.0) -> float:
        """Average electrical power at the given utilization."""
        ...
