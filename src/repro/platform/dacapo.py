"""The DaCapo accelerator as an execution platform.

Wraps the accelerator simulator with the paper's operating point:

- a committed T-SA/B-SA row partition (workflow step 3);
- MX6 for inference and labeling, MX9 for retraining (workflow step 2);
- inference at batch 1 (latency-bound streaming), labeling and retraining
  batched (section VII-A: retraining batch 16).

Inference ignores the ``share`` argument -- B-SA is dedicated to it.  For
labeling and retraining the share expresses T-SA time-sharing: granting the
kernel a fraction of T-SA's time scales its sustained rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerator import (
    AcceleratorSimulator,
    Partition,
    PowerModel,
    SystolicArray,
)
from repro.errors import ConfigurationError
from repro.models.graph import ModelGraph
from repro.mx import MX6, MX9, MXFormat

__all__ = ["DaCapoPlatform", "build_dacapo_platform"]

#: Paper section VII-A batch sizes.
INFERENCE_BATCH = 1
LABELING_BATCH = 8
TRAINING_BATCH = 16


@dataclass(frozen=True)
class DaCapoPlatform:
    """DaCapo chip with a committed spatial partition.

    Attributes:
        partition: The T-SA/B-SA row split.
        simulator: Timing model.
        power: Chip power model (Table IV).
        inference_fmt / labeling_fmt / training_fmt: MX precision per kernel.
    """

    partition: Partition
    simulator: AcceleratorSimulator = AcceleratorSimulator()
    power: PowerModel = PowerModel()
    inference_fmt: MXFormat = MX6
    labeling_fmt: MXFormat = MX6
    training_fmt: MXFormat = MX9
    name: str = "DaCapo"

    #: B-SA is dedicated to inference: training-side kernels never share
    #: resources with it (the spatial-partitioning contribution).
    dedicated_inference: bool = True

    def _check_share(self, share: float) -> None:
        if not 0 <= share <= 1:
            raise ConfigurationError(
                f"{self.name}: share must be in [0, 1], got {share}"
            )

    def inference_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Streaming inference on the dedicated B-SA (share ignored)."""
        self._check_share(share)
        return self.simulator.inference_throughput(
            model, self.inference_fmt, self.partition.bsa, INFERENCE_BATCH
        )

    def inference_latency_s(self, model: ModelGraph) -> float:
        """Per-frame latency on B-SA (drives the frame-rate constraint)."""
        return self.simulator.forward_latency_s(
            model, self.inference_fmt, self.partition.bsa, INFERENCE_BATCH
        )

    def labeling_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Teacher labeling on T-SA, scaled by its time share."""
        self._check_share(share)
        return share * self.simulator.inference_throughput(
            model, self.labeling_fmt, self.partition.tsa, LABELING_BATCH
        )

    def training_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Student retraining on T-SA, scaled by its time share."""
        self._check_share(share)
        return share * self.simulator.training_throughput(
            model, self.training_fmt, self.partition.tsa, TRAINING_BATCH
        )

    def average_power_w(self, utilization: float = 1.0) -> float:
        """Chip power at an array utilization in ``[0, 1]``."""
        return self.power.average_power_w(utilization)


def build_dacapo_platform(
    rows_tsa: int,
    array: SystolicArray | None = None,
    simulator: AcceleratorSimulator | None = None,
) -> DaCapoPlatform:
    """Convenience constructor from a T-SA row count."""
    array = array or SystolicArray()
    return DaCapoPlatform(
        partition=Partition(array, rows_tsa),
        simulator=simulator or AcceleratorSimulator(),
    )


@dataclass(frozen=True)
class DaCapoTimeShared:
    """DaCapo hardware driven like a GPU: one time-multiplexed device.

    This is the platform under the paper's *DaCapo-Ekya* baseline: Ekya's
    resource allocator treats the accelerator as a single shared device, so
    inference competes with retraining and labeling for the full array
    instead of owning a dedicated partition.  Comparing it against the
    partitioned :class:`DaCapoPlatform` isolates the benefit of spatial
    partitioning (section III-B's time-sharing critique).

    Attributes:
        array: The full systolic array.
        simulator: Timing model.
        power: Chip power model.
    """

    array: SystolicArray = SystolicArray()
    simulator: AcceleratorSimulator = AcceleratorSimulator()
    power: PowerModel = PowerModel()
    inference_fmt: MXFormat = MX6
    labeling_fmt: MXFormat = MX6
    training_fmt: MXFormat = MX9
    name: str = "DaCapo-TimeShared"
    dedicated_inference: bool = False

    #: Fine-grained time-multiplexing cost: the 30 Hz inference stream
    #: preempts the training-side kernel every frame, forcing pipeline
    #: drain, weight/operand re-stream, and precision-mode switches
    #: (section III-B's critique of time-sharing).  Applied to every rate.
    multiplexing_efficiency: float = 0.7

    def _check_share(self, share: float) -> None:
        if not 0 <= share <= 1:
            raise ConfigurationError(
                f"{self.name}: share must be in [0, 1], got {share}"
            )

    def inference_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Streaming inference on the full array, scaled by its time share."""
        self._check_share(share)
        return (
            share
            * self.multiplexing_efficiency
            * self.simulator.inference_throughput(
                model, self.inference_fmt, self.array.full(), INFERENCE_BATCH
            )
        )

    def labeling_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Teacher labeling on the full array, scaled by its time share."""
        self._check_share(share)
        return (
            share
            * self.multiplexing_efficiency
            * self.simulator.inference_throughput(
                model, self.labeling_fmt, self.array.full(), LABELING_BATCH
            )
        )

    def training_rate(self, model: ModelGraph, share: float = 1.0) -> float:
        """Student retraining on the full array, scaled by its time share."""
        self._check_share(share)
        return (
            share
            * self.multiplexing_efficiency
            * self.simulator.training_throughput(
                model, self.training_fmt, self.array.full(), TRAINING_BATCH
            )
        )

    def average_power_w(self, utilization: float = 1.0) -> float:
        """Chip power at an array utilization in ``[0, 1]``."""
        return self.power.average_power_w(utilization)
