"""Execution platforms: GPU baselines and the DaCapo accelerator.

A *platform* answers one question for the continuous-learning system: how
many samples per second can each of the three kernels (inference, labeling,
retraining) process, given a share of the platform's resources -- and what
power does the platform draw while doing it.

GPU platforms (Jetson Orin in its low/high power modes, RTX 3090) are
rooflines: peak FP32 FLOPs derated by an empirical framework-efficiency
factor.  The DaCapo platform wraps the accelerator simulator with the
paper's precision assignment (MX9 retraining, MX6 inference/labeling) and a
committed T-SA/B-SA partition.
"""

from repro.platform.base import KernelKind, Platform
from repro.platform.gpu import (
    GpuPlatform,
    jetson_orin_high,
    jetson_orin_low,
    rtx_3090,
)
from repro.platform.dacapo import (
    DaCapoPlatform,
    DaCapoTimeShared,
    build_dacapo_platform,
)
from repro.platform.energy import EnergyAccount, energy_ratio

__all__ = [
    "DaCapoPlatform",
    "DaCapoTimeShared",
    "EnergyAccount",
    "GpuPlatform",
    "KernelKind",
    "Platform",
    "build_dacapo_platform",
    "energy_ratio",
    "jetson_orin_high",
    "jetson_orin_low",
    "rtx_3090",
]
