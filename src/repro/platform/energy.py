"""Energy accounting across a continuous-learning run.

Accumulates (wall time, busy time) segments and integrates average power.
Backs the paper's headline claim that DaCapo consumes 254x less power than
the Orin-high baseline (section VII-A: 60 W vs 0.236 W).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["EnergyAccount", "energy_ratio"]


@dataclass
class EnergyAccount:
    """Accumulated energy for one platform over a run.

    Attributes:
        name: Platform name.
        wall_time_s: Total elapsed time recorded.
        energy_j: Integrated energy.
    """

    name: str
    wall_time_s: float = 0.0
    energy_j: float = 0.0

    def record(
        self, duration_s: float, power_w: float
    ) -> None:
        """Add a segment of ``duration_s`` at average ``power_w``."""
        if duration_s < 0 or power_w < 0:
            raise ConfigurationError("duration and power must be non-negative")
        self.wall_time_s += duration_s
        self.energy_j += duration_s * power_w

    @property
    def average_power_w(self) -> float:
        """Run-average power (0 for an empty account)."""
        if self.wall_time_s == 0:
            return 0.0
        return self.energy_j / self.wall_time_s


def energy_ratio(baseline: EnergyAccount, candidate: EnergyAccount) -> float:
    """How many times more energy the baseline used than the candidate."""
    if candidate.energy_j <= 0:
        raise ConfigurationError("candidate energy must be positive")
    return baseline.energy_j / candidate.energy_j
