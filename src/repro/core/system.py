"""The end-to-end system simulator and DaCapo's spatiotemporal scheduler.

:class:`CLSystemBase` owns the mechanics every continuous-learning system
shares -- advancing the clock through phases, evaluating the student on the
frames of each phase interval under the weights active at that moment,
modeling frame drops, and accounting energy.  Subclasses contribute only a
*phase generator*: an iterator of :class:`PhaseStep` objects whose commit
callbacks mutate the student/buffer when the phase completes.

:class:`DaCapoSystem` implements the paper's Algorithm 1 on top of this:
retrain -> validate -> label -> drift check, with the labeling escalation
(``Nl`` -> ``Nldd``) and buffer reset on drift.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro import profiling
from repro.core.buffer import SampleBuffer
from repro.core.config import DaCapoConfig
from repro.core.phases import PhaseKind, PhaseRecord
from repro.core.results import RunResult
from repro.data.stream import FrameWindow, ScenarioStream
from repro.errors import ScheduleError
from repro.learn.student import StudentModel
from repro.learn.teacher import TeacherModel
from repro.models.zoo import ModelPair
from repro.platform.base import Platform

__all__ = ["PhaseStep", "CLSystemBase", "DaCapoSystem"]

#: Below this many buffered samples, retraining is skipped (one batch).
MIN_RETRAIN_SAMPLES = 16


@dataclass
class PhaseStep:
    """One planned phase from a scheduler generator.

    Attributes:
        kind: Kernel the phase runs.
        duration_s: Planned duration (the run loop may truncate the final
            phase at the stream end).
        samples: Samples the phase processes (for the trace).
        commit: Callback ``(t0, t1) -> drift_detected`` executed when the
            phase completes; mutates student/buffer state.
    """

    kind: PhaseKind
    duration_s: float
    samples: int = 0
    commit: Callable[[float, float], bool] | None = None


class CLSystemBase:
    """Shared mechanics of every continuous-learning system.

    Args:
        name: Report name (e.g. ``"OrinHigh-Ekya"``).
        platform: Execution platform.
        pair: The (student, teacher) model pair.
        student: The live student proxy.
        teacher: The teacher proxy (None for systems that never label).
        config: Scheduling hyperparameters.
    """

    def __init__(
        self,
        name: str,
        platform: Platform,
        pair: ModelPair,
        student: StudentModel,
        teacher: TeacherModel | None,
        config: DaCapoConfig,
    ) -> None:
        self.name = name
        self.platform = platform
        self.pair = pair
        self.student = student
        self.teacher = teacher
        self.config = config
        self.buffer = SampleBuffer(
            config.buffer_capacity, feature_dim=self._feature_dim()
        )

        student_graph = pair.student_graph()
        self.inference_fps = platform.inference_rate(student_graph)
        self.drop_rate = max(
            0.0, 1.0 - self.inference_fps / config.frame_rate
        )
        if getattr(platform, "dedicated_inference", False):
            self.training_share = 1.0
        else:
            inference_share = min(
                1.0, config.frame_rate / self.inference_fps
            )
            self.training_share = max(0.0, 1.0 - inference_share)
        # Kernel-rate memos: platform, pair, and training share are fixed
        # after construction, so each rate is computed once on first use
        # instead of re-walking the model graph every phase.
        self._labeling_sps: float | None = None
        self._training_sps: float | None = None
        self._validation_sps: float | None = None

    def _feature_dim(self) -> int:
        return self.student.mlp.weights[0].shape[0]

    # -- rates ------------------------------------------------------------

    def labeling_sps(self) -> float:
        """Teacher labeling throughput under the training-side share."""
        if self._labeling_sps is None:
            rate = self.platform.labeling_rate(
                self.pair.teacher_graph(), self.training_share
            )
            # Labeling consumes live frames; it cannot outpace their arrival.
            self._labeling_sps = (
                min(rate, self.config.frame_rate) if rate > 0 else 0.0
            )
        return self._labeling_sps

    def training_sps(self) -> float:
        """Retraining throughput under the training-side share."""
        if self._training_sps is None:
            self._training_sps = self.platform.training_rate(
                self.pair.student_graph(), self.training_share
            )
        return self._training_sps

    def validation_sps(self) -> float:
        """Validation (student forward) throughput on the training side."""
        if self._validation_sps is None:
            self._validation_sps = self.platform.labeling_rate(
                self.pair.student_graph(), self.training_share
            )
        return self._validation_sps

    # -- scheduling hook ---------------------------------------------------

    def phase_generator(
        self, frames: FrameWindow, rng: np.random.Generator
    ) -> Iterator[PhaseStep]:
        """Yield the system's schedule; overridden by every system."""
        raise NotImplementedError

    # -- helpers shared by schedulers ---------------------------------------

    def retrain_duration_s(self, num_train: int, num_validation: int) -> float:
        """Wall time of a retraining phase (epochs + validation forward)."""
        train_sps = self.training_sps()
        val_sps = self.validation_sps()
        if train_sps <= 0 or val_sps <= 0:
            return float("inf")
        train_time = self.config.epochs * num_train / train_sps
        return train_time + num_validation / val_sps

    def label_duration_s(self, num_label: int) -> float:
        """Wall time of a labeling phase."""
        sps = self.labeling_sps()
        if sps <= 0:
            return float("inf")
        return num_label / sps

    def do_retrain(
        self,
        rng: np.random.Generator,
        max_duration_s: float | None = None,
    ) -> tuple[PhaseStep | None, dict]:
        """A retraining PhaseStep over the current buffer, or None.

        When ``max_duration_s`` is given (window-based schedulers), a
        retraining that would not fit trains only the sample prefix that
        does -- the "incomplete models" the paper attributes to retraining
        with insufficient resources.  The returned dict gains an ``"accv"``
        entry when the commit runs.
        """
        outcome: dict = {}
        if len(self.buffer) < MIN_RETRAIN_SAMPLES:
            return None, outcome
        (x_train, y_train), (x_val, y_val) = self.buffer.draw(
            self.config.num_train, self.config.num_validation, rng
        )
        duration = self.retrain_duration_s(len(x_train), len(x_val))
        if max_duration_s is not None and duration > max_duration_s:
            fraction = max_duration_s / duration
            keep = int(len(x_train) * fraction)
            if keep < MIN_RETRAIN_SAMPLES:
                return None, outcome  # the window is too short to retrain
            x_train, y_train = x_train[:keep], y_train[:keep]
            duration = self.retrain_duration_s(len(x_train), len(x_val))

        def commit(t0: float, t1: float) -> bool:
            with profiling.scope(profiling.RETRAIN):
                self.student.retrain(
                    x_train,
                    y_train,
                    epochs=self.config.epochs,
                    rng=rng,
                    learning_rate=self.config.learning_rate,
                    batch_size=self.config.batch_size,
                )
                outcome["accv"] = self.student.accuracy(x_val, y_val)
            return False

        step = PhaseStep(
            PhaseKind.RETRAIN,
            duration,
            samples=self.config.epochs * len(x_train),
            commit=commit,
        )
        return step, outcome

    def do_label(
        self,
        frames: FrameWindow,
        num_label: int,
        rng: np.random.Generator,
        check_drift_against: Callable[[], float | None] | None = None,
    ) -> tuple[PhaseStep, dict]:
        """A labeling PhaseStep sampling from its own time window.

        Args:
            frames: The full materialized stream.
            num_label: Target labels (capped by frames in the window).
            rng: Randomness source.
            check_drift_against: When given, a callable returning the
                current validation accuracy; the commit compares the
                student's agreement on fresh labels against it (Algorithm 1
                line 11) and reports drift.

        The returned dict gains ``"accl"`` and ``"labeled"`` when committed.
        """
        outcome: dict = {}
        duration = self.label_duration_s(num_label)

        def commit(t0: float, t1: float) -> bool:
            with profiling.scope(profiling.LABEL):
                window = frames.window(t0, t1)
                if len(window) == 0:
                    outcome["labeled"] = 0
                    return False
                count = min(num_label, len(window))
                picked = rng.choice(len(window), size=count, replace=False)
                picked.sort()
                x = window.features[picked]
                assert self.teacher is not None
                teacher_labels = self.teacher.label(x)
                predictions = self.student.predict(x)
                accl = float(np.mean(predictions == teacher_labels))
                outcome["accl"] = accl
                outcome["labeled"] = count

                drift = False
                if check_drift_against is not None:
                    accv = check_drift_against()
                    if accv is not None:
                        drift = (accl - accv) < self.config.drift_threshold
                if drift:
                    self.buffer.reset()  # Algorithm 1 line 12
                self.buffer.add(x, teacher_labels)
                outcome["drift"] = drift
            return drift

        step = PhaseStep(
            PhaseKind.LABEL, duration, samples=num_label, commit=commit
        )
        return step, outcome

    # -- the run loop -------------------------------------------------------

    def run(self, stream: ScenarioStream, seed: int = 0) -> RunResult:
        """Simulate the system over a scenario stream."""
        with profiling.scope(profiling.MATERIALIZE):
            frames = stream.materialize(seed)
        duration = stream.duration_s
        rng = np.random.default_rng(
            (seed, zlib.crc32(self.name.encode()) & 0xFFFF)
        )

        correct = np.zeros(len(frames), dtype=bool)
        dropped = np.zeros(len(frames), dtype=bool)
        records: list[PhaseRecord] = []
        clock = 0.0

        for step in self.phase_generator(frames, rng):
            if step.duration_s <= 0:
                raise ScheduleError(
                    f"{self.name}: non-positive phase duration"
                )
            end = min(clock + step.duration_s, duration)
            self._evaluate_interval(frames, clock, end, correct, dropped, rng)
            drift = False
            if step.commit is not None:
                drift = step.commit(clock, end)
            records.append(
                PhaseRecord(step.kind, clock, end, step.samples, drift)
            )
            clock = end
            if clock >= duration:
                break

        if clock < duration:
            # Scheduler exhausted early (e.g. no-retrain systems): evaluate
            # the remainder under the final weights.
            self._evaluate_interval(
                frames, clock, duration, correct, dropped, rng
            )
            records.append(PhaseRecord(PhaseKind.IDLE, clock, duration))

        power = self.platform.average_power_w(1.0)
        return RunResult(
            system=self.name,
            scenario=stream.name,
            pair=self.pair.name,
            times=frames.times,
            correct=correct,
            dropped=dropped,
            phases=tuple(records),
            duration_s=duration,
            energy_j=power * duration,
            average_power_w=power,
        )

    def _evaluate_interval(
        self,
        frames: FrameWindow,
        t0: float,
        t1: float,
        correct: np.ndarray,
        dropped: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Score frames in ``[t0, t1)`` with the current student weights."""
        if t1 <= t0:
            return
        with profiling.scope(profiling.INFERENCE):
            lo = int(np.searchsorted(frames.times, t0, side="left"))
            hi = int(np.searchsorted(frames.times, t1, side="left"))
            if hi <= lo:
                return
            window_features = frames.features[lo:hi]
            window_labels = frames.labels[lo:hi]
            predictions = self.student.predict(window_features)
            ok = predictions == window_labels
            if self.drop_rate > 0:
                drops = rng.random(hi - lo) < self.drop_rate
                ok = ok & ~drops
                dropped[lo:hi] = drops
            correct[lo:hi] = ok


class DaCapoSystem(CLSystemBase):
    """DaCapo-Spatiotemporal: Algorithm 1 on the partitioned accelerator.

    The loop alternates retraining and labeling phases on T-SA.  After each
    retraining, the updated student is validated on buffered data
    (``accv``); after each labeling, the student's agreement with fresh
    teacher labels (``accl``) is compared against ``accv`` -- a gap below
    ``Vthr`` signals drift, clearing the buffer and extending labeling from
    ``Nl`` to ``Nldd`` samples.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._accv: float | None = None

    def phase_generator(
        self, frames: FrameWindow, rng: np.random.Generator
    ) -> Iterator[PhaseStep]:
        config = self.config
        while True:
            # Retraining (Algorithm 1 lines 4-7); skipped while the buffer
            # is still bootstrapping.
            step, outcome = self.do_retrain(rng)
            if step is not None:
                yield step
                if "accv" in outcome:
                    self._accv = outcome["accv"]

            # Labeling + drift check (lines 8-13).
            step, outcome = self.do_label(
                frames,
                config.num_label,
                rng,
                check_drift_against=lambda: self._accv,
            )
            yield step
            if outcome.get("drift", False):
                extra = config.num_label_drift - config.num_label
                if extra > 0:
                    extension, _ = self.do_label(frames, extra, rng)
                    yield extension
                # The freshly reset buffer invalidates the old validation
                # accuracy; wait for the next retraining to re-establish it.
                self._accv = None
