"""The end-to-end system simulator and DaCapo's spatiotemporal scheduler.

:class:`CLSystemBase` owns the mechanics every continuous-learning system
shares -- advancing the clock through phases, evaluating the student on the
frames of each phase interval under the weights active at that moment,
modeling frame drops, and accounting energy.  Subclasses contribute only a
scheduler: :meth:`~CLSystemBase.next_phase` returns one planned
:class:`PhaseStep` at a time (None when exhausted), and the phase's commit
callback mutates the student/buffer when the phase completes.

The run loop itself lives in :class:`RunExecution`, a checkpointable state
machine: after every phase that commits *untruncated*, the execution can
capture a :class:`~repro.core.snapshot.RunCheckpoint` (weights, buffer,
RNG state, clock, per-frame prefixes, scheduler cursor) from which a later
execution resumes bit-identically.  That is what lets the fleet service
compute window ``i+1`` from window ``i``'s snapshot instead of replaying
the whole stream prefix.  Systems that still override
:meth:`~CLSystemBase.phase_generator` with a plain generator keep working
but cannot checkpoint or resume.

:class:`DaCapoSystem` implements the paper's Algorithm 1 on top of this:
retrain -> validate -> label -> drift check, with the labeling escalation
(``Nl`` -> ``Nldd``) and buffer reset on drift.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro import profiling
from repro.core.buffer import SampleBuffer
from repro.core.config import DaCapoConfig
from repro.core.phases import PhaseKind, PhaseRecord
from repro.core.results import RunResult
from repro.core.snapshot import RunCheckpoint
from repro.data.stream import FrameWindow, ScenarioStream
from repro.errors import ScheduleError, SnapshotError
from repro.learn.student import StudentModel
from repro.learn.teacher import TeacherModel
from repro.models.zoo import ModelPair
from repro.platform.base import Platform

__all__ = ["PhaseStep", "CLSystemBase", "DaCapoSystem", "RunExecution"]

#: Below this many buffered samples, retraining is skipped (one batch).
MIN_RETRAIN_SAMPLES = 16


@dataclass
class PhaseStep:
    """One planned phase from a scheduler generator.

    Attributes:
        kind: Kernel the phase runs.
        duration_s: Planned duration (the run loop may truncate the final
            phase at the stream end).
        samples: Samples the phase processes (for the trace).
        commit: Callback ``(t0, t1) -> drift_detected`` executed when the
            phase completes; mutates student/buffer state.
    """

    kind: PhaseKind
    duration_s: float
    samples: int = 0
    commit: Callable[[float, float], bool] | None = None


class CLSystemBase:
    """Shared mechanics of every continuous-learning system.

    Args:
        name: Report name (e.g. ``"OrinHigh-Ekya"``).
        platform: Execution platform.
        pair: The (student, teacher) model pair.
        student: The live student proxy.
        teacher: The teacher proxy (None for systems that never label).
        config: Scheduling hyperparameters.
    """

    def __init__(
        self,
        name: str,
        platform: Platform,
        pair: ModelPair,
        student: StudentModel,
        teacher: TeacherModel | None,
        config: DaCapoConfig,
    ) -> None:
        self.name = name
        self.platform = platform
        self.pair = pair
        self.student = student
        self.teacher = teacher
        self.config = config
        self.buffer = SampleBuffer(
            config.buffer_capacity, feature_dim=self._feature_dim()
        )

        student_graph = pair.student_graph()
        self.inference_fps = platform.inference_rate(student_graph)
        self.drop_rate = max(
            0.0, 1.0 - self.inference_fps / config.frame_rate
        )
        if getattr(platform, "dedicated_inference", False):
            self.training_share = 1.0
        else:
            inference_share = min(
                1.0, config.frame_rate / self.inference_fps
            )
            self.training_share = max(0.0, 1.0 - inference_share)
        # Kernel-rate memos: platform, pair, and training share are fixed
        # after construction, so each rate is computed once on first use
        # instead of re-walking the model graph every phase.
        self._labeling_sps: float | None = None
        self._training_sps: float | None = None
        self._validation_sps: float | None = None

    def _feature_dim(self) -> int:
        return self.student.mlp.weights[0].shape[0]

    # -- rates ------------------------------------------------------------

    def labeling_sps(self) -> float:
        """Teacher labeling throughput under the training-side share."""
        if self._labeling_sps is None:
            rate = self.platform.labeling_rate(
                self.pair.teacher_graph(), self.training_share
            )
            # Labeling consumes live frames; it cannot outpace their arrival.
            self._labeling_sps = (
                min(rate, self.config.frame_rate) if rate > 0 else 0.0
            )
        return self._labeling_sps

    def training_sps(self) -> float:
        """Retraining throughput under the training-side share."""
        if self._training_sps is None:
            self._training_sps = self.platform.training_rate(
                self.pair.student_graph(), self.training_share
            )
        return self._training_sps

    def validation_sps(self) -> float:
        """Validation (student forward) throughput on the training side."""
        if self._validation_sps is None:
            self._validation_sps = self.platform.labeling_rate(
                self.pair.student_graph(), self.training_share
            )
        return self._validation_sps

    # -- scheduling hook ---------------------------------------------------

    def next_phase(
        self, frames: FrameWindow, rng: np.random.Generator
    ) -> PhaseStep | None:
        """The scheduler's next planned phase, or None when exhausted.

        The resumable scheduling hook: systems implement this (plus
        :meth:`scheduler_state` / :meth:`restore_scheduler_state` when they
        carry cursor state across phases) so a :class:`RunExecution` can
        checkpoint between phases.  State that a phase *decides* must be
        updated in its commit callback, not at generation time -- a
        generated step may be discarded when the stream truncates it.
        """
        raise NotImplementedError

    def phase_generator(
        self, frames: FrameWindow, rng: np.random.Generator
    ) -> Iterator[PhaseStep]:
        """Yield the schedule by driving :meth:`next_phase`.

        Subclasses may still override this with a plain generator; such
        systems run normally but cannot checkpoint or resume (see
        :class:`RunExecution`).
        """
        while True:
            step = self.next_phase(frames, rng)
            if step is None:
                return
            yield step

    def scheduler_state(self) -> dict:
        """The scheduler's cursor state, as a JSON-safe dict."""
        return {}

    def restore_scheduler_state(self, state: dict) -> None:
        """Restore a cursor captured by :meth:`scheduler_state`."""

    # -- helpers shared by schedulers ---------------------------------------

    def retrain_duration_s(self, num_train: int, num_validation: int) -> float:
        """Wall time of a retraining phase (epochs + validation forward)."""
        train_sps = self.training_sps()
        val_sps = self.validation_sps()
        if train_sps <= 0 or val_sps <= 0:
            return float("inf")
        train_time = self.config.epochs * num_train / train_sps
        return train_time + num_validation / val_sps

    def label_duration_s(self, num_label: int) -> float:
        """Wall time of a labeling phase."""
        sps = self.labeling_sps()
        if sps <= 0:
            return float("inf")
        return num_label / sps

    def do_retrain(
        self,
        rng: np.random.Generator,
        max_duration_s: float | None = None,
    ) -> tuple[PhaseStep | None, dict]:
        """A retraining PhaseStep over the current buffer, or None.

        When ``max_duration_s`` is given (window-based schedulers), a
        retraining that would not fit trains only the sample prefix that
        does -- the "incomplete models" the paper attributes to retraining
        with insufficient resources.  The returned dict gains an ``"accv"``
        entry when the commit runs.
        """
        outcome: dict = {}
        if len(self.buffer) < MIN_RETRAIN_SAMPLES:
            return None, outcome
        (x_train, y_train), (x_val, y_val) = self.buffer.draw(
            self.config.num_train, self.config.num_validation, rng
        )
        duration = self.retrain_duration_s(len(x_train), len(x_val))
        if max_duration_s is not None and duration > max_duration_s:
            fraction = max_duration_s / duration
            keep = int(len(x_train) * fraction)
            if keep < MIN_RETRAIN_SAMPLES:
                return None, outcome  # the window is too short to retrain
            x_train, y_train = x_train[:keep], y_train[:keep]
            duration = self.retrain_duration_s(len(x_train), len(x_val))

        def commit(t0: float, t1: float) -> bool:
            with profiling.scope(profiling.RETRAIN):
                # Cross-camera sharing (opt-in): substitute a cluster
                # neighbor's per-domain weights for this retrain when one
                # is published; otherwise retrain and publish our own.
                # Off-path (no active runtime) this is a no-op branch.
                # (Lazy import: repro.share.runtime imports repro.core's
                # snapshot codecs, so a module-level import is a cycle.)
                from repro.share.runtime import active_cluster_runtime

                runtime = active_cluster_runtime()
                samples = self.config.epochs * len(x_train)
                reused = (
                    runtime.reusable_retrain(t0, samples)
                    if runtime is not None
                    else None
                )
                if reused is not None:
                    self.student.restore(reused)
                else:
                    self.student.retrain(
                        x_train,
                        y_train,
                        epochs=self.config.epochs,
                        rng=rng,
                        learning_rate=self.config.learning_rate,
                        batch_size=self.config.batch_size,
                    )
                    if runtime is not None:
                        runtime.publish_retrain(
                            t0, self.student.snapshot(), samples
                        )
                outcome["accv"] = self.student.accuracy(x_val, y_val)
            return False

        step = PhaseStep(
            PhaseKind.RETRAIN,
            duration,
            samples=self.config.epochs * len(x_train),
            commit=commit,
        )
        return step, outcome

    def do_label(
        self,
        frames: FrameWindow,
        num_label: int,
        rng: np.random.Generator,
        check_drift_against: Callable[[], float | None] | None = None,
    ) -> tuple[PhaseStep, dict]:
        """A labeling PhaseStep sampling from its own time window.

        Args:
            frames: The full materialized stream.
            num_label: Target labels (capped by frames in the window).
            rng: Randomness source.
            check_drift_against: When given, a callable returning the
                current validation accuracy; the commit compares the
                student's agreement on fresh labels against it (Algorithm 1
                line 11) and reports drift.

        The returned dict gains ``"accl"`` and ``"labeled"`` when committed.
        """
        outcome: dict = {}
        duration = self.label_duration_s(num_label)

        def commit(t0: float, t1: float) -> bool:
            with profiling.scope(profiling.LABEL):
                window = frames.window(t0, t1)
                if len(window) == 0:
                    outcome["labeled"] = 0
                    return False
                # Cross-camera sharing (opt-in): adopt a cluster neighbor's
                # teacher labels for this (domain, slot) instead of running
                # the teacher; otherwise label and publish for neighbors.
                from repro.share.runtime import active_cluster_runtime

                runtime = active_cluster_runtime()
                shared = (
                    runtime.shared_labels(t0) if runtime is not None else None
                )
                if shared is not None:
                    x, teacher_labels = shared
                    count = len(x)
                else:
                    count = min(num_label, len(window))
                    picked = rng.choice(
                        len(window), size=count, replace=False
                    )
                    picked.sort()
                    x = window.features[picked]
                    assert self.teacher is not None
                    teacher_labels = self.teacher.label(x)
                    if runtime is not None:
                        runtime.publish_labels(t0, x, teacher_labels)
                predictions = self.student.predict(x)
                accl = float(np.mean(predictions == teacher_labels))
                outcome["accl"] = accl
                outcome["labeled"] = count

                drift = False
                if check_drift_against is not None:
                    accv = check_drift_against()
                    if accv is not None:
                        drift = (accl - accv) < self.config.drift_threshold
                if drift:
                    self.buffer.reset()  # Algorithm 1 line 12
                self.buffer.add(x, teacher_labels)
                outcome["drift"] = drift
            return drift

        step = PhaseStep(
            PhaseKind.LABEL, duration, samples=num_label, commit=commit
        )
        return step, outcome

    # -- the run loop -------------------------------------------------------

    def run(self, stream: ScenarioStream, seed: int = 0) -> RunResult:
        """Simulate the system over a scenario stream."""
        execution = RunExecution(self, stream, seed)
        execution.run_to_end()
        return execution.result()

    def _evaluate_interval(
        self,
        frames: FrameWindow,
        t0: float,
        t1: float,
        correct: np.ndarray,
        dropped: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Score frames in ``[t0, t1)`` with the current student weights."""
        if t1 <= t0:
            return
        with profiling.scope(profiling.INFERENCE):
            lo = int(np.searchsorted(frames.times, t0, side="left"))
            hi = int(np.searchsorted(frames.times, t1, side="left"))
            if hi <= lo:
                return
            window_features = frames.features[lo:hi]
            window_labels = frames.labels[lo:hi]
            predictions = self.student.predict(window_features)
            ok = predictions == window_labels
            if self.drop_rate > 0:
                drops = rng.random(hi - lo) < self.drop_rate
                ok = ok & ~drops
                dropped[lo:hi] = drops
            correct[lo:hi] = ok


class RunExecution:
    """The run loop as a checkpointable state machine.

    Drives a system's scheduler phase by phase, exactly as the historical
    ``CLSystemBase.run`` generator loop did -- same clock advancement, same
    truncation at stream end, same RNG consumption order -- but the state
    between phases is explicit, so it can be captured into a
    :class:`~repro.core.snapshot.RunCheckpoint` and restored later.

    Safe points: a checkpoint is captured (when ``capture`` is on) after
    every phase whose planned duration fit the remaining stream.  The final
    *truncated* phase's commit mutates state that the full-length run would
    have reached differently, so it is deliberately not captured -- a
    resumed execution restores the last safe point and regenerates that
    phase against the longer stream.  When the scheduler exhausts, the
    trailing idle is captured with ``idle_from`` set; resuming then
    *extends* the idle record rather than re-asking the exhausted
    scheduler.

    Args:
        system: The system to run; its student/buffer are mutated.
        stream: The scenario stream.
        seed: Stream + RNG seed (as in :meth:`CLSystemBase.run`).
        checkpoint: Resume from this safe point instead of t=0.  The
            system must be resumable (no legacy ``phase_generator``
            override) and the checkpoint's frame prefix must match the
            stream, else :class:`SnapshotError`.
        capture: Keep a checkpoint of the latest safe point (costs array
            copies per phase; the monolithic ``run()`` leaves it off).
    """

    def __init__(
        self,
        system: CLSystemBase,
        stream: ScenarioStream,
        seed: int = 0,
        *,
        checkpoint: RunCheckpoint | None = None,
        capture: bool = False,
    ) -> None:
        self.system = system
        self.stream = stream
        self.seed = seed
        with profiling.scope(profiling.MATERIALIZE):
            self.frames = stream.materialize(seed)
        self.duration = stream.duration_s
        self.resumable = (
            type(system).phase_generator is CLSystemBase.phase_generator
        )
        self.capture_enabled = bool(capture) and self.resumable
        self._checkpoint: RunCheckpoint | None = None
        self._iterator: Iterator[PhaseStep] | None = None

        if checkpoint is not None:
            if not self.resumable:
                raise SnapshotError(
                    f"{system.name}: overrides phase_generator and cannot "
                    f"resume from a snapshot"
                )
            self._restore(checkpoint)
        else:
            self.rng = np.random.default_rng(
                (seed, zlib.crc32(system.name.encode()) & 0xFFFF)
            )
            self.correct = np.zeros(len(self.frames), dtype=bool)
            self.dropped = np.zeros(len(self.frames), dtype=bool)
            self.records: list[PhaseRecord] = []
            self.clock = 0.0
            self.idle_from: float | None = None
        if not self.resumable:
            self._iterator = system.phase_generator(self.frames, self.rng)
        if self.capture_enabled:
            self._capture()

    def _restore(self, chk: RunCheckpoint) -> None:
        system = self.system
        prefix = int(
            np.searchsorted(self.frames.times, chk.clock, side="left")
        )
        if prefix != len(chk.correct) or prefix != len(chk.dropped):
            raise SnapshotError(
                f"{system.name}: snapshot prefix covers {len(chk.correct)} "
                f"frames but the stream has {prefix} before t={chk.clock:g}"
            )
        if chk.clock > self.duration + 1e-9:
            raise SnapshotError(
                f"{system.name}: snapshot clock {chk.clock:g}s is past the "
                f"stream end {self.duration:g}s"
            )
        system.student.restore(chk.student)
        if chk.teacher is not None:
            if system.teacher is None:
                raise SnapshotError(
                    f"{system.name}: snapshot carries teacher weights but "
                    f"the system has no teacher"
                )
            system.teacher.mlp.restore(chk.teacher)
        system.buffer.restore(chk.buffer_features, chk.buffer_labels)
        system.restore_scheduler_state(chk.scheduler)
        self.rng = np.random.default_rng(
            (self.seed, zlib.crc32(system.name.encode()) & 0xFFFF)
        )
        self.rng.bit_generator.state = chk.rng_state
        self.correct = np.zeros(len(self.frames), dtype=bool)
        self.dropped = np.zeros(len(self.frames), dtype=bool)
        self.correct[:prefix] = chk.correct
        self.dropped[:prefix] = chk.dropped
        self.records = list(chk.records)
        self.clock = float(chk.clock)
        self.idle_from = chk.idle_from

    def _capture(self) -> None:
        system = self.system
        prefix = int(
            np.searchsorted(self.frames.times, self.clock, side="left")
        )
        features, labels = system.buffer.snapshot()
        self._checkpoint = RunCheckpoint(
            clock=self.clock,
            idle_from=self.idle_from,
            rng_state=self.rng.bit_generator.state,
            student=system.student.snapshot(),
            teacher=(
                None
                if system.teacher is None
                else system.teacher.mlp.snapshot()
            ),
            buffer_features=features,
            buffer_labels=labels,
            scheduler=system.scheduler_state(),
            correct=self.correct[:prefix].copy(),
            dropped=self.dropped[:prefix].copy(),
            records=tuple(self.records),
        )

    def checkpoint(self) -> RunCheckpoint | None:
        """The latest safe point (None unless ``capture`` was on)."""
        return self._checkpoint

    def _next_step(self) -> PhaseStep | None:
        if self._iterator is not None:
            return next(self._iterator, None)
        return self.system.next_phase(self.frames, self.rng)

    def run_to_end(self) -> None:
        """Advance from the current state to the end of the stream."""
        system = self.system
        frames = self.frames
        duration = self.duration

        if self.idle_from is not None and self.clock < duration:
            # Resumed past scheduler exhaustion: the origin run already
            # appended the trailing idle record; extend it to the new end
            # so the trace matches a monolithic run's single idle phase.
            system._evaluate_interval(
                frames, self.clock, duration, self.correct, self.dropped,
                self.rng,
            )
            last = self.records[-1] if self.records else None
            if last is not None and last.kind is PhaseKind.IDLE:
                self.records[-1] = PhaseRecord(
                    PhaseKind.IDLE, last.start_s, duration
                )
            else:
                self.records.append(
                    PhaseRecord(PhaseKind.IDLE, self.clock, duration)
                )
            self.clock = duration
            if self.capture_enabled:
                self._capture()
            return

        while self.clock < duration:
            step = self._next_step()
            if step is None:
                # Scheduler exhausted early (e.g. no-retrain systems):
                # evaluate the remainder under the final weights.
                self.idle_from = self.clock
                system._evaluate_interval(
                    frames, self.clock, duration, self.correct,
                    self.dropped, self.rng,
                )
                self.records.append(
                    PhaseRecord(PhaseKind.IDLE, self.clock, duration)
                )
                self.clock = duration
                if self.capture_enabled:
                    self._capture()
                return
            if step.duration_s <= 0:
                raise ScheduleError(
                    f"{system.name}: non-positive phase duration"
                )
            truncated = self.clock + step.duration_s > duration
            end = min(self.clock + step.duration_s, duration)
            system._evaluate_interval(
                frames, self.clock, end, self.correct, self.dropped,
                self.rng,
            )
            drift = False
            if step.commit is not None:
                drift = step.commit(self.clock, end)
            self.records.append(
                PhaseRecord(step.kind, self.clock, end, step.samples, drift)
            )
            self.clock = end
            if self.capture_enabled and not truncated:
                self._capture()

    def result(self) -> RunResult:
        """The run's :class:`RunResult` (call after :meth:`run_to_end`)."""
        system = self.system
        power = system.platform.average_power_w(1.0)
        return RunResult(
            system=system.name,
            scenario=self.stream.name,
            pair=system.pair.name,
            times=self.frames.times,
            correct=self.correct,
            dropped=self.dropped,
            phases=tuple(self.records),
            duration_s=self.duration,
            energy_j=power * self.duration,
            average_power_w=power,
        )


class DaCapoSystem(CLSystemBase):
    """DaCapo-Spatiotemporal: Algorithm 1 on the partitioned accelerator.

    The loop alternates retraining and labeling phases on T-SA.  After each
    retraining, the updated student is validated on buffered data
    (``accv``); after each labeling, the student's agreement with fresh
    teacher labels (``accl``) is compared against ``accv`` -- a gap below
    ``Vthr`` signals drift, clearing the buffer and extending labeling from
    ``Nl`` to ``Nldd`` samples.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._accv: float | None = None
        self._cursor = "retrain"

    def next_phase(
        self, frames: FrameWindow, rng: np.random.Generator
    ) -> PhaseStep | None:
        config = self.config
        while True:
            if self._cursor == "retrain":
                # Retraining (Algorithm 1 lines 4-7); skipped while the
                # buffer is still bootstrapping.
                self._cursor = "label"
                step, outcome = self.do_retrain(rng)
                if step is None:
                    continue
                base_commit = step.commit

                def commit(
                    t0: float,
                    t1: float,
                    _commit=base_commit,
                    _outcome=outcome,
                ) -> bool:
                    drift = _commit(t0, t1)
                    if "accv" in _outcome:
                        self._accv = _outcome["accv"]
                    return drift

                step.commit = commit
                return step

            if self._cursor == "label":
                # Labeling + drift check (lines 8-13).
                step, outcome = self.do_label(
                    frames,
                    config.num_label,
                    rng,
                    check_drift_against=lambda: self._accv,
                )
                base_commit = step.commit

                def commit(
                    t0: float,
                    t1: float,
                    _commit=base_commit,
                    _outcome=outcome,
                ) -> bool:
                    drift = _commit(t0, t1)
                    if _outcome.get("drift", False):
                        extra = config.num_label_drift - config.num_label
                        self._cursor = (
                            "extension" if extra > 0 else "retrain"
                        )
                        # The freshly reset buffer invalidates the old
                        # validation accuracy; wait for the next
                        # retraining to re-establish it.
                        self._accv = None
                    else:
                        self._cursor = "retrain"
                    return drift

                step.commit = commit
                return step

            # Drift escalation: extend labeling from Nl to Nldd.
            extra = config.num_label_drift - config.num_label
            self._cursor = "retrain"
            step, _ = self.do_label(frames, extra, rng)
            return step

    def scheduler_state(self) -> dict:
        return {
            "kind": "dacapo",
            "cursor": self._cursor,
            "accv": self._accv,
        }

    def restore_scheduler_state(self, state: dict) -> None:
        if state.get("kind") != "dacapo":
            raise SnapshotError(
                f"{self.name}: scheduler state kind "
                f"{state.get('kind')!r} is not 'dacapo'"
            )
        cursor = state.get("cursor")
        if cursor not in ("retrain", "label", "extension"):
            raise SnapshotError(
                f"{self.name}: unknown scheduler cursor {cursor!r}"
            )
        self._cursor = cursor
        accv = state.get("accv")
        self._accv = None if accv is None else float(accv)
