"""Performance estimator (paper workflow step 2).

Before deployment, DaCapo estimates the sustained rate of each kernel on
the target platform, for every candidate MX precision.  Those rates feed
the spatial allocator (step 3) and the temporal allocator's phase-duration
arithmetic (step 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.models.graph import ModelGraph
from repro.models.zoo import ModelPair
from repro.mx import FORMATS
from repro.platform.base import Platform

__all__ = ["KernelRates", "PerformanceEstimator"]


@dataclass(frozen=True)
class KernelRates:
    """Sustained samples/second for the three kernels.

    Attributes:
        inference_fps: Student forwards per second (streaming).
        labeling_sps: Teacher forwards per second (batched).
        training_sps: Student training samples per second (one epoch-pass).
        validation_sps: Student forwards per second on the training side.
    """

    inference_fps: float
    labeling_sps: float
    training_sps: float
    validation_sps: float

    def __post_init__(self) -> None:
        for name, value in (
            ("inference_fps", self.inference_fps),
            ("labeling_sps", self.labeling_sps),
            ("training_sps", self.training_sps),
            ("validation_sps", self.validation_sps),
        ):
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class PerformanceEstimator:
    """Rate queries for a (platform, model pair) combination.

    Attributes:
        platform: The execution platform.
        pair: The (student, teacher) model pair.
    """

    platform: Platform
    pair: ModelPair
    #: Per-share memo of :meth:`rates`; rates are pure in (platform, pair,
    #: share), so entries never go stale.
    _rates_cache: dict = field(
        init=False, default_factory=dict, repr=False, compare=False
    )

    def rates(self, share: float = 1.0) -> KernelRates:
        """Kernel rates given the share granted to training-side kernels.

        Inference always reports its dedicated-resource rate (B-SA on
        DaCapo, the priority share on GPUs is applied by the caller).
        Results are cached per share, so repeated queries (the temporal
        allocator probes many shares) walk each model graph once.
        """
        cached = self._rates_cache.get(share)
        if cached is None:
            student: ModelGraph = self.pair.student_graph()
            teacher: ModelGraph = self.pair.teacher_graph()
            cached = KernelRates(
                inference_fps=self.platform.inference_rate(student),
                labeling_sps=self.platform.labeling_rate(teacher, share),
                training_sps=self.platform.training_rate(student, share),
                validation_sps=self.platform.labeling_rate(student, share),
            )
            self._rates_cache[share] = cached
        return cached

    def precision_report(self) -> dict[str, KernelRates]:
        """Kernel rates for every supported MX precision (workflow step 2).

        Only meaningful for platforms with configurable precision; platforms
        without the attributes report their single operating point.
        """
        report: dict[str, KernelRates] = {}
        base = self.platform
        if not hasattr(base, "inference_fmt"):
            report["native"] = self.rates()
            return report

        for fmt in FORMATS:
            configured = replace(
                base,
                inference_fmt=fmt,
                labeling_fmt=fmt,
                training_fmt=fmt,
            )
            estimator = PerformanceEstimator(configured, self.pair)
            report[fmt.name] = estimator.rates()
        return report
