"""Offline hyperparameter tuning (paper section VI-D).

Before deployment, DaCapo tunes the resource-allocation hyperparameters
once per autonomous system by exhaustively exploring the search space on
representative data.  :func:`tune_hyperparameters` implements that search:
a grid over candidate configurations, each evaluated by running the full
spatiotemporal system on (short) calibration scenarios, scored by mean
accuracy.  The paper reports the chosen settings are robust across
environmental scenarios, which :func:`tune_hyperparameters` lets you check
by passing several scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product

import numpy as np

from repro.core.config import DaCapoConfig
from repro.core.runner import build_system, run_on_scenario
from repro.errors import ConfigurationError

__all__ = ["TuningResult", "default_search_space", "tune_hyperparameters"]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a hyperparameter search.

    Attributes:
        best: The winning configuration.
        best_score: Its mean accuracy across calibration scenarios.
        trials: Every evaluated ``(config, score)`` pair, best first.
    """

    best: DaCapoConfig
    best_score: float
    trials: tuple[tuple[DaCapoConfig, float], ...]


def default_search_space() -> dict[str, tuple]:
    """The grid the paper-style offline tuning explores."""
    return {
        "num_train": (128, 256),
        "num_label": (256, 384),
        "drift_label_multiplier": (2, 4),
        "drift_threshold": (-0.12, -0.08, -0.05),
    }


def tune_hyperparameters(
    pair_name: str,
    scenarios: tuple[str, ...] = ("S3", "S5"),
    search_space: dict[str, tuple] | None = None,
    duration_s: float = 300.0,
    base: DaCapoConfig | None = None,
    system_name: str = "DaCapo-Spatiotemporal",
    seed: int = 0,
) -> TuningResult:
    """Grid-search the allocator hyperparameters for one model pair.

    Args:
        pair_name: Model pair to tune for.
        scenarios: Calibration scenarios (scored by their mean accuracy).
        search_space: ``{config_field: candidate values}``; defaults to
            :func:`default_search_space`.
        duration_s: Calibration stream length per run.
        base: Starting configuration for fields outside the space.
        system_name: System variant to tune.
        seed: Run seed.

    Returns:
        The ranked search outcome.
    """
    space = (
        search_space if search_space is not None else default_search_space()
    )
    if not space:
        raise ConfigurationError("search space must not be empty")
    base = base or DaCapoConfig()

    fields = list(space)
    trials: list[tuple[DaCapoConfig, float]] = []
    for values in product(*(space[f] for f in fields)):
        overrides = dict(zip(fields, values))
        try:
            config = replace(base, **overrides)
        except ConfigurationError:
            continue  # invalid combination (e.g. buffer smaller than Nt)
        scores = []
        for scenario in scenarios:
            system = build_system(
                system_name, pair_name, config=config, seed=seed
            )
            result = run_on_scenario(
                system, scenario, seed=seed, duration_s=duration_s
            )
            scores.append(result.average_accuracy())
        trials.append((config, float(np.mean(scores))))

    if not trials:
        raise ConfigurationError("no valid configuration in the search space")
    trials.sort(key=lambda item: item[1], reverse=True)
    best, best_score = trials[0]
    return TuningResult(
        best=best, best_score=best_score, trials=tuple(trials)
    )
