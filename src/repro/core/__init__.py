"""The continuous-learning system: DaCapo's algorithm and its baselines.

This package implements the paper's section VI (spatiotemporal resource
allocation, Algorithm 1) and section VII-A's system simulator: an
event-driven simulation that advances a clock through retraining/labeling
phases whose durations come from the platform's kernel rates, evaluates the
student on every stream frame under the weights active at that moment, and
accounts energy.

Systems:

- :class:`~repro.core.system.DaCapoSystem` -- spatial partition + Algorithm 1
  (the paper's DaCapo-Spatiotemporal).
- :class:`~repro.core.baselines.FixedWindowSystem` -- Ekya-style fixed-window
  scheduling, usable on GPU platforms (OrinLow/High-Ekya), on DaCapo with
  time-multiplexing (DaCapo-Ekya) or with the spatial partition
  (DaCapo-Spatial).
- :class:`~repro.core.baselines.EomuSystem` -- EOMU-style short-window
  triggered retraining.
- :class:`~repro.core.baselines.NoRetrainSystem` -- frozen student or teacher
  (Figure 2's non-continuous-learning bars).
"""

from repro.core.config import DaCapoConfig, hyperparameter_table
from repro.core.buffer import SampleBuffer
from repro.core.estimator import KernelRates, PerformanceEstimator
from repro.core.spatial import allocate_partition
from repro.core.phases import PhaseKind, PhaseRecord
from repro.core.results import RunResult
from repro.core.system import DaCapoSystem
from repro.core.baselines import (
    EomuSystem,
    FixedWindowSystem,
    NoRetrainSystem,
)
from repro.core.runner import SYSTEM_BUILDERS, build_system, run_on_scenario
from repro.core.parallel import (
    Fig2Cell,
    SystemCell,
    default_jobs,
    parallel_map,
    plan_shards,
    run_cells,
    stream_signature,
    warm_model_caches,
)
from repro.core.tuning import (
    TuningResult,
    default_search_space,
    tune_hyperparameters,
)
from repro.core.validate import validate_run

__all__ = [
    "DaCapoConfig",
    "DaCapoSystem",
    "EomuSystem",
    "Fig2Cell",
    "FixedWindowSystem",
    "KernelRates",
    "NoRetrainSystem",
    "PerformanceEstimator",
    "PhaseKind",
    "PhaseRecord",
    "RunResult",
    "SYSTEM_BUILDERS",
    "SampleBuffer",
    "SystemCell",
    "TuningResult",
    "allocate_partition",
    "build_system",
    "default_jobs",
    "default_search_space",
    "hyperparameter_table",
    "parallel_map",
    "plan_shards",
    "run_cells",
    "run_on_scenario",
    "stream_signature",
    "tune_hyperparameters",
    "validate_run",
    "warm_model_caches",
]
