"""Continuous-learning hyperparameters (paper Table I and section VII-A).

Values the paper specifies directly:

- retraining: SGD, learning rate 1e-3, batch 16 (section VII-A);
- ``Nv = Nt / 3`` and ``Nldd = 4 * Nl`` (section VI-B);
- input: 30 FPS, 20-minute scenarios.

The absolute sample counts (``Nt``, ``Nl``, ``Cb``) are tuned offline per
deployment in the paper (section VI-D); our defaults are chosen so the
retrain:label phase-time ratio on the prototype accelerator lands in the
80:20 region the paper's Figure 11 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["DaCapoConfig", "hyperparameter_table"]


@dataclass(frozen=True)
class DaCapoConfig:
    """Hyperparameters of the spatiotemporal resource allocator.

    Attributes:
        num_train: ``Nt`` -- samples drawn from the buffer per retraining.
        num_label: ``Nl`` -- samples labeled per labeling phase.
        drift_label_multiplier: ``Nldd / Nl`` (paper: 4).
        buffer_capacity: ``Cb`` -- labeled-sample buffer size.
        drift_threshold: ``Vthr`` -- drift when ``accl - accv`` falls below.
        epochs: Retraining epochs per phase.
        learning_rate: SGD step size (paper: 1e-3; proxies use a scaled
            value fitting their loss surface, see ``runner``).
        batch_size: Retraining batch (paper: 16).
        frame_rate: Input stream FPS (paper: 30).
        eval_window_s: Accuracy-averaging window (paper plots: 15 s).
    """

    num_train: int = 256
    num_label: int = 384
    drift_label_multiplier: int = 4
    buffer_capacity: int = 1024
    drift_threshold: float = -0.08
    epochs: int = 2
    learning_rate: float = 3e-2
    batch_size: int = 16
    frame_rate: float = 30.0
    eval_window_s: float = 15.0

    def __post_init__(self) -> None:
        if self.num_train < 1 or self.num_label < 1:
            raise ConfigurationError("Nt and Nl must be >= 1")
        if self.drift_label_multiplier < 1:
            raise ConfigurationError("Nldd multiplier must be >= 1")
        if self.buffer_capacity < self.num_train:
            raise ConfigurationError("buffer must hold at least Nt samples")
        if self.drift_threshold >= 0:
            raise ConfigurationError(
                "Vthr must be negative: drift means labeling accuracy "
                "falls below validation accuracy"
            )
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigurationError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0 or self.frame_rate <= 0:
            raise ConfigurationError("rates must be positive")
        if self.eval_window_s <= 0:
            raise ConfigurationError("eval window must be positive")

    @property
    def num_validation(self) -> int:
        """``Nv``: one third of ``Nt`` (section VI-B)."""
        return max(1, self.num_train // 3)

    @property
    def num_label_drift(self) -> int:
        """``Nldd``: the escalated labeling count under drift."""
        return self.drift_label_multiplier * self.num_label


def hyperparameter_table(config: DaCapoConfig | None = None) -> list[dict]:
    """Rows reproducing Table I with this configuration's values."""
    config = config or DaCapoConfig()
    return [
        {"symbol": "Nt", "meaning": "Number of samples for retraining",
         "value": config.num_train},
        {"symbol": "Nv", "meaning": "Number of samples for validation",
         "value": config.num_validation},
        {"symbol": "Nl", "meaning": "Number of samples to label at usual",
         "value": config.num_label},
        {"symbol": "Nldd", "meaning": "Number of samples to label at data drift",
         "value": config.num_label_drift},
        {"symbol": "Cb", "meaning": "Capacity of sample buffer",
         "value": config.buffer_capacity},
        {"symbol": "Vthr", "meaning": "Threshold value to detect data drift",
         "value": config.drift_threshold},
    ]
