"""Run results: per-frame correctness, phase traces, and energy.

The paper's accuracy metric averages accuracy over time slices of the
baseline window period (section VII-A); :meth:`RunResult.average_accuracy`
implements that, and :meth:`RunResult.accuracy_series` produces the
15-second series of Figures 10 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.phases import PhaseKind, PhaseRecord, phase_time_breakdown
from repro.errors import ScheduleError
from repro.learn.metrics import windowed_accuracy

__all__ = ["RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Everything one system run produces.

    Attributes:
        system: System name (e.g. ``"DaCapo-Spatiotemporal"``).
        scenario: Scenario name (e.g. ``"S1"``).
        pair: Model pair name (e.g. ``"resnet18_wrn50"``).
        times: Frame timestamps (every stream frame, dropped or not).
        correct: Per-frame correctness; dropped frames are False.
        dropped: Per-frame drop flags.
        phases: The training-side phase trace.
        duration_s: Total simulated time.
        energy_j: Integrated platform energy.
        average_power_w: Run-average electrical power.
    """

    system: str
    scenario: str
    pair: str
    times: np.ndarray
    correct: np.ndarray
    dropped: np.ndarray
    phases: tuple[PhaseRecord, ...]
    duration_s: float
    energy_j: float
    average_power_w: float

    def __post_init__(self) -> None:
        if not (
            len(self.times) == len(self.correct) == len(self.dropped)
        ):
            raise ScheduleError("frame trace arrays must align")
        if self.duration_s <= 0:
            raise ScheduleError("duration must be positive")

    @property
    def frame_drop_rate(self) -> float:
        """Fraction of stream frames the system failed to process."""
        if len(self.dropped) == 0:
            return 0.0
        return float(np.mean(self.dropped))

    def average_accuracy(self, window_s: float = 15.0) -> float:
        """Mean of per-window accuracies (the paper's end-to-end metric)."""
        _, series = self.accuracy_series(window_s)
        if len(series) == 0:
            return 0.0
        return float(np.mean(series))

    def accuracy_series(
        self, window_s: float = 15.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-window accuracy over time (Figures 10 and 12)."""
        return windowed_accuracy(
            self.times, self.correct, window_s, duration_s=self.duration_s
        )

    def phase_breakdown(self) -> dict[PhaseKind, float]:
        """Seconds spent per phase kind (Figure 11)."""
        return phase_time_breakdown(list(self.phases))

    def retrain_label_ratio(self) -> tuple[float, float]:
        """(retrain, label) shares of busy training-side time (Figure 11)."""
        breakdown = self.phase_breakdown()
        busy = breakdown[PhaseKind.RETRAIN] + breakdown[PhaseKind.LABEL]
        if busy == 0:
            return 0.0, 0.0
        return (
            breakdown[PhaseKind.RETRAIN] / busy,
            breakdown[PhaseKind.LABEL] / busy,
        )

    def drift_detections(self) -> tuple[float, ...]:
        """Times at which labeling phases flagged drift."""
        return tuple(
            p.end_s for p in self.phases if p.drift_detected
        )

    def retraining_completions(self) -> tuple[float, ...]:
        """Times at which retraining phases finished (Figure 10 markers)."""
        return tuple(
            p.end_s for p in self.phases if p.kind is PhaseKind.RETRAIN
        )

    def summary(self) -> dict:
        """Compact dict for reports and serialization."""
        retrain, label = self.retrain_label_ratio()
        return {
            "system": self.system,
            "scenario": self.scenario,
            "pair": self.pair,
            "average_accuracy": self.average_accuracy(),
            "frame_drop_rate": self.frame_drop_rate,
            "retrain_share": retrain,
            "label_share": label,
            "num_retrainings": len(self.retraining_completions()),
            "num_drifts_detected": len(self.drift_detections()),
            "energy_j": self.energy_j,
            "average_power_w": self.average_power_w,
        }

    def to_json(self, window_s: float = 15.0) -> str:
        """Serialize the run (summary + series + phase trace) to JSON."""
        import json

        starts, series = self.accuracy_series(window_s)
        payload = {
            "summary": self.summary(),
            "duration_s": self.duration_s,
            "window_s": window_s,
            "accuracy_series": {
                "window_starts": starts.tolist(),
                "accuracy": series.tolist(),
            },
            "phases": [
                {
                    "kind": p.kind.value,
                    "start_s": p.start_s,
                    "end_s": p.end_s,
                    "samples": p.samples,
                    "drift_detected": p.drift_detected,
                }
                for p in self.phases
            ],
        }
        return json.dumps(payload, indent=2)
