"""Parallel experiment runner: the stable facade over ``repro.exec``.

Historically this module owned the whole dispatch story -- cell
dataclasses, stream-signature sharding, and a hard-coded
``ProcessPoolExecutor``.  That machinery now lives in :mod:`repro.exec`
as pluggable execution backends (serial / process pool / subprocess
workers speaking a JSON-lines protocol, ssh-able) behind a retrying
scheduler; this module keeps the two entry points every experiment calls
and re-exports the cell/planning names it always provided.

Backend selection, in precedence order:

1. an explicit ``backend=`` argument (``"serial"``, ``"process[:N]"``,
   ``"subprocess[:N]"``, or a constructed
   :class:`~repro.exec.backends.ExecutionBackend`);
2. an ambient override installed with :func:`repro.exec.use_backend`
   (what the CLI's ``--backend`` flag does);
3. the ``REPRO_BACKEND`` environment variable;
4. the historical default -- serial when ``jobs <= 1`` or the grid has a
   single cell, the process pool otherwise.

Whatever the transport, results are **identical** to the serial path:
cells seed their own RNGs, shards group by stream signature so workers
share materialized streams, and submission order is restored -- the
frozen reference digests are verified across every backend.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

from repro.core.results import RunResult
from repro.errors import ConfigurationError

# NOTE: only repro.exec.shard may be imported at module scope here.
# ``repro.core.__init__`` imports this module, and every ``repro.exec``
# module imports some ``repro.core`` submodule -- so on a cold
# ``import repro.exec`` this module executes while ``repro.exec.backends``
# is still half-initialized.  The backend/scheduler imports therefore
# happen lazily inside the functions that need them.
from repro.exec.shard import (
    Fig2Cell,
    SystemCell,
    plan_shards,
    run_cell as _run_cell,  # noqa: F401  (compat: tests/callers import it)
    stream_signature,
    warm_model_caches,
)
from repro.numeric import active_policy, use_policy

__all__ = [
    "Fig2Cell",
    "JOBS_ENV",
    "SystemCell",
    "default_jobs",
    "parallel_map",
    "plan_shards",
    "positive_int_env",
    "run_cells",
    "stream_signature",
    "warm_model_caches",
]

#: Environment variable pinning the default worker count (CI, remote
#: workers) without per-command ``--jobs`` flags.
JOBS_ENV = "REPRO_JOBS"


def positive_int_env(name: str) -> int | None:
    """``$name`` as a validated positive int; None when unset/empty.

    The shared parser behind every count-like knob (``REPRO_JOBS``, the
    sweep abort injector): garbage raises :class:`ConfigurationError`
    with a uniform message instead of silently defaulting.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a positive integer, got {raw!r}"
        )
    if value < 1:
        raise ConfigurationError(
            f"{name} must be a positive integer, got {raw!r}"
        )
    return value


def default_jobs() -> int:
    """The default worker count: ``$REPRO_JOBS`` if set, else usable CPUs.

    ``REPRO_JOBS`` must be a positive integer
    (:class:`ConfigurationError` otherwise); it exists so CI and remote
    workers can pin parallelism fleet-wide.  The CPU fallback uses
    ``sched_getaffinity``, which respects container/cgroup CPU masks that
    ``os.cpu_count`` does not; oversubscribing a quota-limited container
    with host-count workers is slower than running serially.
    """
    pinned = positive_int_env(JOBS_ENV)
    if pinned is not None:
        return pinned
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


def run_cells(
    cells: Sequence[SystemCell | Fig2Cell],
    jobs: int = 1,
    backend=None,
) -> list[RunResult]:
    """Run grid cells on the selected backend; results keep cell order.

    Args:
        cells: The grid, in the order results should come back.
        jobs: Worker processes; 1 runs serially in this process and 0
            means "all cores" (:func:`default_jobs`).  A backend spec
            carrying its own ``:N`` takes precedence.
        backend: Optional backend spec string or instance; None consults
            the ambient selection (see module docstring).

    Returns:
        One :class:`RunResult` per cell, aligned with ``cells`` --
        bit-identical on every backend at any worker count.

    Raises:
        ConfigurationError: Invalid jobs/backend/cell types.
        ShardFailure: A shard could not be completed after the
            scheduler's bounded retries (e.g. workers kept dying); the
            failure names the affected cells.
    """
    from repro.exec.backends import resolve_backend
    from repro.exec.scheduler import execute_cells

    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    cells = list(cells)
    instance, workers, owned = resolve_backend(backend, jobs, len(cells))
    try:
        return execute_cells(cells, backend=instance, workers=workers)
    finally:
        if owned:
            instance.close()


def _policy_call(payload: tuple) -> object:
    """Run one mapped call under the parent's numeric policy (worker side)."""
    policy_name, fn, item = payload
    with use_policy(policy_name):
        return fn(item)


def parallel_map(
    fn: Callable, items: Iterable, jobs: int = 1
) -> list:
    """Order-preserving map, in-process or across worker processes.

    Args:
        fn: A module-level (pickleable) callable of one argument.
        items: Inputs, in the order results should come back.
        jobs: Worker processes; 1 maps in-process, 0 means "all cores".

    Lightweight experiments (Table II/III rows, the ablation sweeps) fan
    out through this rather than hand-rolling executors; results are
    identical at any jobs count.  The ambient backend selection applies
    with one caveat: arbitrary callables cannot cross the JSON shard
    protocol, so ``subprocess`` and ``queue`` degrade to the local
    process pool here (``serial`` forces in-process, and a ``:N`` pins
    the worker count).
    The parent's active numeric policy is re-installed around every
    mapped call, so policy overrides survive into spawn-started workers
    exactly as they do for ``run_cells``.
    """
    from repro.exec.backends import active_backend_spec, parse_backend

    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    spec = active_backend_spec()
    if spec is not None:
        kind, workers = parse_backend(spec)
        if kind == "serial":
            jobs = 1
        elif workers is not None:
            jobs = workers
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    policy_name = active_policy().name
    payloads = [(policy_name, fn, item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(_policy_call, payloads, chunksize=1))
