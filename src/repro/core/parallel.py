"""Parallel experiment runner: shard (scenario, seed) work over cores.

The experiment grids (6 systems x 6 scenarios x 3 pairs for Figure 9 and
friends) are embarrassingly parallel: every cell builds its own system from
a seed and runs it over its own materialized stream, sharing no mutable
state.  This module executes such grids with a :class:`ProcessPoolExecutor`
while keeping results *identical* to the serial path:

- Cells are described declaratively (:class:`SystemCell` / :class:`Fig2Cell`)
  and dispatched by module-level workers, so they pickle cleanly.
- Results come back in submission order regardless of completion order.
- Each cell seeds its own RNGs exactly as the serial code does, so a cell's
  :class:`~repro.core.results.RunResult` does not depend on which process
  ran it, on how many workers there were, or on how cells were sharded.

**Sharding.**  Cells are grouped into shards by their stream signature --
(scenario, seed, duration) -- and each shard runs inside one worker, so the
36,000-frame stream every cell of the shard consumes is materialized (or
memmap-opened from the artifact store, :mod:`repro.data.artifacts`) once
per worker instead of once per cell.  When the grid has fewer distinct
streams than workers, the largest shards are split so all cores stay busy;
split shards still share the stream through the store's disk tier.

Model pretraining is the per-process fixed cost; before forking, the parent
warms the in-process (and on-disk, see :mod:`repro.learn.cache`) pretrained
model caches for every distinct (pair, seed) in the grid, so workers
inherit warm caches instead of each re-running seconds of SGD.

Two pieces of parent context are threaded into every shard explicitly:
the active :class:`~repro.numeric.NumericPolicy` (contextvar overrides do
not survive spawn-started workers) and whether profiling is on -- workers
then profile their own phases and ship the snapshot back for the parent
to merge, so ``--profile`` composes with ``--jobs > 1``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro import profiling
from repro.core.results import RunResult
from repro.core.runner import build_fig2_system, build_system, run_on_scenario
from repro.errors import ConfigurationError
from repro.learn.student import make_student
from repro.learn.teacher import make_teacher
from repro.models.zoo import get_pair
from repro.numeric import active_policy, use_policy

__all__ = [
    "Fig2Cell",
    "SystemCell",
    "default_jobs",
    "parallel_map",
    "plan_shards",
    "run_cells",
    "stream_signature",
    "warm_model_caches",
]


@dataclass(frozen=True)
class SystemCell:
    """One grid cell: a Figure-9-style system on one scenario.

    Attributes:
        system: System name from :data:`repro.core.runner.SYSTEM_BUILDERS`.
        pair: Model-pair name.
        scenario: Scenario name (Table II).
        seed: Model-init and stream seed.
        duration_s: Stream length override (None = scenario default).
    """

    system: str
    pair: str
    scenario: str
    seed: int = 0
    duration_s: float | None = None


@dataclass(frozen=True)
class Fig2Cell:
    """One Figure-2 cell: frozen student/teacher or idealized Ekya on a GPU.

    Attributes:
        kind: ``"student"``, ``"teacher"``, or ``"ekya"``.
        platform: ``"RTX3090"``, ``"OrinHigh"``, or ``"OrinLow"``.
        pair: Model-pair name.
        scenario: Scenario name.
        seed: Stream seed (model init uses the builder default, matching
            the serial Figure 2 code).
        duration_s: Stream length override.
    """

    kind: str
    platform: str
    pair: str
    scenario: str
    seed: int = 0
    duration_s: float | None = None


_CellTypes = (SystemCell, Fig2Cell)


def _run_cell(cell) -> RunResult:
    """Execute one cell (runs inside worker processes; must stay pickleable)."""
    if isinstance(cell, SystemCell):
        system = build_system(cell.system, cell.pair, seed=cell.seed)
    elif isinstance(cell, Fig2Cell):
        system = build_fig2_system(cell.kind, cell.platform, cell.pair)
    else:
        raise ConfigurationError(f"unknown grid cell type {type(cell)!r}")
    return run_on_scenario(
        system, cell.scenario, seed=cell.seed, duration_s=cell.duration_s
    )


def _run_shard(
    payload: tuple,
) -> tuple[list[RunResult], dict | None]:
    """Execute one shard of stream-sharing cells, in order.

    ``payload`` is ``(cells, policy_name, profile)``.  The numeric policy
    is re-installed explicitly in the worker -- a ``use_policy`` override
    in the parent is a contextvar and would not survive a spawn-started
    worker -- so shard results are policy-correct at any worker count.

    The first cell materializes (or memmap-opens) the shard's stream; the
    rest hit the artifact store's in-process LRU.  When ``profile`` is
    set, the shard runs under its own profiler and returns the snapshot
    alongside the results so the parent can aggregate worker phase times
    (``--profile`` composing with ``--jobs > 1``).
    """
    cells, policy_name, profile = payload
    with use_policy(policy_name):
        if not profile:
            return [_run_cell(cell) for cell in cells], None
        profiler = profiling.enable()
        try:
            results = [_run_cell(cell) for cell in cells]
            return results, profiler.snapshot()
        finally:
            profiling.disable()


def stream_signature(cell) -> tuple:
    """The (scenario, seed, duration) key identifying a cell's stream.

    Cells sharing a signature consume the same materialized stream, so the
    signature is both the sharding key here and the dedup/cost unit the
    sweep planner (:mod:`repro.sweep.plan`) reports before running a fleet.
    """
    return (cell.scenario, cell.seed, cell.duration_s)


def plan_shards(
    cells: Sequence, jobs: int
) -> list[list[tuple[int, object]]]:
    """Group (index, cell) pairs into stream-sharing shards.

    Shards are split (largest first) until there is one per worker or
    nothing splittable remains, so small grids with few distinct streams
    still use every core.  Splits interleave (evens/odds) rather than
    halve: grids typically order cells cheap-systems-first within a
    scenario, and contiguous halves would put every expensive system in
    one worker.  Result order is restored from the carried indices, so
    the split pattern never affects output.

    This is exactly the decomposition :func:`run_cells` executes; it is
    public so planners can estimate materialization counts and worker
    balance without running anything.
    """
    groups: dict[tuple, list[tuple[int, object]]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault(stream_signature(cell), []).append((index, cell))
    shards = list(groups.values())
    target = min(jobs, len(cells))
    while len(shards) < target:
        largest = max(range(len(shards)), key=lambda i: len(shards[i]))
        if len(shards[largest]) <= 1:
            break
        shard = shards.pop(largest)
        shards.extend([shard[::2], shard[1::2]])
    return shards


def warm_model_caches(cells: Iterable[SystemCell | Fig2Cell]) -> None:
    """Pretrain every distinct (pair, seed) once in this process.

    Forked workers inherit the warmed ``lru_cache`` entries for free; spawn
    workers (or separate invocations) hit the on-disk cache instead.  The
    MX-format arguments do not matter here -- pretrained weights are
    precision-independent -- so the default-format constructors suffice.
    """
    seen: set[tuple[str, int]] = set()
    for cell in cells:
        model_seed = cell.seed if isinstance(cell, SystemCell) else 0
        key = (cell.pair, model_seed)
        if key in seen:
            continue
        seen.add(key)
        pair = get_pair(cell.pair)
        make_student(pair.student, seed=model_seed)
        make_teacher(pair.teacher, seed=model_seed)


def default_jobs() -> int:
    """A sensible worker count: the CPUs this process may actually use.

    ``sched_getaffinity`` respects container/cgroup CPU masks, which
    ``os.cpu_count`` does not; oversubscribing a quota-limited container
    with host-count workers is slower than running serially.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


def run_cells(
    cells: Sequence[SystemCell | Fig2Cell], jobs: int = 1
) -> list[RunResult]:
    """Run grid cells, serially or across processes; results keep cell order.

    Args:
        cells: The grid, in the order results should come back.
        jobs: Worker processes; 1 runs serially in this process (the exact
            code path the serial experiments use) and 0 means "all cores"
            (:func:`default_jobs`).

    Returns:
        One :class:`RunResult` per cell, aligned with ``cells``.
    """
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    cells = list(cells)
    for cell in cells:
        if not isinstance(cell, _CellTypes):
            raise ConfigurationError(
                f"unknown grid cell type {type(cell)!r}"
            )
    if jobs <= 1 or len(cells) <= 1:
        # Serial cells still share streams through the artifact store.
        return [_run_cell(cell) for cell in cells]

    warm_model_caches(cells)
    shards = plan_shards(cells, jobs)
    policy_name = active_policy().name
    profiler = profiling.active()
    payloads = [
        (
            tuple(cell for _, cell in shard),
            policy_name,
            profiler is not None,
        )
        for shard in shards
    ]
    workers = min(jobs, len(shards))
    results: list[RunResult | None] = [None] * len(cells)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for shard, (outputs, snapshot) in zip(
            shards, pool.map(_run_shard, payloads, chunksize=1)
        ):
            for (index, _), result in zip(shard, outputs):
                results[index] = result
            if profiler is not None and snapshot:
                # Worker phase seconds fold into the parent profile, so
                # --profile composes with --jobs > 1 (totals become CPU
                # seconds across processes).
                profiler.merge(snapshot)
    return results


def _policy_call(payload: tuple) -> object:
    """Run one mapped call under the parent's numeric policy (worker side)."""
    policy_name, fn, item = payload
    with use_policy(policy_name):
        return fn(item)


def parallel_map(
    fn: Callable, items: Iterable, jobs: int = 1
) -> list:
    """Order-preserving map, in-process or across worker processes.

    Args:
        fn: A module-level (pickleable) callable of one argument.
        items: Inputs, in the order results should come back.
        jobs: Worker processes; 1 maps in-process, 0 means "all cores".

    Lightweight experiments (Table II/III rows, the ablation sweeps) fan
    out through this rather than hand-rolling executors; results are
    identical at any jobs count.  The parent's active numeric policy is
    re-installed around every mapped call, so policy overrides survive
    into spawn-started workers exactly as they do for ``run_cells``.
    """
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    policy_name = active_policy().name
    payloads = [(policy_name, fn, item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(_policy_call, payloads, chunksize=1))
