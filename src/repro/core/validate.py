"""Schedule-trace validation: invariants every system run must satisfy.

These checks encode the simulator's contract -- phases tile the run without
overlap, drift reactions follow the algorithm, frame accounting is
consistent -- and are exercised by property-based tests that run systems
under randomized configurations.
"""

from __future__ import annotations

import numpy as np

from repro.core.phases import PhaseKind
from repro.core.results import RunResult
from repro.errors import ScheduleError

__all__ = ["validate_run"]

_TOLERANCE = 1e-6


def validate_run(result: RunResult) -> None:
    """Raise :class:`ScheduleError` if the run trace violates an invariant.

    Checked invariants:

    - phases are chronological, non-overlapping, and inside the run;
    - the trace covers the full run (no unaccounted time at the end);
    - every frame timestamp lies within the run;
    - dropped frames are never counted correct;
    - a drift detection is immediately followed by a labeling phase
      (Algorithm 1's escalation) unless the run ends first.
    """
    phases = result.phases
    if phases:
        if phases[0].start_s < -_TOLERANCE:
            raise ScheduleError("first phase starts before the run")
        for prev, nxt in zip(phases, phases[1:]):
            if nxt.start_s < prev.end_s - _TOLERANCE:
                raise ScheduleError(
                    f"phases overlap: {prev} then {nxt}"
                )
            if nxt.start_s > prev.end_s + _TOLERANCE:
                raise ScheduleError(
                    f"schedule gap between {prev.end_s} and {nxt.start_s}"
                )
        if phases[-1].end_s > result.duration_s + _TOLERANCE:
            raise ScheduleError("phase extends past the run's end")
        if phases[-1].end_s < result.duration_s - _TOLERANCE:
            raise ScheduleError("trace leaves trailing time unaccounted")

    times = np.asarray(result.times)
    if len(times) and (times.min() < -_TOLERANCE
                       or times.max() > result.duration_s + _TOLERANCE):
        raise ScheduleError("frame timestamps outside the run")
    if np.any(np.asarray(result.correct)[np.asarray(result.dropped)]):
        raise ScheduleError("a dropped frame was scored correct")

    for i, phase in enumerate(phases):
        if not phase.drift_detected:
            continue
        if i + 1 < len(phases):
            if phases[i + 1].kind is not PhaseKind.LABEL:
                raise ScheduleError(
                    "drift detection not followed by escalated labeling"
                )
