"""Baseline continuous-learning systems (paper section VII-A).

- :class:`FixedWindowSystem` -- Ekya's scheduling shape: a fixed window,
  retraining at the window start on the buffered samples, labeling for the
  remainder.  Running it on a GPU platform gives OrinLow/High-Ekya; on the
  time-shared DaCapo platform it gives DaCapo-Ekya; on the partitioned
  platform it gives DaCapo-Spatial (static spatial allocation, no temporal
  adaptation).
- :class:`EomuSystem` -- EOMU's shape: short monitoring windows (10 s per
  the paper), labeling a small probe every window, and *triggering*
  retraining only when the student's agreement with the teacher degrades.
- :class:`NoRetrainSystem` -- a frozen model (student or teacher) running
  plain inference: Figure 2's non-continuous-learning bars.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DaCapoConfig
from repro.core.phases import PhaseKind
from repro.core.system import CLSystemBase, PhaseStep
from repro.data.stream import FrameWindow
from repro.errors import ConfigurationError, SnapshotError
from repro.learn.student import StudentModel
from repro.learn.teacher import TeacherModel
from repro.models.zoo import ModelPair
from repro.platform.base import Platform

__all__ = ["FixedWindowSystem", "EomuSystem", "NoRetrainSystem"]

#: Ekya's retraining window (seconds).
EKYA_WINDOW_S = 120.0

#: EOMU's monitoring window (paper: 10 seconds).
EOMU_WINDOW_S = 10.0

#: EOMU probe size per monitoring window.
EOMU_PROBE_LABELS = 48

#: EOMU triggers retraining when agreement falls this far below its
#: exponential moving average.
EOMU_TRIGGER_DROP = 0.03

#: EOMU retrains briefly (shorter than Ekya) once triggered.
EOMU_RETRAIN_SAMPLES = 128
EOMU_EMA_ALPHA = 0.5


#: Fraction of stream frames Ekya samples for labeling each window.
EKYA_SAMPLING_RATE = 0.10


class FixedWindowSystem(CLSystemBase):
    """Ekya-style fixed-window scheduler.

    Every window: retrain on the sample buffer (if populated), then label a
    fixed sampling-rate subset of the window's frames (bounded by labeling
    throughput).  No drift reaction -- window boundaries are the only
    adaptation granularity, which is exactly the limitation the paper's
    temporal allocator removes.
    """

    def __init__(
        self,
        name: str,
        platform: Platform,
        pair: ModelPair,
        student: StudentModel,
        teacher: TeacherModel | None,
        config: DaCapoConfig,
        window_s: float = EKYA_WINDOW_S,
        sampling_rate: float = EKYA_SAMPLING_RATE,
    ) -> None:
        super().__init__(name, platform, pair, student, teacher, config)
        if window_s <= 0:
            raise ConfigurationError("window must be positive")
        if not 0 < sampling_rate <= 1:
            raise ConfigurationError("sampling rate must be in (0, 1]")
        self.window_s = window_s
        self.sampling_rate = sampling_rate
        self._win_pos = "start"
        self._win_used = 0.0
        self._win_num_label = 0
        self._win_label_time = 0.0

    def next_phase(
        self, frames: FrameWindow, rng: np.random.Generator
    ) -> PhaseStep | None:
        while True:
            if self._win_pos == "start":
                # Retraining must fit the window; what does not fit is cut
                # (incomplete models under resource starvation, as on
                # OrinLow).
                step, _ = self.do_retrain(
                    rng, max_duration_s=self.window_s
                )
                self._win_pos = "tail"
                if step is not None:
                    self._win_used = step.duration_s
                    return step
                self._win_used = 0.0
                continue
            if self._win_pos == "tail":
                remaining = self.window_s - self._win_used
                self._win_pos = "start"
                if remaining <= 0:
                    continue
                sps = self.labeling_sps()
                target = int(
                    self.sampling_rate * self.config.frame_rate * remaining
                )
                num_label = (
                    min(target, int(sps * remaining)) if sps > 0 else 0
                )
                if num_label < 1:
                    return PhaseStep(PhaseKind.IDLE, remaining)
                step, _ = self.do_label(frames, num_label, rng)
                label_time = min(step.duration_s, remaining)
                # Idle first, then label at the window tail so the
                # freshest samples feed the next window's retraining.
                if remaining - label_time > 1e-9:
                    self._win_pos = "label"
                    self._win_num_label = num_label
                    self._win_label_time = label_time
                    return PhaseStep(
                        PhaseKind.IDLE, remaining - label_time
                    )
                step.duration_s = label_time
                return step
            # "label": the window-tail labeling after its idle gap.
            # Generating a label step consumes no RNG, so regenerating it
            # here (after a checkpoint/resume) is exact.
            self._win_pos = "start"
            step, _ = self.do_label(frames, self._win_num_label, rng)
            step.duration_s = self._win_label_time
            return step

    def scheduler_state(self) -> dict:
        return {
            "kind": "fixed_window",
            "pos": self._win_pos,
            "used": self._win_used,
            "num_label": self._win_num_label,
            "label_time": self._win_label_time,
        }

    def restore_scheduler_state(self, state: dict) -> None:
        if state.get("kind") != "fixed_window":
            raise SnapshotError(
                f"{self.name}: scheduler state kind "
                f"{state.get('kind')!r} is not 'fixed_window'"
            )
        pos = state.get("pos")
        if pos not in ("start", "tail", "label"):
            raise SnapshotError(
                f"{self.name}: unknown scheduler cursor {pos!r}"
            )
        self._win_pos = pos
        self._win_used = float(state.get("used", 0.0))
        self._win_num_label = int(state.get("num_label", 0))
        self._win_label_time = float(state.get("label_time", 0.0))


class EomuSystem(CLSystemBase):
    """EOMU-style short-window triggered retraining.

    Each 10-second window labels a small probe of fresh frames (feeding the
    buffer) and tracks the student-teacher agreement.  A drop below the
    agreement's moving average triggers a short retraining in the next
    window -- frequent small retrainings, as Figure 10's dense markers show.
    """

    def __init__(
        self,
        name: str,
        platform: Platform,
        pair: ModelPair,
        student: StudentModel,
        teacher: TeacherModel | None,
        config: DaCapoConfig,
        window_s: float = EOMU_WINDOW_S,
    ) -> None:
        super().__init__(name, platform, pair, student, teacher, config)
        if window_s <= 0:
            raise ConfigurationError("window must be positive")
        self.window_s = window_s
        self._agreement_ema: float | None = None
        self._retrain_pending = False

    def next_phase(
        self, frames: FrameWindow, rng: np.random.Generator
    ) -> PhaseStep | None:
        config = self.config
        if self._retrain_pending and len(self.buffer) >= 16:
            self._retrain_pending = False
            (x_train, y_train), _ = self.buffer.draw(
                EOMU_RETRAIN_SAMPLES, 1, rng
            )
            # Retraining is squeezed into one monitoring window; the
            # samples that do not fit are dropped (incomplete models).
            duration = self.retrain_duration_s(len(x_train), 0)
            if duration > self.window_s:
                keep = max(
                    16, int(len(x_train) * self.window_s / duration)
                )
                x_train, y_train = x_train[:keep], y_train[:keep]
                duration = min(
                    self.retrain_duration_s(len(x_train), 0),
                    self.window_s,
                )

            def commit(t0: float, t1: float) -> bool:
                self.student.retrain(
                    x_train,
                    y_train,
                    epochs=1,
                    rng=rng,
                    learning_rate=config.learning_rate,
                    batch_size=config.batch_size,
                )
                return False

            return PhaseStep(
                PhaseKind.RETRAIN, duration, len(x_train), commit
            )

        # Monitoring window: probe-label fresh frames.
        step, outcome = self.do_label(frames, EOMU_PROBE_LABELS, rng)
        step.duration_s = self.window_s
        base_commit = step.commit

        def commit(
            t0: float, t1: float, _commit=base_commit, _outcome=outcome
        ) -> bool:
            drift = _commit(t0, t1)
            accl = _outcome.get("accl")
            if accl is not None:
                if (
                    self._agreement_ema is not None
                    and accl < self._agreement_ema - EOMU_TRIGGER_DROP
                ):
                    self._retrain_pending = True
                if self._agreement_ema is None:
                    self._agreement_ema = accl
                else:
                    self._agreement_ema = (
                        EOMU_EMA_ALPHA * accl
                        + (1 - EOMU_EMA_ALPHA) * self._agreement_ema
                    )
            return drift

        step.commit = commit
        return step

    def scheduler_state(self) -> dict:
        return {
            "kind": "eomu",
            "ema": self._agreement_ema,
            "pending": self._retrain_pending,
        }

    def restore_scheduler_state(self, state: dict) -> None:
        if state.get("kind") != "eomu":
            raise SnapshotError(
                f"{self.name}: scheduler state kind "
                f"{state.get('kind')!r} is not 'eomu'"
            )
        ema = state.get("ema")
        self._agreement_ema = None if ema is None else float(ema)
        self._retrain_pending = bool(state.get("pending", False))


class NoRetrainSystem(CLSystemBase):
    """A frozen model running plain inference (no continuous learning).

    Used for Figure 2's Student/Teacher bars.  When ``deploy_teacher`` is
    True, the ``student`` argument is expected to wrap the *teacher's*
    weights, and the frame-drop rate is computed from the teacher's
    architecture (deploying a heavyweight model is exactly what causes the
    Orin frame drops in Figure 2).
    """

    def __init__(
        self,
        name: str,
        platform: Platform,
        pair: ModelPair,
        student: StudentModel,
        teacher: TeacherModel | None,
        config: DaCapoConfig,
        deploy_teacher: bool = False,
    ) -> None:
        super().__init__(name, platform, pair, student, teacher, config)
        if deploy_teacher:
            graph = pair.teacher_graph()
            self.inference_fps = platform.inference_rate(graph)
            self.drop_rate = max(
                0.0, 1.0 - self.inference_fps / config.frame_rate
            )

    def next_phase(
        self, frames: FrameWindow, rng: np.random.Generator
    ) -> PhaseStep | None:
        return None  # no training-side phases at all
