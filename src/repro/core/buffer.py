"""The fixed-capacity labeled-sample buffer (Algorithm 1's ``Bcur``).

FIFO eviction keeps the buffer biased toward recent data; ``reset`` clears
it entirely when drift is detected so outdated samples stop polluting
retraining (Algorithm 1, line 12).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScheduleError
from repro.numeric import active_policy

__all__ = ["SampleBuffer"]


class SampleBuffer:
    """Bounded store of teacher-labeled samples.

    Features are stored in the numeric policy dtype active when the buffer
    was built, so float32 stream windows are buffered (and later drawn for
    retraining) without a round trip through float64.

    Args:
        capacity: ``Cb``, the maximum number of retained samples.
        feature_dim: Dimensionality of stored features.
    """

    def __init__(self, capacity: int, feature_dim: int) -> None:
        if capacity < 1:
            raise ScheduleError("buffer capacity must be >= 1")
        if feature_dim < 1:
            raise ScheduleError("feature_dim must be >= 1")
        self.capacity = capacity
        self.feature_dim = feature_dim
        self.dtype = active_policy().dtype
        self._features = np.empty((0, feature_dim), dtype=self.dtype)
        self._labels = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def features(self) -> np.ndarray:
        """View of the stored features (oldest first)."""
        return self._features

    @property
    def labels(self) -> np.ndarray:
        """View of the stored (teacher) labels."""
        return self._labels

    def add(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Append labeled samples, evicting the oldest beyond capacity."""
        features = np.asarray(features, dtype=self.dtype)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2 or features.shape[1] != self.feature_dim:
            raise ScheduleError(
                f"expected (n, {self.feature_dim}) features, "
                f"got {features.shape}"
            )
        if len(features) != len(labels):
            raise ScheduleError("features and labels must align")
        self._features = np.concatenate([self._features, features])
        self._labels = np.concatenate([self._labels, labels])
        if len(self._labels) > self.capacity:
            start = len(self._labels) - self.capacity
            self._features = self._features[start:]
            self._labels = self._labels[start:]

    def reset(self) -> None:
        """Discard every stored sample (drift response)."""
        self._features = np.empty((0, self.feature_dim), dtype=self.dtype)
        self._labels = np.empty(0, dtype=np.int64)

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the stored ``(features, labels)``, oldest first."""
        return self._features.copy(), self._labels.copy()

    def restore(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Replace the contents with a :meth:`snapshot`'s arrays.

        Raises:
            ScheduleError: If the arrays do not fit this buffer's shape,
                dtype, or capacity.
        """
        features = np.asarray(features)
        labels = np.asarray(labels)
        if features.ndim != 2 or features.shape[1] != self.feature_dim:
            raise ScheduleError(
                f"expected (n, {self.feature_dim}) features, "
                f"got {features.shape}"
            )
        if features.dtype != self.dtype:
            raise ScheduleError(
                f"expected {self.dtype} features, got {features.dtype}"
            )
        if len(features) != len(labels):
            raise ScheduleError("features and labels must align")
        if len(labels) > self.capacity:
            raise ScheduleError(
                f"{len(labels)} samples exceed capacity {self.capacity}"
            )
        self._features = features.copy()
        self._labels = np.asarray(labels, dtype=np.int64).copy()

    def draw(
        self, num_train: int, num_validation: int, rng: np.random.Generator
    ) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
        """Disjoint retraining and validation sets (Algorithm 1, line 4).

        When the buffer holds fewer than ``num_train + num_validation``
        samples, both sets shrink proportionally (at least one sample each
        when the buffer is non-empty).

        Raises:
            ScheduleError: If the buffer is empty.
        """
        total = len(self)
        if total == 0:
            raise ScheduleError("cannot draw from an empty buffer")
        want = num_train + num_validation
        if want > total:
            scale = total / want
            num_train = max(1, int(num_train * scale))
            num_validation = max(1, min(
                total - num_train, int(num_validation * scale)
            ))
        picked = rng.choice(total, size=num_train + num_validation,
                            replace=False)
        train_idx = picked[:num_train]
        val_idx = picked[num_train:]
        return (
            (self._features[train_idx], self._labels[train_idx]),
            (self._features[val_idx], self._labels[val_idx]),
        )
