"""Offline spatial resource allocation (paper workflow step 3).

Finds the minimum number of B-SA rows that sustains student inference at
the input frame rate, and assigns every remaining row to T-SA, maximizing
the resources available to retraining and labeling (section VI-B:
"prioritize Rtsa ... while ensuring Rbsa is sufficient to meet the latency
requirements of streaming input frames").
"""

from __future__ import annotations

from repro.accelerator import (
    AcceleratorSimulator,
    Partition,
    SystolicArray,
)
from repro.errors import PartitionError
from repro.models.graph import ModelGraph
from repro.mx import MX6, MXFormat

__all__ = ["allocate_partition", "min_inference_rows"]


def min_inference_rows(
    array: SystolicArray,
    student: ModelGraph,
    frame_rate: float,
    fmt: MXFormat = MX6,
    simulator: AcceleratorSimulator | None = None,
) -> int:
    """Smallest B-SA row count whose inference throughput meets the FPS.

    Raises:
        PartitionError: If even the full array cannot keep up.
    """
    if frame_rate <= 0:
        raise PartitionError("frame rate must be positive")
    simulator = simulator or AcceleratorSimulator()
    for rows_bsa in range(1, array.rows + 1):
        _, bsa = array.split(array.rows - rows_bsa)
        fps = simulator.inference_throughput(student, fmt, bsa, batch=1)
        if fps >= frame_rate:
            return rows_bsa
    raise PartitionError(
        f"{student.name}: even {array.rows} rows sustain < "
        f"{frame_rate} FPS at {fmt}"
    )


def allocate_partition(
    array: SystolicArray,
    student: ModelGraph,
    frame_rate: float,
    fmt: MXFormat = MX6,
    simulator: AcceleratorSimulator | None = None,
) -> Partition:
    """The committed split: minimal B-SA, everything else to T-SA.

    T-SA keeps at least one row so retraining and labeling can run at all;
    if inference needs every row, allocation fails.
    """
    rows_bsa = min_inference_rows(array, student, frame_rate, fmt, simulator)
    rows_tsa = array.rows - rows_bsa
    if rows_tsa < 1:
        raise PartitionError(
            f"{student.name}: inference consumes all {array.rows} rows; "
            "no T-SA resources remain for retraining and labeling"
        )
    return Partition(array, rows_tsa)
