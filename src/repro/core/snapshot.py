"""Resumable run-state snapshots: the incremental-window substrate.

A :class:`RunCheckpoint` freezes everything a
:class:`~repro.core.system.RunExecution` needs to continue a run past a
*safe point*: student/teacher weights, the sample buffer, the RNG
bit-generator state, the clock, the per-frame correct/dropped prefixes,
the committed phase records, and the scheduler's cursor.  Encoded with
:func:`encode_run_snapshot` it becomes a JSON-safe payload (arrays ride
the same base64+dtype/shape codec the shard protocol uses) that the fleet
service journals per stream, so window ``i+1`` replays only its own
``window_s`` stream-seconds instead of the whole prefix.

The contract is bit-identity, enforced two ways:

- **Safe points are segment-aligned prefixes.**  Stream materialization
  seeds each :data:`~repro.data.scenarios.SEGMENT_S`-second segment
  independently, so a truncated stream is a bit-exact prefix of a longer
  one only when the truncation lands on a segment boundary.
  :func:`decode_run_snapshot` refuses snapshots whose *origin* duration is
  unaligned -- resuming one would silently diverge from the prefix run.
- **Mismatch means recompute, never reuse.**  A snapshot names its
  version, numeric policy, system, scenario, and seed; any mismatch (or a
  future :data:`SNAPSHOT_VERSION` bump) raises :class:`SnapshotError`,
  which every caller treats as "fall back to a full prefix run".  The
  fallback is slower, never wrong.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass

import numpy as np

from repro.core.phases import PhaseKind, PhaseRecord
from repro.data.scenarios import SEGMENT_S
from repro.errors import SnapshotError

__all__ = [
    "SNAPSHOT_VERSION",
    "RunCheckpoint",
    "decode_array",
    "decode_run_snapshot",
    "encode_array",
    "encode_run_snapshot",
    "stream_prefix_aligned",
]

#: Bump on any incompatible snapshot-shape or replay-semantics change;
#: decoding an older snapshot then fails loudly and the caller recomputes
#: the window as a prefix run instead of resuming mismatched state.
SNAPSHOT_VERSION = 1


def encode_array(array: np.ndarray) -> dict:
    """Base64 raw bytes + dtype + shape: exact and compact."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """The inverse of :func:`encode_array`."""
    return np.frombuffer(
        base64.b64decode(payload["data"]), dtype=np.dtype(payload["dtype"])
    ).reshape(payload["shape"])


def stream_prefix_aligned(
    duration_s: float, segment_s: float = SEGMENT_S
) -> bool:
    """Whether a stream truncated at ``duration_s`` is a bit-exact prefix.

    Scenario materialization seeds each ``segment_s``-second segment
    independently, and within a segment label draws interleave with
    feature draws -- so two streams of different durations agree on their
    overlap only when the shorter one ends exactly on a segment boundary.
    """
    if duration_s <= 0:
        return False
    ratio = duration_s / segment_s
    return abs(ratio - round(ratio)) < 1e-9


@dataclass
class RunCheckpoint:
    """Everything needed to continue a run from a committed safe point.

    ``correct``/``dropped`` cover exactly the frames with ``t < clock``;
    ``records`` are the phases committed so far.  ``idle_from`` is set
    when the scheduler exhausted at that clock -- resuming then extends
    the trailing idle record instead of asking the scheduler again.
    """

    clock: float
    idle_from: float | None
    rng_state: dict
    student: tuple[list[np.ndarray], list[np.ndarray]]
    teacher: tuple[list[np.ndarray], list[np.ndarray]] | None
    buffer_features: np.ndarray
    buffer_labels: np.ndarray
    scheduler: dict
    correct: np.ndarray
    dropped: np.ndarray
    records: tuple[PhaseRecord, ...]


def _encode_layers(state: tuple[list, list]) -> dict:
    weights, biases = state
    return {
        "weights": [encode_array(w) for w in weights],
        "biases": [encode_array(b) for b in biases],
    }


def _decode_layers(payload: dict) -> tuple[list, list]:
    return (
        [decode_array(w) for w in payload["weights"]],
        [decode_array(b) for b in payload["biases"]],
    )


def encode_run_snapshot(
    checkpoint: RunCheckpoint,
    *,
    policy: str,
    system: str,
    scenario: str,
    seed: int,
    origin_duration_s: float,
) -> dict:
    """A :class:`RunCheckpoint` as a JSON-safe, self-identifying payload.

    ``origin_duration_s`` is the duration of the run that captured the
    checkpoint -- decode refuses to resume from an unaligned origin (the
    stream prefix would not be reproducible, see
    :func:`stream_prefix_aligned`).
    """
    return {
        "v": SNAPSHOT_VERSION,
        "policy": policy,
        "system": system,
        "scenario": scenario,
        "seed": int(seed),
        "origin_duration_s": float(origin_duration_s),
        "clock": float(checkpoint.clock),
        "idle_from": (
            None
            if checkpoint.idle_from is None
            else float(checkpoint.idle_from)
        ),
        "rng": checkpoint.rng_state,
        "student": _encode_layers(checkpoint.student),
        "teacher": (
            None
            if checkpoint.teacher is None
            else _encode_layers(checkpoint.teacher)
        ),
        "buffer": {
            "features": encode_array(checkpoint.buffer_features),
            "labels": encode_array(checkpoint.buffer_labels),
        },
        "scheduler": dict(checkpoint.scheduler),
        "correct": encode_array(checkpoint.correct),
        "dropped": encode_array(checkpoint.dropped),
        "phases": [
            {
                "kind": record.kind.value,
                "start_s": float(record.start_s),
                "end_s": float(record.end_s),
                "samples": int(record.samples),
                "drift_detected": bool(record.drift_detected),
            }
            for record in checkpoint.records
        ],
    }


def decode_run_snapshot(
    payload: dict,
    *,
    policy: str,
    system: str,
    scenario: str,
    seed: int,
    duration_s: float,
) -> RunCheckpoint:
    """Validate and decode a snapshot for resuming a specific run.

    Raises :class:`SnapshotError` on any incompatibility -- wrong
    version, policy, cell identity, an unaligned origin, or a clock past
    the target duration.  Callers fall back to a prefix run.
    """
    try:
        version = payload.get("v")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version!r} incompatible with "
                f"{SNAPSHOT_VERSION}; recompute from scratch"
            )
        for name, expected in (
            ("policy", policy),
            ("system", system),
            ("scenario", scenario),
        ):
            got = payload.get(name)
            if got != expected:
                raise SnapshotError(
                    f"snapshot {name} {got!r} does not match run "
                    f"{expected!r}"
                )
        if int(payload["seed"]) != int(seed):
            raise SnapshotError(
                f"snapshot seed {payload['seed']!r} does not match run "
                f"seed {seed!r}"
            )
        origin = float(payload["origin_duration_s"])
        if not stream_prefix_aligned(origin):
            raise SnapshotError(
                f"snapshot origin duration {origin:g}s is not "
                f"segment-aligned; the stream prefix is not reproducible"
            )
        clock = float(payload["clock"])
        if clock > float(duration_s) + 1e-9:
            raise SnapshotError(
                f"snapshot clock {clock:g}s is past the target duration "
                f"{duration_s:g}s"
            )
        idle_from = payload.get("idle_from")
        teacher = payload.get("teacher")
        buffer = payload["buffer"]
        return RunCheckpoint(
            clock=clock,
            idle_from=None if idle_from is None else float(idle_from),
            rng_state=payload["rng"],
            student=_decode_layers(payload["student"]),
            teacher=None if teacher is None else _decode_layers(teacher),
            buffer_features=decode_array(buffer["features"]),
            buffer_labels=decode_array(buffer["labels"]),
            scheduler=dict(payload.get("scheduler", {})),
            correct=decode_array(payload["correct"]),
            dropped=decode_array(payload["dropped"]),
            records=tuple(
                PhaseRecord(
                    kind=PhaseKind(record["kind"]),
                    start_s=record["start_s"],
                    end_s=record["end_s"],
                    samples=record["samples"],
                    drift_detected=record["drift_detected"],
                )
                for record in payload["phases"]
            ),
        )
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed run snapshot: {exc}")
