"""System factory and experiment-running helpers.

``build_system`` assembles any of the paper's evaluated systems by name for
a given model pair; ``run_on_scenario`` executes it over a Table II
scenario.  The system names match the paper's Figure 9 legend:

========================  =====================================================
Name                      Meaning
========================  =====================================================
``OrinLow-Ekya``          Ekya scheduling on Jetson Orin at 30 W
``OrinHigh-Ekya``         Ekya scheduling on Jetson Orin at 60 W
``OrinHigh-EOMU``         EOMU scheduling on Jetson Orin at 60 W
``DaCapo-Ekya``           Ekya scheduling on time-shared DaCapo hardware
``DaCapo-Spatial``        fixed-window scheduling on partitioned DaCapo
``DaCapo-Spatiotemporal`` Algorithm 1 on partitioned DaCapo
========================  =====================================================
"""

from __future__ import annotations

from typing import Callable

from repro.accelerator import SystolicArray
from repro.core.baselines import (
    EomuSystem,
    FixedWindowSystem,
    NoRetrainSystem,
)
from repro.core.config import DaCapoConfig
from repro.core.results import RunResult
from repro.core.spatial import allocate_partition
from repro.core.system import CLSystemBase, DaCapoSystem
from repro.data.scenarios import build_scenario
from repro.data.stream import ScenarioStream
from repro.errors import ConfigurationError
from repro.learn.student import StudentModel, make_student
from repro.learn.teacher import make_teacher
from repro.models.zoo import ModelPair, get_pair
from repro.mx import MX6, MX9
from repro.platform import (
    DaCapoPlatform,
    DaCapoTimeShared,
    jetson_orin_high,
    jetson_orin_low,
    rtx_3090,
)
from repro.platform.base import Platform

__all__ = [
    "FIG2_KINDS",
    "GPU_PLATFORMS",
    "SYSTEM_BUILDERS",
    "build_system",
    "build_fig2_system",
    "run_on_scenario",
]


def _dacapo_platform(pair: ModelPair, config: DaCapoConfig) -> DaCapoPlatform:
    """Partitioned DaCapo platform via the offline spatial allocator."""
    partition = allocate_partition(
        SystolicArray(), pair.student_graph(), config.frame_rate, MX6
    )
    return DaCapoPlatform(partition=partition)


def _make_models(
    pair: ModelPair, on_dacapo: bool, seed: int
) -> tuple[StudentModel, object]:
    """Student/teacher proxies at the platform's execution precision."""
    if on_dacapo:
        student = make_student(
            pair.student, inference_fmt=MX6, training_fmt=MX9, seed=seed
        )
        teacher = make_teacher(pair.teacher, fmt=MX6, seed=seed)
    else:
        student = make_student(pair.student, seed=seed)
        teacher = make_teacher(pair.teacher, seed=seed)
    return student, teacher


def _build_orin_low_ekya(pair, config, seed):
    student, teacher = _make_models(pair, on_dacapo=False, seed=seed)
    return FixedWindowSystem(
        "OrinLow-Ekya", jetson_orin_low(), pair, student, teacher, config
    )


def _build_orin_high_ekya(pair, config, seed):
    student, teacher = _make_models(pair, on_dacapo=False, seed=seed)
    return FixedWindowSystem(
        "OrinHigh-Ekya", jetson_orin_high(), pair, student, teacher, config
    )


def _build_orin_high_eomu(pair, config, seed):
    student, teacher = _make_models(pair, on_dacapo=False, seed=seed)
    return EomuSystem(
        "OrinHigh-EOMU", jetson_orin_high(), pair, student, teacher, config
    )


def _build_dacapo_ekya(pair, config, seed):
    student, teacher = _make_models(pair, on_dacapo=True, seed=seed)
    return FixedWindowSystem(
        "DaCapo-Ekya", DaCapoTimeShared(), pair, student, teacher, config
    )


def _build_dacapo_spatial(pair, config, seed):
    student, teacher = _make_models(pair, on_dacapo=True, seed=seed)
    return FixedWindowSystem(
        "DaCapo-Spatial",
        _dacapo_platform(pair, config),
        pair,
        student,
        teacher,
        config,
    )


def _build_dacapo_spatiotemporal(pair, config, seed):
    student, teacher = _make_models(pair, on_dacapo=True, seed=seed)
    return DaCapoSystem(
        "DaCapo-Spatiotemporal",
        _dacapo_platform(pair, config),
        pair,
        student,
        teacher,
        config,
    )


#: Figure 9's six systems, in the paper's legend order.
SYSTEM_BUILDERS: dict[str, Callable] = {
    "OrinLow-Ekya": _build_orin_low_ekya,
    "OrinHigh-Ekya": _build_orin_high_ekya,
    "OrinHigh-EOMU": _build_orin_high_eomu,
    "DaCapo-Ekya": _build_dacapo_ekya,
    "DaCapo-Spatial": _build_dacapo_spatial,
    "DaCapo-Spatiotemporal": _build_dacapo_spatiotemporal,
}

_GPU_PLATFORMS = {
    "RTX3090": rtx_3090,
    "OrinHigh": jetson_orin_high,
    "OrinLow": jetson_orin_low,
}

#: GPU platform names accepted by :func:`build_fig2_system`.
GPU_PLATFORMS: tuple[str, ...] = tuple(_GPU_PLATFORMS)

#: System kinds accepted by :func:`build_fig2_system`.
FIG2_KINDS: tuple[str, ...] = ("student", "teacher", "ekya")


def build_system(
    system_name: str,
    pair_name: str,
    config: DaCapoConfig | None = None,
    seed: int = 0,
) -> CLSystemBase:
    """Assemble one of the paper's evaluated systems.

    Args:
        system_name: One of :data:`SYSTEM_BUILDERS`.
        pair_name: Model pair (e.g. ``"resnet18_wrn50"``).
        config: Scheduling hyperparameters (defaults to Table I values).
        seed: Model-initialization seed (shared across systems so every
            system starts from identical weights).
    """
    try:
        builder = SYSTEM_BUILDERS[system_name]
    except KeyError:
        known = ", ".join(SYSTEM_BUILDERS)
        raise ConfigurationError(
            f"unknown system {system_name!r}; known: {known}"
        )
    pair = get_pair(pair_name)
    return builder(pair, config or DaCapoConfig(), seed)


def build_fig2_system(
    kind: str,
    platform_name: str,
    pair_name: str,
    config: DaCapoConfig | None = None,
    seed: int = 0,
) -> CLSystemBase:
    """Figure 2 systems: frozen Student/Teacher or idealized Ekya on a GPU.

    Args:
        kind: ``"student"``, ``"teacher"``, or ``"ekya"``.
        platform_name: ``"RTX3090"``, ``"OrinHigh"``, or ``"OrinLow"``.
    """
    config = config or DaCapoConfig()
    pair = get_pair(pair_name)
    try:
        platform: Platform = _GPU_PLATFORMS[platform_name]()
    except KeyError:
        known = ", ".join(_GPU_PLATFORMS)
        raise ConfigurationError(
            f"unknown platform {platform_name!r}; known: {known}"
        )
    student, teacher = _make_models(pair, on_dacapo=False, seed=seed)
    name = f"{platform_name}-{kind.capitalize()}"
    if kind == "student":
        return NoRetrainSystem(name, platform, pair, student, teacher, config)
    if kind == "teacher":
        deployed = StudentModel(
            name=teacher.name,
            mlp=teacher.mlp.clone(),
            sensitivity=teacher.sensitivity,
        )
        return NoRetrainSystem(
            name, platform, pair, deployed, teacher, config,
            deploy_teacher=True,
        )
    if kind == "ekya":
        return FixedWindowSystem(
            name, platform, pair, student, teacher, config
        )
    raise ConfigurationError(
        f"unknown Figure 2 system kind {kind!r}; "
        "expected student, teacher, or ekya"
    )


def run_on_scenario(
    system: CLSystemBase,
    scenario: str | ScenarioStream,
    seed: int = 0,
    duration_s: float | None = None,
) -> RunResult:
    """Run a system over a scenario (by name or pre-built stream)."""
    if isinstance(scenario, str):
        if duration_s is not None:
            stream = build_scenario(scenario, duration_s=duration_s)
        else:
            stream = build_scenario(scenario)
    else:
        stream = scenario
    return system.run(stream, seed=seed)
