"""Phase records: the schedule trace every system run produces.

A phase is a half-open time interval during which the training-side
resources (T-SA or the GPU's leftover share) run one kernel.  The trace
backs the paper's Figure 11 (retrain:label time breakdown) and the
retraining-completion markers of Figure 10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ScheduleError

__all__ = ["PhaseKind", "PhaseRecord", "phase_time_breakdown"]


class PhaseKind(enum.Enum):
    """What the training-side resources are doing."""

    RETRAIN = "retrain"
    LABEL = "label"
    IDLE = "idle"


@dataclass(frozen=True)
class PhaseRecord:
    """One scheduled phase.

    Attributes:
        kind: Kernel the phase ran.
        start_s / end_s: Interval bounds (half-open).
        samples: Samples processed (epoch-passes count once per epoch).
        drift_detected: True on labeling phases that flagged data drift.
    """

    kind: PhaseKind
    start_s: float
    end_s: float
    samples: int = 0
    drift_detected: bool = False

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ScheduleError(
                f"phase ends before it starts: [{self.start_s}, {self.end_s})"
            )

    @property
    def duration_s(self) -> float:
        """Phase length in seconds."""
        return self.end_s - self.start_s


def phase_time_breakdown(
    phases: list[PhaseRecord],
) -> dict[PhaseKind, float]:
    """Total seconds per phase kind (Figure 11's stacked bars)."""
    totals = {kind: 0.0 for kind in PhaseKind}
    for phase in phases:
        totals[phase.kind] += phase.duration_s
    return totals
