"""The batching policy: an explicit opt-in for multi-cell batched kernels.

Batching changes *how* the numpy work of co-sharded cells is dispatched
(K same-geometry cells advance per stacked call) without changing a single
output bit -- the batched primitives are verified slice-for-slice identical
to the serial ones.  It still follows the same opt-in discipline as
:mod:`repro.numeric` and :mod:`repro.share.policy`, because an off-path
that is byte-identical to the pre-batching tree is part of the contract:

- :data:`OFF` -- the default.  Every cell runs its own serial phase loop;
  no batching code executes at all.
- :data:`ON` -- the opt-in (``REPRO_BATCH=on``, ``--batch on``).  The shard
  planner groups geometry-compatible cells, and the batched driver
  (:mod:`repro.exec.batched`) runs each group's cells in lockstep lanes,
  stacking identically-shaped forward/train requests into one numpy call.
  Per-cell results are bit-identical to the serial path and pinned in
  ``tests/reference/digests_batched.json``.

Resolution order: :func:`use_batching` override > ``$REPRO_BATCH`` >
:data:`OFF` -- the same contextvar discipline as ``use_policy`` /
``use_sharing``, so it is thread/async-safe and nests.

This module also owns the *lane* plumbing the batched driver uses to
intercept model compute: each cell of a batch group runs on its own lane
thread, and ``MLPClassifier.forward`` / ``train_sgd`` consult
:func:`current_lane` at their top.  When no lane is installed (the default
everywhere outside the batched driver) the check is one thread-local read
and the serial code runs unchanged.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "BATCH_ENV",
    "BATCH_POLICIES",
    "BatchPolicy",
    "OFF",
    "ON",
    "active_batching",
    "current_lane",
    "lane_scope",
    "resolve_batching",
    "suspend_lane",
    "use_batching",
]

#: Environment variable selecting the process-wide batching policy.
BATCH_ENV = "REPRO_BATCH"


@dataclass(frozen=True)
class BatchPolicy:
    """The batched-execution switch, as one frozen value.

    Attributes:
        name: Canonical name (``"off"`` / ``"on"``) -- the value
            ``REPRO_BATCH`` takes and shard specs carry over the wire.
        enabled: Master switch.  When False no batching code runs and the
            execution path is byte-for-byte the per-cell one.
    """

    name: str
    enabled: bool

    def __str__(self) -> str:
        return self.name


OFF = BatchPolicy(name="off", enabled=False)

ON = BatchPolicy(name="on", enabled=True)

#: Supported policies by canonical name.
BATCH_POLICIES: dict[str, BatchPolicy] = {
    OFF.name: OFF,
    ON.name: ON,
}

#: Accepted spellings (environment values, CLI args).
_ALIASES: dict[str, BatchPolicy] = {
    "": OFF,
    "off": OFF,
    "0": OFF,
    "no": OFF,
    "none": OFF,
    "false": OFF,
    "on": ON,
    "1": ON,
    "yes": ON,
    "true": ON,
    "batch": ON,
    "batched": ON,
}

_override: ContextVar[BatchPolicy | None] = ContextVar(
    "repro_batch_policy", default=None
)


def resolve_batching(spec: "str | BatchPolicy | None") -> BatchPolicy:
    """A policy from a name/alias, an existing policy, or None (default)."""
    if spec is None:
        return OFF
    if isinstance(spec, BatchPolicy):
        return spec
    try:
        return _ALIASES[spec.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(BATCH_POLICIES))
        raise ConfigurationError(
            f"unknown batching policy {spec!r} "
            f"(set {BATCH_ENV} to one of: {known})"
        )


def active_batching() -> BatchPolicy:
    """The policy in effect: override > ``$REPRO_BATCH`` > off."""
    override = _override.get()
    if override is not None:
        return override
    return resolve_batching(os.environ.get(BATCH_ENV))


@contextmanager
def use_batching(spec: "str | BatchPolicy"):
    """Force a batching policy for the dynamic extent of the ``with`` block."""
    policy = resolve_batching(spec)
    token = _override.set(policy)
    try:
        yield policy
    finally:
        _override.reset(token)


# -- lane plumbing --------------------------------------------------------
#
# A lane is the batched driver's per-cell execution context.  It lives in
# thread-local storage (one lane thread per cell), not a ContextVar: lane
# threads copy the parent's context for policy isolation, and a ContextVar
# set in the copied context would leak into every nested context manager.

_tls = threading.local()


def current_lane():
    """The batch lane intercepting this thread's model compute, if any.

    Returns ``None`` on every thread the batched driver did not start, and
    on lane threads while the conductor is executing a batched round (the
    round's own numpy calls must run the real serial kernels, not
    re-intercept themselves).
    """
    if getattr(_tls, "suspended", False):
        return None
    return getattr(_tls, "lane", None)


@contextmanager
def lane_scope(lane):
    """Install ``lane`` as this thread's interception point."""
    previous = getattr(_tls, "lane", None)
    _tls.lane = lane
    try:
        yield lane
    finally:
        _tls.lane = previous


@contextmanager
def suspend_lane():
    """Run a block with lane interception disabled on this thread."""
    previous = getattr(_tls, "suspended", False)
    _tls.suspended = True
    try:
        yield
    finally:
        _tls.suspended = previous
