"""Fleet sweeps: declarative grid specs, a planner, and result aggregation.

The first experiment surface that is not hand-coded per figure: a TOML/JSON
:class:`~repro.sweep.spec.SweepSpec` describes a camera fleet as a
cross-product (systems x pairs x scenarios x seeds x durations x numeric
policies, with per-axis overrides), the planner compiles it into the same
cells the figure experiments run and prices it before running, and the
aggregation layer reduces per-cell rows into machine-readable group-bys.

Entry points: ``python -m repro sweep <spec.toml>`` on the command line,
or programmatically::

    from repro.sweep import load_spec, compile_plan, run_sweep

    spec = load_spec("examples/fig9_sweep.toml")
    print(compile_plan(spec).describe(jobs=8))   # price it first
    result = run_sweep(spec, jobs=8)             # then run the fleet
"""

from repro.sweep.aggregate import aggregate_rows, cell_row, read_json
from repro.sweep.plan import (
    CostEstimate,
    PolicyPlan,
    SweepPlan,
    compile_plan,
)
from repro.sweep.run import run_sweep, write_outputs
from repro.sweep.spec import (
    METRICS,
    SweepOverride,
    SweepSpec,
    load_spec,
    spec_from_mapping,
)

__all__ = [
    "CostEstimate",
    "METRICS",
    "PolicyPlan",
    "SweepOverride",
    "SweepPlan",
    "SweepSpec",
    "aggregate_rows",
    "cell_row",
    "compile_plan",
    "load_spec",
    "read_json",
    "run_sweep",
    "spec_from_mapping",
    "write_outputs",
]
