"""Sweep planner: compile a spec into per-policy cell lists plus a cost model.

Compilation walks the spec's axes in their documented order (see
:data:`repro.sweep.spec.AXIS_ORDERS`), applying per-axis overrides to each
bound prefix, and emits one :class:`~repro.core.parallel.SystemCell` or
:class:`~repro.core.parallel.Fig2Cell` per grid point, grouped by numeric
policy (a policy is ambient process state -- ``use_policy`` -- so cells of
different policies cannot share one ``run_cells`` invocation).

Because the expansion order matches the hand-coded figure experiments
(pairs outer, systems, then scenarios), a spec mirroring Figure 9 compiles
to *exactly* the cell list ``run_fig9`` builds, and therefore -- via
``run_cells``'s any-worker-count determinism -- to bit-identical
:class:`~repro.core.results.RunResult`\\ s.

The cost model reuses the exact decomposition the executor will use:
:func:`repro.core.parallel.plan_shards` groups cells by stream signature,
so :meth:`SweepPlan.estimate` reports how many distinct streams a fleet
materializes, how many stream-seconds it simulates (shared vs. total), and
how balanced the worker shards are -- before anything runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parallel import (
    Fig2Cell,
    SystemCell,
    plan_shards,
    stream_signature,
)
from repro.batching import active_batching
from repro.data.stream import DEFAULT_DURATION_S
from repro.exec.shard import batch_signature
from repro.numeric import NumericPolicy, POLICIES, active_policy
from repro.share.cluster import cluster_cells, describe_clusters
from repro.share.policy import active_sharing
from repro.sweep.spec import SweepSpec

__all__ = ["CostEstimate", "PolicyPlan", "SweepPlan", "compile_plan"]


@dataclass(frozen=True)
class PolicyPlan:
    """The cells one numeric policy runs, in execution order."""

    policy: NumericPolicy
    cells: tuple


@dataclass(frozen=True)
class CostEstimate:
    """What a sweep will cost, from the executor's own decomposition.

    Attributes:
        cells: Total grid cells across every policy.
        distinct_streams: Distinct (policy, scenario, seed, duration)
            streams the fleet materializes.
        stream_seconds: Simulated seconds summed over every cell (the
            work a sharing-free runner would do).
        distinct_stream_seconds: Simulated seconds summed over distinct
            streams only (what the artifact store actually materializes).
        pretrained_models: Distinct (policy, pair, model seed) pretrains.
        shards: Worker shards at the estimate's ``jobs``.
        largest_shard_cells: Cells in the heaviest shard (balance proxy).
        jobs: The worker count the shard plan was computed for.
        sharing: Cross-camera sharing estimate, present only when a
            sharing policy is active (so off-path reports keep their
            historical byte shape): cluster count and sizes plus the
            estimated *shared* label stream-seconds and pretrain count
            against the independent figures above.
        batching: Batched-execution estimate, present only when a batch
            policy is active (same off-path contract as ``sharing``):
            batch-group assignment at the estimate's ``jobs`` plus the
            estimated fraction of numpy dispatches saved -- per call in
            a K-cell group the batched executor advances all K members,
            so the dispatch bill drops from ~cells to ~groups.
    """

    cells: int
    distinct_streams: int
    stream_seconds: float
    distinct_stream_seconds: float
    pretrained_models: int
    shards: int
    largest_shard_cells: int
    jobs: int
    sharing: dict | None = None
    batching: dict | None = None

    def as_dict(self) -> dict:
        """Plain-dict form for JSON reports."""
        payload = {
            "cells": self.cells,
            "distinct_streams": self.distinct_streams,
            "stream_seconds": self.stream_seconds,
            "distinct_stream_seconds": self.distinct_stream_seconds,
            "pretrained_models": self.pretrained_models,
            "shards": self.shards,
            "largest_shard_cells": self.largest_shard_cells,
            "jobs": self.jobs,
        }
        if self.sharing is not None:
            payload["sharing"] = self.sharing
        if self.batching is not None:
            payload["batching"] = self.batching
        return payload


@dataclass(frozen=True)
class SweepPlan:
    """A compiled sweep: per-policy cell lists plus the originating spec."""

    spec: SweepSpec
    groups: tuple[PolicyPlan, ...]

    @property
    def num_cells(self) -> int:
        return sum(len(group.cells) for group in self.groups)

    def estimate(self, jobs: int = 1) -> CostEstimate:
        """Cost model at a worker count, via the executor's shard planner."""
        jobs = max(1, jobs)
        streams: dict[tuple, float] = {}
        pretrains: set[tuple] = set()
        total_seconds = 0.0
        shards = 0
        largest = 0
        for group in self.groups:
            for cell in group.cells:
                duration = cell.duration_s
                if duration is None:
                    duration = float(DEFAULT_DURATION_S)
                total_seconds += duration
                streams[(group.policy.name,) + stream_signature(cell)] = (
                    duration
                )
                model_seed = (
                    cell.seed if isinstance(cell, SystemCell) else 0
                )
                pretrains.add((group.policy.name, cell.pair, model_seed))
            group_shards = plan_shards(group.cells, jobs)
            shards += len(group_shards)
            largest = max(
                largest, max(len(shard) for shard in group_shards)
            )
        return CostEstimate(
            cells=self.num_cells,
            distinct_streams=len(streams),
            stream_seconds=total_seconds,
            distinct_stream_seconds=float(sum(streams.values())),
            pretrained_models=len(pretrains),
            shards=shards,
            largest_shard_cells=largest,
            jobs=jobs,
            sharing=self._sharing_estimate(),
            batching=self._batching_estimate(jobs),
        )

    def _sharing_estimate(self) -> dict | None:
        """Cluster counts and shared-work estimates (None when sharing off).

        Within a cluster, teacher labeling runs once per (domain, slot),
        so the shared label bill is one longest member per cluster; warm
        starts mean one pretrain per cluster instead of one per seed.
        Both are planner estimates -- the executor's counters report the
        realized reuse.
        """
        sharing = active_sharing()
        if not sharing.enabled:
            return None
        clusters = 0
        largest_cluster = 0
        shared_seconds = 0.0
        shared_pretrains = 0
        for group in self.groups:
            assignment = cluster_cells(group.cells, sharing)
            grouped = assignment.cluster_cells_of(group.cells)
            clusters += len(grouped)
            shared_pretrains += len(grouped)
            for members in grouped.values():
                largest_cluster = max(largest_cluster, len(members))
                shared_seconds += max(
                    (
                        float(DEFAULT_DURATION_S)
                        if cell.duration_s is None
                        else cell.duration_s
                    )
                    for cell in members
                )
        return {
            "policy": sharing.name,
            "threshold": sharing.threshold,
            "clusters": clusters,
            "largest_cluster_cells": largest_cluster,
            "label_stream_seconds_shared": shared_seconds,
            "pretrained_models_shared": shared_pretrains,
        }

    def _batching_estimate(self, jobs: int) -> dict | None:
        """Batch-group assignment and calls-saved (None when batching off).

        Uses the executor's own shard plan -- with a batch policy active,
        :func:`plan_shards` groups geometry-compatible cells -- so the
        reported groups are exactly the shards ``run_cells_batched`` will
        advance in lockstep.  Per numpy call a K-cell group serves all K
        members, so dispatches drop from ~cells to ~groups; the realized
        ratio is measured by ``benchmarks/bench_batched.py``.
        """
        batching = active_batching()
        if not batching.enabled:
            return None
        jobs = max(1, jobs)
        groups_n = 0
        largest = 0
        batched_cells = 0
        singletons = 0
        for group in self.groups:
            for shard in plan_shards(group.cells, jobs):
                groups_n += 1
                largest = max(largest, len(shard))
                if len(shard) > 1:
                    batched_cells += len(shard)
                else:
                    singletons += 1
        total = self.num_cells
        saved = 1.0 - (groups_n / total) if total else 0.0
        return {
            "policy": batching.name,
            "batch_groups": groups_n,
            "largest_group_cells": largest,
            "batched_cells": batched_cells,
            "singleton_groups": singletons,
            "est_calls_saved_frac": saved,
        }

    def describe(self, jobs: int = 1) -> str:
        """Human-readable plan summary (the ``sweep --plan`` output)."""
        est = self.estimate(jobs)
        lines = [
            f"sweep {self.spec.name!r}: {self.spec.title}",
            f"  cell kind          {self.spec.cell}",
            "  policies           "
            + ", ".join(g.policy.name for g in self.groups),
            f"  cells              {est.cells}",
            f"  distinct streams   {est.distinct_streams}",
            "  stream seconds     "
            f"{est.stream_seconds:.0f} total / "
            f"{est.distinct_stream_seconds:.0f} materialized",
            f"  pretrained models  {est.pretrained_models}",
            f"  shards @ jobs={est.jobs:<4d} "
            f"{est.shards} (largest {est.largest_shard_cells} cells)",
        ]
        if est.sharing is not None:
            sh = est.sharing
            lines += [
                f"  sharing            {sh['policy']} "
                f"(threshold {sh['threshold']:g})",
                f"  clusters           {sh['clusters']} "
                f"(largest {sh['largest_cluster_cells']} cells)",
                "  label stream sec   "
                f"{sh['label_stream_seconds_shared']:.0f} shared / "
                f"{est.stream_seconds:.0f} independent",
                "  pretrained models  "
                f"{sh['pretrained_models_shared']} shared / "
                f"{est.pretrained_models} independent",
            ]
            for group in self.groups:
                assignment = cluster_cells(group.cells, active_sharing())
                for line in describe_clusters(assignment, group.cells):
                    lines.append(f"  [{group.policy.name}] {line}")
        if est.batching is not None:
            bt = est.batching
            lines += [
                f"  batching           {bt['policy']}",
                f"  batch groups       {bt['batch_groups']} "
                f"(largest {bt['largest_group_cells']} cells, "
                f"{bt['singleton_groups']} singleton)",
                "  est numpy calls    "
                f"{bt['est_calls_saved_frac']:.0%} saved vs per-cell "
                "dispatch",
            ]
            for group in self.groups:
                for shard in plan_shards(group.cells, est.jobs):
                    if len(shard) < 2:
                        continue
                    signature = "/".join(
                        str(part) for part in batch_signature(shard[0][1])
                    )
                    lines.append(
                        f"  [{group.policy.name}] batch {signature}: "
                        f"{len(shard)} cells"
                    )
        for group in self.groups:
            head = group.cells[: 3]
            preview = ", ".join(_cell_label(cell) for cell in head)
            more = len(group.cells) - len(head)
            if more > 0:
                preview += f", ... (+{more})"
            lines.append(f"  [{group.policy.name}] {preview}")
        return "\n".join(lines) + "\n"


def _cell_label(cell) -> str:
    if isinstance(cell, Fig2Cell):
        name = f"{cell.platform}-{cell.kind}"
    else:
        name = cell.system
    duration = "def" if cell.duration_s is None else f"{cell.duration_s:g}s"
    return f"{name}/{cell.pair}/{cell.scenario}/s{cell.seed}/{duration}"


def _effective_values(spec: SweepSpec, axis: str, bound: dict) -> tuple:
    """The value list for ``axis`` given the bound prefix (overrides applied,
    file order, last match wins)."""
    values = spec.axes[axis]
    for override in spec.overrides:
        if not override.applies(bound):
            continue
        for ov_axis, ov_values in override.axes:
            if ov_axis == axis:
                values = ov_values
    return values


def _expand(spec: SweepSpec, policy_name: str) -> list:
    """All cells of one policy, in documented axis order."""
    order = [axis for axis in spec.axis_order if axis != "policy"]
    cells: list = []
    bound: dict = {"policy": policy_name}

    def walk(depth: int) -> None:
        if depth == len(order):
            cells.append(_make_cell(spec, bound))
            return
        axis = order[depth]
        for value in _effective_values(spec, axis, bound):
            bound[axis] = value
            walk(depth + 1)
        del bound[axis]

    walk(0)
    return cells


def _make_cell(spec: SweepSpec, bound: dict):
    if spec.cell == "fig2":
        return Fig2Cell(
            kind=bound["kind"],
            platform=bound["platform"],
            pair=bound["pair"],
            scenario=bound["scenario"],
            seed=bound["seed"],
            duration_s=bound["duration"],
        )
    return SystemCell(
        system=bound["system"],
        pair=bound["pair"],
        scenario=bound["scenario"],
        seed=bound["seed"],
        duration_s=bound["duration"],
    )


def compile_plan(spec: SweepSpec) -> SweepPlan:
    """Compile a validated spec into per-policy cell lists.

    An empty ``policy`` axis resolves to the ambient policy *here* (not at
    load time), so a policy-agnostic spec honors ``REPRO_DTYPE`` and
    ``use_policy`` the same way every other experiment entry point does.
    """
    policy_names = spec.axes.get("policy") or (active_policy().name,)
    groups = tuple(
        PolicyPlan(
            policy=POLICIES[name],
            cells=tuple(_expand(spec, name)),
        )
        for name in policy_names
    )
    return SweepPlan(spec=spec, groups=groups)
