"""Sweep execution: plan -> scheduled shards per policy -> rows, report, files.

Execution routes through the same :func:`repro.exec.execute_cells` engine
as ``run_cells`` and the figure experiments (under ``use_policy``, so the
policy-namespaced artifact keys, worker-side policy re-install, and
profile merging apply unchanged) -- a sweep of the Figure 9 grid therefore
produces bit-identical per-cell results to ``repro experiment fig9`` on
any backend at any worker count.

Two fleet-scale features layer on top:

- **Journal.**  With an output directory, every completed shard is
  appended to ``sweep_<name>.journal.jsonl`` (bit-exact encoded results,
  keyed per cell) as it finishes.
- **Resume.**  ``resume=True`` reloads that journal, skips every cell it
  already holds, runs only the remainder, and re-merges -- the final
  document is byte-identical to an uninterrupted run's.  The journal is
  fingerprinted against the compiled plan, so resuming a *different*
  sweep into the same directory is a :class:`ConfigurationError`, not a
  silent mix of results.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.core.parallel import default_jobs, positive_int_env
from repro.errors import ConfigurationError
from repro.exec import (
    ShardFailure,
    SweepJournal,
    cell_key,
    execute_cells,
)
from repro.exec.backends import resolve_backend
from repro.experiments.reporting import ExperimentResult, format_table
from repro.numeric import use_policy
from repro.share.cluster import cluster_cells
from repro.share.policy import active_sharing
from repro.sweep.aggregate import (
    SWEEP_SCHEMA_VERSION,
    aggregate_rows,
    cell_row,
    write_csv,
    write_json,
)
from repro.sweep.plan import SweepPlan, compile_plan
from repro.sweep.spec import SweepSpec

__all__ = ["ABORT_ENV", "journal_path", "plan_fingerprint", "run_sweep",
           "write_outputs"]

#: Don't inline the per-cell table into the text report past this size.
_MAX_INLINE_CELL_ROWS = 36

#: Fault-injection hook for CI's kill-and-resume leg: abort the sweep
#: (exit path: ShardFailure -> CLI status 3) after this many shards have
#: been completed *and journaled*, deterministically simulating a
#: mid-sweep kill.
ABORT_ENV = "REPRO_SWEEP_ABORT_AFTER_SHARDS"


def plan_fingerprint(plan: SweepPlan) -> str:
    """Content hash pinning a journal to one compiled plan.

    Covers the spec name, cell kind, and every (policy, cell) in
    expansion order -- but *not* jobs or backend, so a journal written at
    ``--jobs 8`` over subprocess workers resumes at ``--jobs 1`` serial.
    An enabled sharing policy is folded in (its results differ from
    independent ones), so a sharing journal can never resume an
    independent sweep or vice versa; the off-path fingerprint is the
    historical byte string.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{plan.spec.name}|{plan.spec.cell}".encode())
    sharing = active_sharing()
    if sharing.enabled:
        hasher.update(f"|sharing={sharing.name}".encode())
    for group in plan.groups:
        for cell in group.cells:
            hasher.update(cell_key(group.policy.name, cell).encode())
            hasher.update(b"\n")
    return hasher.hexdigest()[:16]


def journal_path(out_dir: str | Path, spec_name: str) -> Path:
    """Where a sweep's completion journal lives under its output dir."""
    return Path(out_dir) / f"sweep_{spec_name}.journal.jsonl"


def run_sweep(
    spec: SweepSpec | SweepPlan,
    jobs: int = 1,
    backend=None,
    out_dir: str | Path | None = None,
    resume: bool = False,
) -> ExperimentResult:
    """Execute a sweep spec (or precompiled plan) and aggregate the fleet.

    Args:
        spec: A validated :class:`~repro.sweep.spec.SweepSpec`, or the
            :class:`~repro.sweep.plan.SweepPlan` already compiled from one.
        jobs: Worker processes per policy group; 1 runs serially, 0 means
            "all cores".  Results are identical at any worker count.
        backend: Execution backend spec string (``serial`` /
            ``process[:N]`` / ``subprocess[:N]`` / ``queue[:N]``) or
            instance; None consults the ambient selection
            (``use_backend`` / ``$REPRO_BACKEND``) and falls back to the
            historical default.
        out_dir: Directory the completion journal is written under as
            shards finish (required for ``resume``).  The JSON/CSV
            artifacts still come from :func:`write_outputs`.  A
            spec-selected queue backend pins its queue directory at
            ``out_dir/queue``, so external ``repro worker --queue``
            processes can find it (without ``out_dir`` the queue lives in
            a private temp directory).
        resume: Reload the journal and skip cells it already holds; the
            resulting document is identical to an uninterrupted run's.

    Returns:
        An :class:`ExperimentResult` whose ``rows`` are the aggregate
        rows; ``extras`` carries the per-cell rows (``"cells"``), the raw
        ``(policy name, cell, RunResult)`` triples (``"results"``), the
        cost estimate, the serializable document (``"document"``), and
        ``"resumed_cells"`` (how many came from the journal).
    """
    plan = spec if isinstance(spec, SweepPlan) else compile_plan(spec)
    spec = plan.spec
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    workers = jobs if jobs > 0 else default_jobs()
    queue_dir = (
        str(Path(out_dir) / "queue") if out_dir is not None else None
    )
    backend_obj, plan_workers, owned = resolve_backend(
        backend, workers, plan.num_cells, queue_dir=queue_dir
    )
    # Price the sweep at the worker count it will actually execute with
    # (a backend spec carrying its own :N overrides --jobs).
    estimate = plan.estimate(plan_workers)

    if resume and out_dir is None:
        raise ConfigurationError(
            "resume needs an output directory: the completion journal "
            "lives there (pass --out DIR)"
        )
    journal = None
    if out_dir is not None:
        journal = SweepJournal(
            journal_path(out_dir, spec.name),
            plan_fingerprint(plan),
            resume=resume,
        )

    abort_after = positive_int_env(ABORT_ENV)
    completed_shards = 0

    def on_complete(shard_spec, shard_result):
        nonlocal completed_shards
        if journal is not None:
            journal.record(shard_spec, shard_result)
        completed_shards += 1
        if abort_after is not None and completed_shards >= abort_after:
            raise ShardFailure(
                f"injected abort after {completed_shards} completed "
                f"shards ({ABORT_ENV})",
                shard_key=shard_spec.key,
            )

    triples = []
    resumed = 0
    try:
        sharing = active_sharing()
        for group in plan.groups:
            cells = list(group.cells)
            results: list = [None] * len(cells)
            remaining = []
            whole_clusters: set[str] | None = None
            if sharing.enabled and journal is not None and resume:
                # Sharing makes a cluster's cells interdependent: a cell
                # journaled mid-cluster cannot be skipped alone, because
                # re-running only its neighbors would see different
                # cluster state.  Skip at cluster granularity -- partial
                # clusters recompute whole (deterministically identical,
                # so re-journaled records are bit-equal to the originals).
                assignment = cluster_cells(cells, sharing)
                whole_clusters = {
                    cid
                    for cid, members in assignment.cluster_cells_of(
                        cells
                    ).items()
                    if all(
                        journal.lookup(cell_key(group.policy.name, member))
                        is not None
                        for member in members
                    )
                }
            for index, cell in enumerate(cells):
                done = None
                if journal is not None and resume:
                    if whole_clusters is None or (
                        assignment.cluster_of(cell) in whole_clusters
                    ):
                        done = journal.lookup(
                            cell_key(group.policy.name, cell)
                        )
                if done is None:
                    remaining.append(index)
                else:
                    results[index] = done
            resumed += len(cells) - len(remaining)
            if remaining:
                with use_policy(group.policy):
                    fresh = execute_cells(
                        [cells[index] for index in remaining],
                        backend=backend_obj,
                        workers=plan_workers,
                        on_complete=on_complete,
                    )
                for index, run in zip(remaining, fresh):
                    results[index] = run
            triples.extend(
                (group.policy.name, cell, run)
                for cell, run in zip(cells, results)
            )
    finally:
        if owned:
            backend_obj.close()

    cells = [
        cell_row(policy_name, cell, result)
        for policy_name, cell, result in triples
    ]
    aggregate = aggregate_rows(
        cells, spec.group_by, spec.metrics, spec.percentiles
    )

    lines = [
        f"Sweep {spec.name!r}: {spec.title}",
        f"({estimate.cells} cells, {estimate.distinct_streams} distinct "
        f"streams, {estimate.distinct_stream_seconds:.0f} of "
        f"{estimate.stream_seconds:.0f} stream-seconds materialized)",
        "",
        f"Aggregate by ({', '.join(spec.group_by)}):",
        format_table(aggregate),
    ]
    if len(cells) <= _MAX_INLINE_CELL_ROWS:
        lines += ["Per-cell results:", format_table(cells)]
    else:
        lines.append(
            f"({len(cells)} per-cell rows; use --out to save them)"
        )
    report = "\n".join(lines)

    document = {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "name": spec.name,
        "title": spec.title,
        "cell": spec.cell,
        "policies": [group.policy.name for group in plan.groups],
        "group_by": list(spec.group_by),
        "metrics": list(spec.metrics),
        "percentiles": list(spec.percentiles),
        "estimate": estimate.as_dict(),
        "cells": cells,
        "aggregate": aggregate,
    }
    return ExperimentResult(
        name=f"sweep_{spec.name}",
        title=spec.title,
        rows=aggregate,
        report=report,
        extras={
            "cells": cells,
            "results": tuple(triples),
            "estimate": estimate.as_dict(),
            "document": document,
            "resumed_cells": resumed,
        },
    )


def write_outputs(result: ExperimentResult, out_dir: str | Path) -> list[Path]:
    """Write a sweep's machine-readable artifacts under ``out_dir``.

    Emits ``<name>.json`` (the self-describing document -- per-cell rows,
    aggregate rows, cost estimate), ``<name>_cells.csv`` and
    ``<name>_aggregate.csv`` (flat tables), and ``<name>.txt`` (the text
    report).  Returns the written paths.  (The completion journal is not
    an output: ``run_sweep`` streams it while executing.)
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    document = result.extras["document"]
    paths = [
        write_json(out_dir / f"{result.name}.json", document),
        write_csv(out_dir / f"{result.name}_cells.csv", document["cells"]),
        write_csv(
            out_dir / f"{result.name}_aggregate.csv", document["aggregate"]
        ),
    ]
    report_path = out_dir / f"{result.name}.txt"
    report_path.write_text(result.report)
    paths.append(report_path)
    return paths
