"""Sweep execution: plan -> ``run_cells`` per policy -> rows, report, files.

Execution is deliberately thin: every policy group runs through exactly the
``run_cells`` path the figure experiments use (under ``use_policy``, so the
PR 3 digest-safe plumbing -- policy-namespaced artifact keys, worker-side
policy re-install, profile merging -- applies unchanged).  A sweep of the
Figure 9 grid therefore produces bit-identical per-cell results to
``repro experiment fig9`` at any ``--jobs``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.parallel import default_jobs, run_cells
from repro.experiments.reporting import ExperimentResult, format_table
from repro.numeric import use_policy
from repro.sweep.aggregate import (
    SWEEP_SCHEMA_VERSION,
    aggregate_rows,
    cell_row,
    write_csv,
    write_json,
)
from repro.sweep.plan import SweepPlan, compile_plan
from repro.sweep.spec import SweepSpec

__all__ = ["run_sweep", "write_outputs"]

#: Don't inline the per-cell table into the text report past this size.
_MAX_INLINE_CELL_ROWS = 36


def run_sweep(
    spec: SweepSpec | SweepPlan, jobs: int = 1
) -> ExperimentResult:
    """Execute a sweep spec (or precompiled plan) and aggregate the fleet.

    Args:
        spec: A validated :class:`~repro.sweep.spec.SweepSpec`, or the
            :class:`~repro.sweep.plan.SweepPlan` already compiled from one.
        jobs: Worker processes per policy group; 1 runs serially, 0 means
            "all cores".  Results are identical at any worker count.

    Returns:
        An :class:`ExperimentResult` whose ``rows`` are the aggregate
        rows; ``extras`` carries the per-cell rows (``"cells"``), the raw
        ``(policy name, cell, RunResult)`` triples (``"results"``), the
        cost estimate, and the serializable document (``"document"``).
    """
    plan = spec if isinstance(spec, SweepPlan) else compile_plan(spec)
    spec = plan.spec
    estimate = plan.estimate(jobs if jobs > 0 else default_jobs())

    triples = []
    for group in plan.groups:
        with use_policy(group.policy):
            results = run_cells(list(group.cells), jobs=jobs)
        triples.extend(
            (group.policy.name, cell, result)
            for cell, result in zip(group.cells, results)
        )

    cells = [
        cell_row(policy_name, cell, result)
        for policy_name, cell, result in triples
    ]
    aggregate = aggregate_rows(
        cells, spec.group_by, spec.metrics, spec.percentiles
    )

    lines = [
        f"Sweep {spec.name!r}: {spec.title}",
        f"({estimate.cells} cells, {estimate.distinct_streams} distinct "
        f"streams, {estimate.distinct_stream_seconds:.0f} of "
        f"{estimate.stream_seconds:.0f} stream-seconds materialized)",
        "",
        f"Aggregate by ({', '.join(spec.group_by)}):",
        format_table(aggregate),
    ]
    if len(cells) <= _MAX_INLINE_CELL_ROWS:
        lines += ["Per-cell results:", format_table(cells)]
    else:
        lines.append(
            f"({len(cells)} per-cell rows; use --out to save them)"
        )
    report = "\n".join(lines)

    document = {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "name": spec.name,
        "title": spec.title,
        "cell": spec.cell,
        "policies": [group.policy.name for group in plan.groups],
        "group_by": list(spec.group_by),
        "metrics": list(spec.metrics),
        "percentiles": list(spec.percentiles),
        "estimate": estimate.as_dict(),
        "cells": cells,
        "aggregate": aggregate,
    }
    return ExperimentResult(
        name=f"sweep_{spec.name}",
        title=spec.title,
        rows=aggregate,
        report=report,
        extras={
            "cells": cells,
            "results": tuple(triples),
            "estimate": estimate.as_dict(),
            "document": document,
        },
    )


def write_outputs(result: ExperimentResult, out_dir: str | Path) -> list[Path]:
    """Write a sweep's machine-readable artifacts under ``out_dir``.

    Emits ``<name>.json`` (the self-describing document -- per-cell rows,
    aggregate rows, cost estimate), ``<name>_cells.csv`` and
    ``<name>_aggregate.csv`` (flat tables), and ``<name>.txt`` (the text
    report).  Returns the written paths.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    document = result.extras["document"]
    paths = [
        write_json(out_dir / f"{result.name}.json", document),
        write_csv(out_dir / f"{result.name}_cells.csv", document["cells"]),
        write_csv(
            out_dir / f"{result.name}_aggregate.csv", document["aggregate"]
        ),
    ]
    report_path = out_dir / f"{result.name}.txt"
    report_path.write_text(result.report)
    paths.append(report_path)
    return paths
