"""Sweep aggregation: per-cell rows -> group-by reductions -> JSON/CSV.

The per-figure experiments each hand-roll their own row shapes; a fleet
sweep instead produces one *uniform* per-cell row schema (identity columns
from :data:`repro.sweep.spec.ROW_KEYS` plus the metric columns below) and
reduces it with generic group-bys: mean, geometric mean, and percentiles
per metric.  Both layers are machine-readable -- :func:`write_json` emits
one self-describing document, :func:`write_csv` flat tables -- so results
can leave the process without screen-scraping reports.

Accumulation site: every reduction here runs in float64 regardless of the
numeric policy the cells executed under (the rows carry Python floats);
gmean additionally goes through :func:`repro.learn.metrics.geometric_mean`
which documents the same contract.  A geometric mean over values that are
not all positive is reported as ``None`` (``null`` in JSON, ``-`` in text
tables) rather than a misleading zero.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.core.parallel import Fig2Cell
from repro.core.phases import PhaseKind
from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.learn.metrics import geometric_mean

__all__ = [
    "aggregate_rows",
    "cell_row",
    "read_json",
    "write_csv",
    "write_json",
]

#: Serialization schema version of the sweep JSON document.
SWEEP_SCHEMA_VERSION = 1


def cell_row(policy_name: str, cell, result: RunResult) -> dict:
    """One flat per-cell row: identity columns then metric columns."""
    row: dict = {"policy": policy_name}
    if isinstance(cell, Fig2Cell):
        row["platform"] = cell.platform
        row["kind"] = cell.kind
    row["system"] = result.system
    row["pair"] = cell.pair
    row["scenario"] = cell.scenario
    row["seed"] = cell.seed
    row["duration_s"] = float(result.duration_s)
    breakdown = result.phase_breakdown()
    row["accuracy"] = result.average_accuracy()
    row["drop_rate"] = result.frame_drop_rate
    row["retrain_s"] = float(breakdown[PhaseKind.RETRAIN])
    row["label_s"] = float(breakdown[PhaseKind.LABEL])
    row["energy_j"] = float(result.energy_j)
    return row


def _reduce(values: list[float], percentiles: tuple[float, ...]) -> dict:
    """mean / gmean / percentiles of one metric column (float64)."""
    array = np.asarray(values, dtype=np.float64)
    out = {"mean": float(np.mean(array))}
    out["gmean"] = (
        geometric_mean(array) if np.all(array > 0) else None
    )
    for q in percentiles:
        out[f"p{q:g}".replace(".", "_")] = float(np.percentile(array, q))
    return out


def aggregate_rows(
    rows: list[dict],
    group_by: tuple[str, ...],
    metrics: tuple[str, ...],
    percentiles: tuple[float, ...] = (50.0, 90.0),
) -> list[dict]:
    """Group per-cell rows and reduce each metric.

    Groups keep first-appearance order (which follows the documented axis
    expansion order), so aggregate tables are deterministic.  Each output
    row carries the group key columns, the member count ``cells``, and
    ``{metric}_{mean,gmean,p<q>}`` columns.
    """
    if not rows:
        return []
    for column in tuple(group_by) + tuple(metrics):
        if column in group_by and column in metrics:
            raise ConfigurationError(
                f"column {column!r} cannot be both a group key and a metric"
            )
        if column not in rows[0]:
            raise ConfigurationError(
                f"unknown aggregation column {column!r}; "
                f"rows have: {', '.join(rows[0])}"
            )
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        key = tuple(row[column] for column in group_by)
        groups.setdefault(key, []).append(row)
    aggregated = []
    for key, members in groups.items():
        out = dict(zip(group_by, key))
        out["cells"] = len(members)
        for metric in metrics:
            reduced = _reduce(
                [member[metric] for member in members], tuple(percentiles)
            )
            for stat, value in reduced.items():
                out[f"{metric}_{stat}"] = value
        aggregated.append(out)
    return aggregated


def write_json(path: str | Path, payload: dict) -> Path:
    """Write one machine-readable sweep document (strict JSON, no NaN)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True, allow_nan=False)
        + "\n"
    )
    return path


def read_json(path: str | Path) -> dict:
    """Read a sweep document back (the round-trip partner of write_json)."""
    return json.loads(Path(path).read_text())


def write_csv(path: str | Path, rows: list[dict]) -> Path:
    """Write homogeneous dict rows as CSV (``None`` becomes empty)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        if not rows:
            return path
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        for row in rows:
            writer.writerow(
                {k: ("" if v is None else v) for k, v in row.items()}
            )
    return path
