"""Declarative sweep specs: a camera fleet as a validated cross-product.

DaCapo's evaluation runs one camera at a time, but the spatiotemporal-
sharing argument is a *fleet* story: many cameras learning continuously at
once.  A :class:`SweepSpec` describes such a fleet declaratively -- the
cross-product of systems x pairs x scenarios x seeds x durations x numeric
policies -- so grid experiments stop being hand-coded per figure and become
data (a TOML or JSON file) that the planner (:mod:`repro.sweep.plan`)
compiles into :class:`~repro.core.parallel.SystemCell` /
:class:`~repro.core.parallel.Fig2Cell` lists.

File schema (TOML shown; JSON uses the same keys)::

    [sweep]
    name = "fig9"              # required: [A-Za-z0-9_-]+, names the outputs
    title = "Figure 9 fleet"   # optional
    cell = "system"            # "system" (default) or "fig2"

    [axes]
    systems   = ["DaCapo-Spatiotemporal", "OrinHigh-Ekya"]  # cell="system"
    kinds     = ["student", "ekya"]                         # cell="fig2"
    platforms = ["RTX3090", "OrinHigh"]                     # cell="fig2"
    pairs     = ["resnet18_wrn50"]
    scenarios = ["S1", "S4"]
    seeds     = [0, 1]          # optional, default [0]
    durations = [600.0]         # optional, default: scenario default length
    policies  = ["float64"]     # optional, default: the ambient policy

    [[override]]                # per-axis overrides, applied in file order
    match = { scenario = ["S4"] }
    durations = [300.0]

    [aggregate]
    group_by    = ["policy", "system"]          # default
    percentiles = [50, 90]                      # default
    metrics     = ["accuracy", "drop_rate", "retrain_s", "label_s"]

Axes expand in a fixed documented order -- policy, pair, system (or
platform then kind), scenario, seed, duration -- and an override may match
on any axes and replace the value lists of axes *later* in that order (the
planner validates this), e.g. "scenario S4 runs at 300 s with seeds 0-3".
Matching earlier-only axes keeps expansion a proper cross-product per
prefix, so a spec can never produce duplicate cells.

Every name is validated against the live registries
(:data:`~repro.core.runner.SYSTEM_BUILDERS`,
:data:`~repro.models.zoo.MODEL_PAIRS`,
:data:`~repro.data.scenarios.SCENARIO_NAMES`,
:data:`~repro.numeric.POLICIES`) at load time, so a typo fails in
milliseconds instead of minutes into a fleet run.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.runner import FIG2_KINDS, GPU_PLATFORMS, SYSTEM_BUILDERS
from repro.data.scenarios import SCENARIO_NAMES
from repro.errors import ConfigurationError
from repro.models.zoo import MODEL_PAIRS
from repro.numeric import resolve_policy
from repro.share.policy import resolve_sharing

__all__ = [
    "AXIS_ORDERS",
    "CELL_KINDS",
    "METRICS",
    "ROW_KEYS",
    "SweepOverride",
    "SweepSpec",
    "load_spec",
    "spec_from_mapping",
]

#: Supported grid cell kinds.
CELL_KINDS = ("system", "fig2")

#: Axis expansion order per cell kind (earlier axes may be matched by an
#: override; only later axes may be overridden).
AXIS_ORDERS: dict[str, tuple[str, ...]] = {
    "system": ("policy", "pair", "system", "scenario", "seed", "duration"),
    "fig2": (
        "policy", "pair", "platform", "kind", "scenario", "seed", "duration",
    ),
}

#: Identity columns of a per-cell result row, per cell kind (the legal
#: ``group_by`` targets -- see :mod:`repro.sweep.aggregate`).
ROW_KEYS: dict[str, tuple[str, ...]] = {
    "system": ("policy", "system", "pair", "scenario", "seed", "duration_s"),
    "fig2": (
        "policy", "platform", "kind", "system", "pair", "scenario", "seed",
        "duration_s",
    ),
}

#: Metrics the aggregation layer can reduce.
METRICS = ("accuracy", "drop_rate", "retrain_s", "label_s", "energy_j")

#: Spec-file (plural) to internal (singular) axis names.
_AXIS_KEYS: dict[str, str] = {
    "policies": "policy",
    "pairs": "pair",
    "systems": "system",
    "platforms": "platform",
    "kinds": "kind",
    "scenarios": "scenario",
    "seeds": "seed",
    "durations": "duration",
}

_DEFAULT_GROUP_BY = ("policy", "system")
_DEFAULT_PERCENTILES = (50.0, 90.0)
_DEFAULT_METRICS = ("accuracy", "drop_rate", "retrain_s", "label_s")


@dataclass(frozen=True)
class SweepOverride:
    """One per-axis override: when ``match`` binds, replace axis values.

    Attributes:
        match: ``(axis, accepted values)`` pairs; the override applies to a
            cell iff every matched axis is bound to one of its values.
        axes: ``(axis, replacement values)`` pairs for axes strictly later
            in the expansion order than every matched axis.
    """

    match: tuple[tuple[str, tuple], ...]
    axes: tuple[tuple[str, tuple], ...]

    def applies(self, bound: dict) -> bool:
        """Whether this override matches the bound axis prefix."""
        return all(bound.get(axis) in values for axis, values in self.match)


@dataclass(frozen=True)
class SweepSpec:
    """A validated fleet description (see the module docstring for schema).

    Attributes:
        name: Sweep id; names reports and output files.
        title: Human-readable title.
        cell: Grid cell kind (``"system"`` or ``"fig2"``).
        axes: Internal axis name -> value tuple.  ``duration`` may be
            ``(None,)`` (scenario default length); ``policy`` may be ``()``
            (resolve the ambient policy at plan time).
        overrides: Per-axis overrides, applied in order (last match wins).
        group_by: Per-cell row columns the aggregation groups on.
        percentiles: Percentiles reported per metric.
        metrics: Metrics reduced by the aggregation layer.
        sharing: Cross-camera sharing policy name (``[sweep] sharing``),
            or None to defer to the ambient policy (``--sharing`` /
            ``$REPRO_SHARING`` / off).  Canonicalized at validation.
    """

    name: str
    title: str
    cell: str = "system"
    axes: dict[str, tuple] = field(default_factory=dict)
    overrides: tuple[SweepOverride, ...] = ()
    group_by: tuple[str, ...] = _DEFAULT_GROUP_BY
    percentiles: tuple[float, ...] = _DEFAULT_PERCENTILES
    metrics: tuple[str, ...] = _DEFAULT_METRICS
    sharing: str | None = None

    def __post_init__(self) -> None:
        if self.sharing is not None:
            if not isinstance(self.sharing, str):
                raise ConfigurationError(
                    "sweep spec: 'sharing' must be a policy name string"
                )
            object.__setattr__(
                self, "sharing", resolve_sharing(self.sharing).name
            )
        _validate_spec(self)

    @property
    def axis_order(self) -> tuple[str, ...]:
        """The expansion order for this spec's cell kind."""
        return AXIS_ORDERS[self.cell]


def _fail(source: str, message: str) -> ConfigurationError:
    return ConfigurationError(f"sweep spec {source}: {message}")


def _as_tuple(value, key: str, source: str) -> tuple:
    if not isinstance(value, (list, tuple)):
        raise _fail(source, f"{key!r} must be a list, got {type(value).__name__}")
    return tuple(value)


_NAME_VALIDATORS: dict[str, tuple] = {
    "system": tuple(SYSTEM_BUILDERS),
    "pair": tuple(MODEL_PAIRS),
    "scenario": tuple(SCENARIO_NAMES),
    "platform": tuple(GPU_PLATFORMS),
    "kind": tuple(FIG2_KINDS),
}


def _check_axis_values(axis: str, values: tuple, source: str) -> tuple:
    """Validate (and canonicalize) one axis' value list."""
    if len(values) == 0:
        raise _fail(source, f"axis {axis!r} must not be empty")
    if axis == "policy":
        try:
            values = tuple(resolve_policy(v).name for v in values)
        except ConfigurationError as exc:
            raise _fail(source, str(exc))
    elif axis == "seed":
        for v in values:
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                raise _fail(
                    source, f"seeds must be non-negative integers, got {v!r}"
                )
    elif axis == "duration":
        checked = []
        for v in values:
            if v is None:
                checked.append(None)
                continue
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v <= 0:
                raise _fail(
                    source, f"durations must be positive seconds, got {v!r}"
                )
            checked.append(float(v))
        values = tuple(checked)
    else:
        known = _NAME_VALIDATORS[axis]
        for v in values:
            if v not in known:
                raise _fail(
                    source,
                    f"unknown {axis} {v!r}; known: {', '.join(known)}",
                )
    if len(set(values)) != len(values):
        raise _fail(source, f"axis {axis!r} has duplicate values: {values}")
    return values


def _canonical_match_value(axis: str, value):
    """Normalize a match value the way its axis' own values normalize.

    Policy aliases become canonical names ("f32" -> "float32"; an
    unresolvable alias is left as-is for the never-fires check to report)
    and numeric durations become floats, so matches compare equal to the
    canonicalized axis values they target.
    """
    if axis == "policy":
        try:
            return resolve_policy(value).name
        except ConfigurationError:
            return value
    if axis == "duration" and isinstance(value, (int, float)) and not (
        isinstance(value, bool)
    ):
        return float(value)
    return value


def _validate_spec(spec: SweepSpec) -> None:
    source = f"{spec.name!r}" if spec.name else "<unnamed>"
    if not spec.name or not all(
        c.isalnum() or c in "_-" for c in spec.name
    ):
        raise _fail(
            source, f"name must be non-empty [A-Za-z0-9_-]+, got {spec.name!r}"
        )
    if spec.cell not in CELL_KINDS:
        raise _fail(
            source,
            f"cell must be one of {', '.join(CELL_KINDS)}, got {spec.cell!r}",
        )
    order = AXIS_ORDERS[spec.cell]
    for axis in spec.axes:
        if axis not in order:
            raise _fail(
                source,
                f"axis {axis!r} does not apply to cell={spec.cell!r} "
                f"(expected one of: {', '.join(order)})",
            )
    for axis in order:
        if axis in ("policy", "seed", "duration"):
            continue  # defaulted below
        if axis not in spec.axes:
            raise _fail(source, f"missing required axis {axis!r}")
    # Fill defaults, then re-validate every axis in place.
    spec.axes.setdefault("seed", (0,))
    spec.axes.setdefault("duration", (None,))
    spec.axes.setdefault("policy", ())
    for axis, values in spec.axes.items():
        if axis == "policy" and len(values) == 0:
            continue  # ambient policy, resolved at plan time
        spec.axes[axis] = _check_axis_values(axis, tuple(values), source)

    # First pass: validate every override's replacement values (storing
    # back the canonical forms -- float durations, canonical policy names
    # -- so cells never carry uncanonicalized values) and collect the full
    # set of values each axis can ever take (base plus values introduced
    # by overrides) -- a later override may legitimately match on a value
    # only an earlier override introduced.
    possible: dict[str, set] = {
        axis: set(values) for axis, values in spec.axes.items()
    }
    canonical_overrides = []
    for index, override in enumerate(spec.overrides):
        where = f"override[{index}]"
        if not override.match:
            raise _fail(source, f"{where}: empty match")
        if not override.axes:
            raise _fail(source, f"{where}: overrides no axes")
        new_axes = []
        for axis, values in override.axes:
            if axis not in order:
                raise _fail(source, f"{where}: unknown axis {axis!r}")
            values = _check_axis_values(
                axis, tuple(values), f"{source} {where}"
            )
            new_axes.append((axis, values))
            possible.setdefault(axis, set()).update(values)
        new_match = tuple(
            (axis, tuple(_canonical_match_value(axis, v) for v in values))
            for axis, values in override.match
        )
        canonical_overrides.append(
            SweepOverride(match=new_match, axes=tuple(new_axes))
        )
    # The dataclass is frozen; overrides are replaced wholesale with their
    # canonicalized twins (same shape, normalized values).
    object.__setattr__(spec, "overrides", tuple(canonical_overrides))
    # Second pass: matches must name reachable values and only override
    # axes later in the expansion order.
    for index, override in enumerate(spec.overrides):
        where = f"override[{index}]"
        last_match = -1
        for axis, values in override.match:
            if axis not in order:
                raise _fail(source, f"{where}: unknown match axis {axis!r}")
            for v in values:
                if v not in possible[axis]:
                    raise _fail(
                        source,
                        f"{where}: match value {v!r} never occurs on the "
                        f"{axis!r} axis (base or overridden values: "
                        f"{tuple(sorted(possible[axis], key=repr))!r}) -- "
                        "it would never fire",
                    )
            last_match = max(last_match, order.index(axis))
        for axis, _ in override.axes:
            if order.index(axis) <= last_match:
                raise _fail(
                    source,
                    f"{where}: cannot override {axis!r} -- overridden axes "
                    "must come after every matched axis in the expansion "
                    f"order ({', '.join(order)})",
                )

    row_keys = ROW_KEYS[spec.cell]
    for column in spec.group_by:
        if column not in row_keys:
            raise _fail(
                source,
                f"group_by column {column!r} is not a row key for "
                f"cell={spec.cell!r} (known: {', '.join(row_keys)})",
            )
    if len(set(spec.group_by)) != len(spec.group_by):
        raise _fail(source, f"group_by has duplicates: {spec.group_by}")
    for q in spec.percentiles:
        if not isinstance(q, (int, float)) or isinstance(q, bool) or not (
            0 <= q <= 100
        ):
            raise _fail(source, f"percentiles must be in [0, 100], got {q!r}")
    for metric in spec.metrics:
        if metric not in METRICS:
            raise _fail(
                source,
                f"unknown metric {metric!r} (known: {', '.join(METRICS)})",
            )
    if not spec.metrics:
        raise _fail(source, "metrics must not be empty")


def _parse_override(entry: dict, index: int, source: str) -> SweepOverride:
    if not isinstance(entry, dict):
        raise _fail(source, f"override[{index}] must be a table")
    entry = dict(entry)
    raw_match = entry.pop("match", None)
    if not isinstance(raw_match, dict) or not raw_match:
        raise _fail(
            source,
            f"override[{index}] needs a non-empty 'match' table "
            "(axis = value or [values])",
        )
    match = []
    for key, value in raw_match.items():
        axis = _AXIS_KEYS.get(key, key)
        values = value if isinstance(value, (list, tuple)) else [value]
        match.append((axis, tuple(values)))
    axes = []
    for key, value in entry.items():
        axis = _AXIS_KEYS.get(key)
        if axis is None:
            raise _fail(
                source,
                f"override[{index}]: unknown key {key!r} "
                f"(expected 'match' or one of: {', '.join(_AXIS_KEYS)})",
            )
        axes.append((axis, _as_tuple(value, key, source)))
    return SweepOverride(match=tuple(match), axes=tuple(axes))


def spec_from_mapping(data: dict, source: str = "<mapping>") -> SweepSpec:
    """Build and validate a :class:`SweepSpec` from a parsed TOML/JSON dict."""
    if not isinstance(data, dict):
        raise _fail(source, "top level must be a table/object")
    data = dict(data)
    head = data.pop("sweep", {})
    raw_axes = data.pop("axes", {})
    if "override" in data and "overrides" in data:
        raise _fail(
            source,
            "use either 'override' or 'overrides' for the override "
            "tables, not both",
        )
    raw_overrides = data.pop("override", None)
    if raw_overrides is None:
        raw_overrides = data.pop("overrides", [])
    raw_aggregate = data.pop("aggregate", {})
    if data:
        raise _fail(
            source,
            f"unknown top-level keys: {', '.join(sorted(data))} "
            "(expected sweep / axes / override / aggregate)",
        )
    for section, value in (("sweep", head), ("axes", raw_axes),
                           ("aggregate", raw_aggregate)):
        if not isinstance(value, dict):
            raise _fail(source, f"section [{section}] must be a table")
    if not isinstance(raw_overrides, (list, tuple)):
        raise _fail(source, "[[override]] must be an array of tables")

    head = dict(head)
    name = head.pop("name", None)
    if not isinstance(name, str) or not name:
        raise _fail(source, "[sweep] needs a non-empty string 'name'")
    title = head.pop("title", name)
    cell = head.pop("cell", "system")
    sharing = head.pop("sharing", None)
    if sharing is not None and not isinstance(sharing, str):
        raise _fail(source, "[sweep] 'sharing' must be a policy name string")
    if head:
        raise _fail(
            source, f"unknown [sweep] keys: {', '.join(sorted(head))}"
        )

    axes: dict[str, tuple] = {}
    for key, value in raw_axes.items():
        axis = _AXIS_KEYS.get(key)
        if axis is None:
            raise _fail(
                source,
                f"unknown axis key {key!r} "
                f"(expected one of: {', '.join(_AXIS_KEYS)})",
            )
        axes[axis] = _as_tuple(value, key, source)

    overrides = tuple(
        _parse_override(entry, index, source)
        for index, entry in enumerate(raw_overrides)
    )

    agg = dict(raw_aggregate)
    group_by = tuple(_as_tuple(
        agg.pop("group_by", list(_DEFAULT_GROUP_BY)), "group_by", source
    ))
    percentiles = tuple(
        float(q) if isinstance(q, (int, float)) and not isinstance(q, bool)
        else q
        for q in _as_tuple(
            agg.pop("percentiles", list(_DEFAULT_PERCENTILES)),
            "percentiles", source,
        )
    )
    metrics = tuple(_as_tuple(
        agg.pop("metrics", list(_DEFAULT_METRICS)), "metrics", source
    ))
    if agg:
        raise _fail(
            source, f"unknown [aggregate] keys: {', '.join(sorted(agg))}"
        )

    return SweepSpec(
        name=name,
        title=title,
        cell=cell,
        axes=axes,
        overrides=overrides,
        group_by=group_by,
        percentiles=percentiles,
        metrics=metrics,
        sharing=sharing,
    )


def load_spec(path: str | Path) -> SweepSpec:
    """Load and validate a sweep spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if not path.is_file():
        raise ConfigurationError(f"sweep spec not found: {path}")
    suffix = path.suffix.lower()
    try:
        if suffix == ".toml":
            data = tomllib.loads(path.read_text())
        elif suffix == ".json":
            data = json.loads(path.read_text())
        else:
            raise ConfigurationError(
                f"sweep spec {path}: unsupported suffix {suffix!r} "
                "(expected .toml or .json)"
            )
    except (tomllib.TOMLDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"sweep spec {path}: parse error: {exc}")
    return spec_from_mapping(data, source=str(path))
