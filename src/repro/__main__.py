"""Command-line interface: ``python -m repro``.

Subcommands:

- ``list`` -- show available experiments, systems, scenarios, and pairs.
- ``experiment <id>`` -- run one paper artifact and print its report.
- ``run <system> <pair> <scenario>`` -- run one system and print a summary.
- ``sweep <spec.toml>`` -- run a declarative fleet sweep (``--plan`` prices
  it without running; ``--out DIR`` saves JSON/CSV artifacts plus the
  completion journal ``--resume`` reads to skip already-finished shards).
- ``serve <spec.toml> --out DIR`` -- resident fleet service: pace the
  spec's streams against a real-time clock (``--speedup``), degrade
  deliberately when oversubscribed, journal every window crash-safely,
  and expose an HTTP/JSON control plane (``--control PORT``).  Restart
  on the same ``--out`` to resume; see README "Fleet service".
- ``worker`` -- (internal) shard worker speaking the JSON-lines protocol
  on stdio; launched by the subprocess backend, locally or over ssh.
  With ``--queue DIR`` it pulls from a file-system job queue instead --
  attachable to a running ``sweep --backend queue`` from any host that
  shares the filesystem.  SIGTERM/SIGINT exit gracefully, releasing the
  current shard/lease.
- ``tune <pair>`` -- offline hyperparameter search (section VI-D).

``--backend serial|process[:N]|subprocess[:N]|queue[:N]`` (on
``experiment`` and ``sweep``; also via ``$REPRO_BACKEND``) selects the
execution transport; results are bit-identical on every backend at any
worker count.  The queue backend is the fault-tolerant pull model:
workers lease shards and heartbeat, and a SIGKILLed or wedged worker's
lease expires (``$REPRO_LEASE_TTL``) so its shard is re-enqueued --
see README "Fault tolerance".

Exit statuses: configuration errors (unknown names, malformed sweep
specs, invalid ``--jobs``/``--backend`` values) exit 2 with a one-line
message instead of a traceback; execution failures (a shard that could
not be completed after the scheduler's bounded retries -- e.g. workers
kept dying) exit 3, naming the affected cells.

``--profile`` (on ``experiment`` and ``run``) prints a phase-level
wall-time breakdown (materialize / pretrain / label / retrain / inference)
after the report.  It composes with ``--jobs N``: worker shards profile
themselves and the parent merges their snapshots, so the totals are CPU
seconds across every process.

The numeric policy comes from ``REPRO_DTYPE`` (default ``float64``;
``float32`` opts into the single-precision fast path with its own frozen
reference digests -- see README "Numeric policy").
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import nullcontext
from pathlib import Path

from repro import profiling
from repro.core import (
    SYSTEM_BUILDERS,
    build_system,
    default_jobs,
    run_on_scenario,
)
from repro.core.tuning import tune_hyperparameters
from repro.data.scenarios import SCENARIO_NAMES
from repro.errors import ConfigurationError, ExecutionError
from repro.exec import resolve_backend, use_backend
from repro.experiments import (
    EXPERIMENTS,
    run_experiment,
    supports_backend,
    supports_jobs,
)
from repro.models import MODEL_PAIRS
from repro.sweep import compile_plan, load_spec, run_sweep, write_outputs


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("systems:    ", ", ".join(SYSTEM_BUILDERS))
    print("scenarios:  ", ", ".join(SCENARIO_NAMES))
    print("pairs:      ", ", ".join(MODEL_PAIRS))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    if args.jobs is not None:
        if not supports_jobs(args.id):
            print(
                f"experiment {args.id!r} does not support --jobs; "
                "running serially",
                file=sys.stderr,
            )
        else:
            kwargs["jobs"] = args.jobs
    if args.backend is not None and not supports_backend(args.id):
        print(
            f"experiment {args.id!r} does not route through the "
            "execution backends; running serially",
            file=sys.stderr,
        )
    profiler = profiling.enable() if args.profile else None
    try:
        # The ambient override is how the transport reaches runners that
        # simply call run_cells(cells, jobs=...): no per-runner plumbing.
        with use_backend(args.backend) if args.backend else nullcontext():
            result = run_experiment(args.id, **kwargs)
    finally:
        if profiler is not None:
            profiling.disable()
    print(result.report)
    if profiler is not None:
        print()
        print(profiler.report())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    profiler = profiling.enable() if args.profile else None
    try:
        system = build_system(args.system, args.pair, seed=args.seed)
        result = run_on_scenario(
            system, args.scenario, seed=args.seed, duration_s=args.duration
        )
    finally:
        if profiler is not None:
            profiling.disable()
    for key, value in result.summary().items():
        print(f"{key:22s} {value}")
    if profiler is not None:
        print()
        print(profiler.report())
    return 0


def _sharing_context(cli_value: str | None, spec_value: str | None):
    """The sharing override a command runs under.

    Precedence: explicit ``--sharing`` > the spec's ``[sweep] sharing`` >
    ambient (``$REPRO_SHARING`` / off, which needs no override installed).
    """
    from contextlib import nullcontext

    from repro.share.policy import resolve_sharing, use_sharing

    chosen = cli_value if cli_value is not None else spec_value
    if chosen is None:
        return nullcontext()
    return use_sharing(resolve_sharing(chosen))


def _batch_context(cli_value: str | None):
    """The batching override a command runs under.

    Precedence: explicit ``--batch`` > ambient (``$REPRO_BATCH`` / off,
    which needs no override installed).
    """
    from contextlib import nullcontext

    from repro.batching import resolve_batching, use_batching

    if cli_value is None:
        return nullcontext()
    return use_batching(resolve_batching(cli_value))


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    plan = compile_plan(spec)
    jobs = args.jobs if args.jobs is not None else 1
    if jobs < 0:
        # Same contract as run_cells; checked here so --plan rejects an
        # invalid --jobs too instead of silently pricing at one worker.
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    with _sharing_context(args.sharing, spec.sharing), _batch_context(
        args.batch
    ):
        if args.plan:
            # Price the plan through the same backend resolution the real
            # run uses (explicit --backend > ambient REPRO_BACKEND >
            # default): garbage exits 2 exactly as it would without --plan,
            # and the printed worker count matches the executed estimate.
            # Backends construct lazily, so pricing spawns nothing.
            instance, plan_workers, owned = resolve_backend(
                args.backend, jobs or default_jobs(), plan.num_cells
            )
            if owned:
                instance.close()
            print(plan.describe(jobs=plan_workers), end="")
            return 0
        profiler = profiling.enable() if args.profile else None
        try:
            result = run_sweep(
                plan,
                jobs=jobs,
                backend=args.backend,
                out_dir=args.out,
                resume=args.resume,
            )
        finally:
            if profiler is not None:
                profiling.disable()
    print(result.report)
    if profiler is not None:
        print()
        print(profiler.report())
    if args.out is not None:
        for path in write_outputs(result, args.out):
            print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service pulls in the HTTP control plane and
    # signal handling that no batch command needs.
    from repro.numeric import use_policy
    from repro.service.daemon import FleetService, ServiceConfig

    spec = load_spec(args.spec)
    plan = compile_plan(spec)
    policies = sorted({group.policy.name for group in plan.groups})
    if len(policies) != 1:
        # A session journal is pinned to one numeric policy (window
        # digests are policy-scoped); a multi-policy grid is a sweep.
        raise ConfigurationError(
            "serve needs a single-policy spec, got policies "
            f"{', '.join(policies)}; split the spec or use sweep"
        )
    cells = [cell for group in plan.groups for cell in group.cells]
    if args.jobs is not None and args.jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {args.jobs}")
    config = ServiceConfig(
        out_dir=args.out,
        window_s=args.window,
        speedup=args.speedup,
        backend=args.backend,
        jobs=args.jobs if args.jobs is not None else 1,
        control_port=args.control,
        degrade=not args.no_degrade,
        stay=args.stay,
        window_mode=args.window_mode,
    )
    group = plan.groups[0]
    print(
        f"serving {len(cells)} stream(s) out={args.out} "
        f"speedup={args.speedup:g} window={args.window:g}s",
        flush=True,
    )
    with use_policy(group.policy), _sharing_context(
        args.sharing, spec.sharing
    ), _batch_context(args.batch):
        service = FleetService(config, cells)
        code = service.run()
    print(f"session journal: {args.out}/session.jsonl")
    return code


def _cmd_worker(args: argparse.Namespace) -> int:
    # Imported lazily: the stdio worker loop owns stdio and is only ever
    # useful as a child of a backend (or attached to a queue directory).
    from repro.exec.worker import worker_main

    argv = []
    if args.queue is not None:
        argv += ["--queue", str(args.queue)]
    if args.drain:
        argv += ["--drain"]
    return worker_main(argv)


def _cmd_tune(args: argparse.Namespace) -> int:
    outcome = tune_hyperparameters(
        args.pair, duration_s=args.duration or 300.0, seed=args.seed
    )
    print(f"best score: {outcome.best_score:.3f}")
    print(f"best config: {outcome.best}")
    print(f"trials evaluated: {len(outcome.trials)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DaCapo (ISCA 2024) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments/systems/scenarios/pairs")

    p_exp = sub.add_parser("experiment", help="run one paper artifact")
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--duration", type=float, default=None,
                       help="stream seconds for end-to-end experiments")
    p_exp.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for grid experiments; 0 uses "
                            "all cores (results are identical at any "
                            "worker count)")
    p_exp.add_argument("--profile", action="store_true",
                       help="print a phase-level wall-time breakdown "
                            "(aggregates worker processes when combined "
                            "with --jobs)")
    p_exp.add_argument("--backend", default=None, metavar="KIND[:N]",
                       help="execution backend: serial, process[:N], "
                            "subprocess[:N], or queue[:N] (results are "
                            "bit-identical on every backend)")

    p_run = sub.add_parser("run", help="run one system on one scenario")
    p_run.add_argument("system", choices=list(SYSTEM_BUILDERS))
    p_run.add_argument("pair", choices=list(MODEL_PAIRS))
    p_run.add_argument("scenario", choices=list(SCENARIO_NAMES))
    p_run.add_argument("--duration", type=float, default=None)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--profile", action="store_true",
                       help="print a phase-level wall-time breakdown")

    p_sweep = sub.add_parser(
        "sweep", help="run a declarative fleet sweep from a TOML/JSON spec"
    )
    p_sweep.add_argument("spec", type=Path,
                         help="sweep spec file (.toml or .json); shipped "
                              "examples live under examples/")
    p_sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes per policy group; 0 uses "
                              "all cores (results are identical at any "
                              "worker count)")
    p_sweep.add_argument("--profile", action="store_true",
                         help="print a phase-level wall-time breakdown "
                              "(aggregates worker processes)")
    p_sweep.add_argument("--out", type=Path, default=None, metavar="DIR",
                         help="directory for JSON/CSV artifacts "
                              "(per-cell rows, aggregate rows, report)")
    p_sweep.add_argument("--plan", action="store_true",
                         help="print the compiled plan and cost estimate "
                              "without running anything")
    p_sweep.add_argument("--backend", default=None, metavar="KIND[:N]",
                         help="execution backend: serial, process[:N], "
                              "subprocess[:N], or queue[:N] -- the "
                              "fault-tolerant pull model; with --out DIR "
                              "the queue lives at DIR/queue so external "
                              "workers can attach (results are "
                              "bit-identical on every backend)")
    p_sweep.add_argument("--sharing", default=None, metavar="POLICY",
                         help="cross-camera sharing policy (off/cluster); "
                              "overrides the spec's [sweep] sharing and "
                              "$REPRO_SHARING")
    p_sweep.add_argument("--batch", default=None, metavar="POLICY",
                         help="batched multi-cell execution (off/on): "
                              "advance geometry-compatible cells in "
                              "lockstep, K cells per numpy call, with "
                              "bit-identical per-cell results; overrides "
                              "$REPRO_BATCH")
    p_sweep.add_argument("--resume", action="store_true",
                         help="skip shards already recorded in the "
                              "completion journal under --out DIR "
                              "(requires --out; the finished document is "
                              "identical to an uninterrupted run)")

    p_serve = sub.add_parser(
        "serve",
        help="resident fleet service: pace a single-policy spec's "
             "streams in real time (windowed, with degradation and "
             "crash-safe resume); restart on the same --out to resume",
    )
    p_serve.add_argument("spec", type=Path,
                         help="sweep spec file (.toml or .json) naming "
                              "the streams; must compile to one numeric "
                              "policy (see examples/fleet_service.toml)")
    p_serve.add_argument("--out", type=Path, required=True, metavar="DIR",
                         help="service directory: session journal, final "
                              "state snapshot, and (queue backend) the "
                              "queue directory; reusing it resumes the "
                              "session")
    p_serve.add_argument("--window", type=float, default=60.0, metavar="S",
                         help="window length in stream seconds "
                              "(default 60)")
    p_serve.add_argument("--speedup", type=float, default=0.0, metavar="X",
                         help="stream seconds per wall second; 1 is real "
                              "time, 0 (default) is eager -- windows "
                              "release on completion, no deadlines")
    p_serve.add_argument("--backend", default=None, metavar="KIND[:N]",
                         help="execution backend: serial, process[:N], "
                              "subprocess[:N], or queue[:N] (queue lives "
                              "at OUT/queue so external workers can "
                              "attach)")
    p_serve.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker count when --backend carries no :N "
                              "(default 1)")
    p_serve.add_argument("--control", type=int, default=None,
                         metavar="PORT",
                         help="serve the HTTP/JSON control plane on this "
                              "loopback port (0 = ephemeral; the bound "
                              "port is written to OUT/control.port)")
    p_serve.add_argument("--no-degrade", action="store_true",
                         help="pin every stream at NORMAL: deadline "
                              "misses become plain lateness, every "
                              "window is still computed fresh")
    p_serve.add_argument("--stay", action="store_true",
                         help="keep serving after all streams retire "
                              "(admit more over the control plane); "
                              "default exits when idle")
    p_serve.add_argument("--sharing", default=None, metavar="POLICY",
                         help="cross-camera sharing policy (off/cluster); "
                              "overrides the spec's [sweep] sharing and "
                              "$REPRO_SHARING")
    p_serve.add_argument("--batch", default=None, metavar="POLICY",
                         help="batched multi-cell execution (off/on): "
                              "co-windowed same-geometry streams "
                              "dispatch as one batched shard instead of "
                              "K singletons, bit-identically; overrides "
                              "$REPRO_BATCH")
    p_serve.add_argument("--window-mode", default=None,
                         choices=["incremental", "prefix"],
                         help="incremental (default; resume each window "
                              "from the previous window's run-state "
                              "snapshot) or prefix (stateless full-"
                              "prefix recompute); both journal "
                              "byte-identical window records; default "
                              "honours $REPRO_WINDOW_MODE")

    p_worker = sub.add_parser(
        "worker",
        help="(internal) shard worker: JSON-lines protocol on stdio, or "
             "pull-model with --queue DIR (attachable to a running "
             "sweep from any host sharing the filesystem)",
    )
    p_worker.add_argument("--queue", type=Path, default=None, metavar="DIR",
                          help="pull shards from this queue directory "
                               "instead of stdio (a sweep run with "
                               "--backend queue --out DIR queues under "
                               "DIR/queue)")
    p_worker.add_argument("--drain", action="store_true",
                          help="with --queue: exit once no pending work "
                               "remains")

    p_tune = sub.add_parser("tune", help="offline hyperparameter search")
    p_tune.add_argument("pair", choices=list(MODEL_PAIRS))
    p_tune.add_argument("--duration", type=float, default=None)
    p_tune.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "tune": _cmd_tune,
    }
    try:
        return handlers[args.command](args)
    except ConfigurationError as exc:
        # A bad name, spec, or --jobs value is an operator mistake, not a
        # crash: one line on stderr, conventional usage-error status.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except ExecutionError as exc:
        # The configuration was fine but the dispatch layer could not
        # complete a shard (workers kept dying, protocol fault, injected
        # abort).  The ShardFailure message names the affected cells.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 3
    except BrokenPipeError:
        # Downstream consumer (head, a pager) closed the pipe mid-report.
        # Repoint stdout at devnull so the interpreter's exit-time flush
        # does not raise a second traceback, and exit like SIGPIPE would.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
