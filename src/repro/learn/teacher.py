"""Teacher models: large proxies pretrained across all domains.

The teacher labels sampled frames at runtime (paper Figure 1, kernel 3).
It is pretrained offline on a corpus drawn from *every* domain combination,
so it stays accurate through drifts -- but not perfect, so retraining labels
carry realistic noise.

Teachers are cached per (model name, seed): pretraining is deterministic
and shared across experiments in a process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import zlib

import numpy as np

from repro import profiling
from repro.data.attributes import (
    Domain,
    LabelDistribution,
    Location,
    TimeOfDay,
    Weather,
)
from repro.data.distributions import DomainModel
from repro.learn.cache import (
    load_pretrained,
    pretrain_cache_key,
    store_pretrained,
)
from repro.learn.mlp import MLPClassifier
from repro.learn.train import TrainConfig, train_sgd
from repro.models.zoo import get_proxy_config
from repro.mx import MXFormat
from repro.numeric import FLOAT64, active_policy, resolve_policy, use_policy

__all__ = ["TeacherModel", "make_teacher", "pretraining_corpus"]

#: Pretraining corpus size and schedule: enough for teachers to exceed ~90%
#: in-domain accuracy while keeping construction fast.
_PRETRAIN_SAMPLES_PER_DOMAIN = 400
_PRETRAIN_EPOCHS = 50
_PRETRAIN_LR = 5e-2
_PRETRAIN_BATCH = 32


def _pretrain_cache_key(model_name: str) -> str:
    """Disk-cache key component for everything else the weights depend on."""
    return pretrain_cache_key(
        _PRETRAIN_SAMPLES_PER_DOMAIN,
        _PRETRAIN_EPOCHS,
        _PRETRAIN_LR,
        _PRETRAIN_BATCH,
        get_proxy_config(model_name).hidden_sizes,
    )


def _all_domains() -> list[Domain]:
    """Every attribute combination (the teacher's training coverage)."""
    domains = []
    for time in TimeOfDay:
        for location in Location:
            for weather in Weather:
                domains.append(
                    Domain(
                        labels=LabelDistribution.ALL,
                        time=time,
                        location=location,
                        weather=weather,
                    )
                )
    return domains


def pretraining_corpus(
    model: DomainModel,
    samples_per_domain: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """A balanced multi-domain corpus (the "general dataset" of step 1)."""
    xs, ys = [], []
    for domain in _all_domains():
        x, y = model.sample(domain, samples_per_domain, rng)
        xs.append(x)
        ys.append(y)
    return np.concatenate(xs), np.concatenate(ys)


@dataclass
class TeacherModel:
    """A pretrained labeling model.

    Attributes:
        name: The paper model this proxy stands in for.
        mlp: The trained classifier.
        fmt: MX precision the teacher executes at (None = FP32 on GPU).
        sensitivity: Precision-sensitivity multiplier from the zoo.
    """

    name: str
    mlp: MLPClassifier
    fmt: MXFormat | None = None
    sensitivity: float = 1.0

    def label(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels for sampled frames (the retraining labels)."""
        return self.mlp.predict(x, self.fmt, self.sensitivity)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Ground-truth accuracy (for analysis; the system never sees it)."""
        return self.mlp.accuracy(x, y, self.fmt, self.sensitivity)

    def with_precision(self, fmt: MXFormat | None) -> "TeacherModel":
        """The same weights executed at a different precision."""
        return TeacherModel(
            name=self.name,
            mlp=self.mlp,
            fmt=fmt,
            sensitivity=self.sensitivity,
        )


@lru_cache(maxsize=None)
def _pretrained_mlp(
    model_name: str, geometry_seed: int, seed: int, policy_name: str
) -> MLPClassifier:
    """The shared pretrained teacher per (model, geometry, seed, policy).

    Like the student, pretraining is offline work and always runs at
    float64; the float32 teacher is the float64 one cast once at
    deployment (cloud-pretrain, quantize, ship).  This matters doubly for
    the teacher: its labels feed every retraining, so a natively-float32
    pretrained teacher would disagree with the float64 one on whole
    percents of samples and make cross-policy accuracy comparisons
    meaningless.  ``policy_name`` keys the memo and the disk entry.
    """
    # The argument, not the ambient context, is the policy of record --
    # re-install it so the disk-cache key and the returned dtype always
    # agree with the memo key, whatever the caller's environment says.
    with profiling.scope(profiling.PRETRAIN), use_policy(policy_name):
        policy = resolve_policy(policy_name)
        cache_key = _pretrain_cache_key(model_name)
        cached = load_pretrained(
            "teacher", model_name, geometry_seed, seed, cache_key
        )
        if cached is not None:
            return cached
        domain_model = DomainModel(geometry_seed=geometry_seed)
        config = get_proxy_config(model_name)
        rng = np.random.default_rng(
            (seed, zlib.crc32(model_name.encode()) & 0xFFFF)
        )
        with use_policy(FLOAT64):
            x, y = pretraining_corpus(
                domain_model, _PRETRAIN_SAMPLES_PER_DOMAIN, rng
            )
            mlp = MLPClassifier.create(
                domain_model.feature_dim,
                config.hidden_sizes,
                domain_model.num_classes,
                rng,
            )
            train_sgd(
                mlp, x, y,
                TrainConfig(
                    learning_rate=_PRETRAIN_LR,
                    batch_size=_PRETRAIN_BATCH,
                    epochs=_PRETRAIN_EPOCHS,
                ),
                rng,
            )
        if policy.dtype != mlp.dtype:
            mlp = mlp.astype(policy.dtype)
        store_pretrained(
            "teacher", model_name, geometry_seed, seed, mlp, cache_key
        )
        return mlp


def make_teacher(
    model_name: str,
    domain_model: DomainModel | None = None,
    fmt: MXFormat | None = None,
    seed: int = 0,
) -> TeacherModel:
    """Pretrain (or fetch the cached) teacher proxy for a paper model.

    Args:
        model_name: Teacher name from the zoo (e.g. ``"wide_resnet50_2"``).
        domain_model: Data geometry (defaults to the shared geometry).
        fmt: Execution precision (MX6 on DaCapo, None/FP32 on GPUs).
        seed: Pretraining seed.
    """
    domain_model = domain_model or DomainModel()
    config = get_proxy_config(model_name)
    mlp = _pretrained_mlp(
        model_name, domain_model.geometry_seed, seed, active_policy().name
    )
    return TeacherModel(
        name=model_name,
        mlp=mlp.clone(),
        fmt=fmt,
        sensitivity=config.precision_sensitivity,
    )
