"""Accuracy metrics used across the evaluation.

The paper reports:

- end-to-end *averaged accuracy* over window-period time slices
  (section VII-A, "Accuracy metric");
- *accuracy over time* at 15-second intervals (Figure 10);
- geometric means across scenarios (Figure 9).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["accuracy", "windowed_accuracy", "geometric_mean"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions (empty inputs score 0)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ConfigurationError("predictions and labels must align")
    if len(labels) == 0:
        return 0.0
    return float(np.mean(predictions == labels))


def windowed_accuracy(
    times: np.ndarray,
    correct: np.ndarray,
    window_s: float,
    duration_s: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-window accuracy series.

    Args:
        times: Frame timestamps (seconds).
        correct: Per-frame correctness (bool or 0/1); dropped frames count
            as incorrect and must already be included.
        window_s: Window length (paper: 15 s for plots, the baseline window
            period for averages).
        duration_s: Total span; defaults to ``max(times)``.

    Returns:
        ``(window_starts, accuracies)``; windows without frames score 0.
    """
    # Accumulation site: times/correct are deliberately upcast to float64
    # under every numeric policy -- window binning must land float32 frame
    # timestamps in the same windows as float64 ones, and the per-window
    # bincount sums would lose counts past 2**24 frames at float32.
    times = np.asarray(times, dtype=np.float64)
    correct = np.asarray(correct, dtype=np.float64)
    if times.shape != correct.shape:
        raise ConfigurationError("times and correctness must align")
    if window_s <= 0:
        raise ConfigurationError("window length must be positive")
    if len(times) == 0:
        return np.empty(0), np.empty(0)

    span = duration_s if duration_s is not None else float(times.max()) + 1e-9
    num_windows = max(1, int(np.ceil(span / window_s)))
    starts = np.arange(num_windows) * window_s
    indices = np.minimum(
        (times // window_s).astype(np.int64), num_windows - 1
    )
    sums = np.bincount(indices, weights=correct, minlength=num_windows)
    counts = np.bincount(indices, minlength=num_windows)
    with np.errstate(invalid="ignore", divide="ignore"):
        series = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return starts, series


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of positive values (Figure 9's gmean columns).

    Accumulation site: always computed in float64 -- the log-mean-exp over
    a float32 grid would wobble in the reported third decimal.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise ConfigurationError("geometric mean of empty input")
    if np.any(values <= 0):
        raise ConfigurationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))
