"""A plain MLP classifier with hand-written backpropagation.

The behavioural proxy for every student/teacher model.  Supports optional
MX precision injection on weights and activations during the forward pass
(see :mod:`repro.learn.quantized`), mirroring how the DaCapo hardware
executes inference at MX6 and training at MX9.

Weight quantization is cached: between parameter updates the weights are
immutable, so the per-layer ``effective_quantize`` result is computed once
and reused across every forward pass (inference phases re-quantize nothing).
The cache is invalidated whenever :meth:`train_step` or :meth:`restore`
mutates the parameters; callers that assign ``weights``/``biases`` directly
must call :meth:`invalidate_quantization_cache` themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.batching import current_lane
from repro.errors import ConfigurationError
from repro.learn.ops import (
    add_dispatch,
    cross_entropy_grad,
    cross_entropy_loss,
    he_init,
    relu,
    relu_grad,
)
from repro.learn.quantized import effective_quantize
from repro.mx import MXFormat
from repro.numeric import active_policy

__all__ = ["BatchedMLPBank", "MLPClassifier"]


@dataclass
class MLPClassifier:
    """Fully connected ReLU classifier.

    Attributes:
        weights: Per-layer weight matrices.
        biases: Per-layer bias vectors.
    """

    weights: list[np.ndarray]
    biases: list[np.ndarray]
    #: Per-(layer, format, sensitivity) quantized weights, valid until the
    #: next parameter mutation.
    _wq_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Mutation counter: bumped on every cache invalidation so a
    #: :class:`BatchedMLPBank` can key its stacked-weight cache on the
    #: member versions instead of re-stacking every round.
    _version: int = field(default=0, repr=False, compare=False)

    @classmethod
    def create(
        cls,
        input_dim: int,
        hidden_sizes: tuple[int, ...],
        num_classes: int,
        rng: np.random.Generator,
    ) -> "MLPClassifier":
        """He-initialized network ``input -> hidden... -> classes``.

        Parameters are allocated in the active
        :class:`~repro.numeric.NumericPolicy` dtype; the He draws consume
        the same float64 random stream under every policy and are cast
        once, so float32 initial weights are exactly the rounded float64
        ones.
        """
        if input_dim < 1 or num_classes < 2:
            raise ConfigurationError("invalid MLP dimensions")
        dtype = active_policy().dtype
        dims = (input_dim, *hidden_sizes, num_classes)
        weights = [
            he_init(dims[i], dims[i + 1], rng, dtype=dtype)
            for i in range(len(dims) - 1)
        ]
        biases = [
            np.zeros(dims[i + 1], dtype=dtype) for i in range(len(dims) - 1)
        ]
        return cls(weights=weights, biases=biases)

    @property
    def dtype(self) -> np.dtype:
        """The dtype parameters and activations are carried in.

        Fixed at construction from the then-active numeric policy; inputs
        are cast to it on entry, so a model keeps computing at its own
        precision even if the ambient policy later changes.
        """
        return self.weights[0].dtype

    @property
    def num_classes(self) -> int:
        """Output width."""
        return self.weights[-1].shape[1]

    @property
    def num_layers(self) -> int:
        """Number of weight layers."""
        return len(self.weights)

    def invalidate_quantization_cache(self) -> None:
        """Drop cached quantized weights (call after mutating parameters)."""
        self._wq_cache.clear()
        self._version += 1

    def _quantized_weight(
        self, layer: int, fmt: MXFormat | None, sensitivity: float
    ) -> np.ndarray:
        """The layer's weights under MX precision, cached until mutation."""
        if fmt is None:
            return self.weights[layer]
        key = (layer, fmt, sensitivity)
        w_q = self._wq_cache.get(key)
        if w_q is None:
            add_dispatch()
            w_q = effective_quantize(
                self.weights[layer], fmt, sensitivity, axis=0
            )
            self._wq_cache[key] = w_q
        return w_q

    def forward(
        self,
        x: np.ndarray,
        fmt: MXFormat | None = None,
        sensitivity: float = 1.0,
    ) -> np.ndarray:
        """Logits for a batch, optionally under MX precision.

        Quantization (when ``fmt`` is given) is applied to the weights and
        to every layer's input activations, which is where the hardware
        applies it.

        Under the batched executor a lane is installed on this thread and
        the call is routed through the lockstep conductor instead; the
        result is bit-identical (the conductor either stacks it with the
        other lanes' identically-shaped calls or falls back to this exact
        serial body).
        """
        lane = current_lane()
        if lane is not None:
            return lane.forward(self, x, fmt, sensitivity)
        h = np.asarray(x, dtype=self.dtype)
        if h.ndim != 2:
            raise ConfigurationError("forward expects a 2-D batch")
        for i, b in enumerate(self.biases):
            if fmt is not None:
                add_dispatch()
            h_q = effective_quantize(h, fmt, sensitivity)
            w_q = self._quantized_weight(i, fmt, sensitivity)
            add_dispatch()
            h = h_q @ w_q + b
            if i < self.num_layers - 1:
                h = relu(h)
        return h

    def predict(
        self,
        x: np.ndarray,
        fmt: MXFormat | None = None,
        sensitivity: float = 1.0,
    ) -> np.ndarray:
        """Argmax class predictions."""
        return np.argmax(self.forward(x, fmt, sensitivity), axis=-1)

    def accuracy(
        self,
        x: np.ndarray,
        y: np.ndarray,
        fmt: MXFormat | None = None,
        sensitivity: float = 1.0,
    ) -> float:
        """Fraction of correct predictions (empty batches score 0)."""
        if len(x) == 0:
            return 0.0
        return float(np.mean(self.predict(x, fmt, sensitivity) == y))

    def train_step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        lr: float,
        fmt: MXFormat | None = None,
        sensitivity: float = 1.0,
    ) -> float:
        """One SGD step on a batch; returns the pre-step loss.

        Training under MX runs the forward pass at the training precision;
        gradients are computed against the quantized forward (straight-
        through on the quantization error).
        """
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        x = np.asarray(x, dtype=self.dtype)
        y = np.asarray(y)
        if len(x) == 0:
            raise ConfigurationError("cannot train on an empty batch")

        # Forward, caching pre-activations and inputs per layer.
        inputs: list[np.ndarray] = []
        pre_acts: list[np.ndarray] = []
        h = x
        for i, b in enumerate(self.biases):
            if fmt is not None:
                add_dispatch()
            h_q = effective_quantize(h, fmt, sensitivity)
            w_q = self._quantized_weight(i, fmt, sensitivity)
            inputs.append(h_q)
            add_dispatch()
            z = h_q @ w_q + b
            pre_acts.append(z)
            h = relu(z) if i < self.num_layers - 1 else z

        loss = cross_entropy_loss(h, y)

        # Backward.
        grad = cross_entropy_grad(h, y)
        for i in reversed(range(self.num_layers)):
            if i < self.num_layers - 1:
                add_dispatch()
                grad = grad * relu_grad(pre_acts[i])
            add_dispatch(5)
            grad_w = inputs[i].T @ grad
            grad_b = grad.sum(axis=0)
            grad = grad @ self.weights[i].T
            self.weights[i] = self.weights[i] - lr * grad_w
            self.biases[i] = self.biases[i] - lr * grad_b
        self.invalidate_quantization_cache()
        return loss

    def snapshot(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Deep copy of the parameters."""
        return (
            [w.copy() for w in self.weights],
            [b.copy() for b in self.biases],
        )

    def restore(
        self, state: tuple[list[np.ndarray], list[np.ndarray]]
    ) -> None:
        """Restore parameters from a :meth:`snapshot`."""
        weights, biases = state
        if len(weights) != self.num_layers or len(biases) != self.num_layers:
            raise ConfigurationError("snapshot does not match architecture")
        self.weights = [w.copy() for w in weights]
        self.biases = [b.copy() for b in biases]
        self.invalidate_quantization_cache()

    def clone(self) -> "MLPClassifier":
        """Independent copy of this model."""
        weights, biases = self.snapshot()
        return MLPClassifier(weights=weights, biases=biases)

    def astype(self, dtype: np.dtype) -> "MLPClassifier":
        """A copy carrying its parameters in ``dtype``.

        How pretrained float64 weights get deployed under the float32
        policy: one rounding at the precision boundary, exactly like
        quantizing a cloud-trained model for the edge.
        """
        return MLPClassifier(
            weights=[w.astype(dtype) for w in self.weights],
            biases=[b.astype(dtype) for b in self.biases],
        )


class BatchedMLPBank:
    """K same-geometry classifiers advanced one stacked numpy call at a time.

    The bank stacks its members' per-layer parameters into ``(K, in, out)``
    / ``(K, out)`` arrays and runs one ``np.matmul`` per layer for all K
    members.  Slice ``k`` of every result is bitwise what member ``k``'s
    own :meth:`MLPClassifier.forward` would produce: equal-shape stacked
    matmul, broadcast bias add, relu, and the MX fake-quantize kernel are
    all verified per-slice identical to their serial spellings (the
    quantize kernel reduces along the trailing axis only, so one stacked
    call quantizes every member exactly as K serial calls would).

    Weight stacks are cached per (fmt, sensitivity) and keyed on the
    members' mutation counters, so inference phases between retrains
    re-stack nothing.  The stacked slices are the members' *own* cached
    ``_quantized_weight`` arrays, which is what makes per-slice identity
    trivial rather than merely verified.

    Only einsum-style batched matmul and broadcasting are used -- the
    array-API-clean substrate the ROADMAP names for a GPU backend.
    """

    def __init__(self, models: "list[MLPClassifier]") -> None:
        if not models:
            raise ConfigurationError("a bank needs at least one model")
        shapes = [tuple(w.shape for w in m.weights) for m in models]
        if any(s != shapes[0] for s in shapes[1:]):
            raise ConfigurationError("bank members must share geometry")
        dtypes = {m.dtype for m in models}
        if len(dtypes) != 1:
            raise ConfigurationError("bank members must share a dtype")
        self.models = list(models)
        #: (fmt, sensitivity) -> (member versions, weight stacks, bias stacks)
        self._stack_cache: dict = {}

    @property
    def dtype(self) -> np.dtype:
        return self.models[0].dtype

    @property
    def num_layers(self) -> int:
        return self.models[0].num_layers

    def _stacked_params(self, fmt: MXFormat | None, sensitivity: float):
        versions = tuple(m._version for m in self.models)
        key = (fmt, sensitivity)
        entry = self._stack_cache.get(key)
        if entry is not None and entry[0] == versions:
            return entry[1], entry[2]
        weights = [
            np.stack(
                [m._quantized_weight(i, fmt, sensitivity) for m in self.models]
            )
            for i in range(self.num_layers)
        ]
        biases = [
            np.stack([m.biases[i] for m in self.models])
            for i in range(self.num_layers)
        ]
        self._stack_cache[key] = (versions, weights, biases)
        return weights, biases

    def forward(
        self,
        xs: np.ndarray,
        fmt: MXFormat | None = None,
        sensitivity: float = 1.0,
    ) -> np.ndarray:
        """Stacked logits ``(K, n, C)`` for a stacked batch ``(K, n, in)``."""
        h = np.asarray(xs, dtype=self.dtype)
        if h.ndim != 3 or h.shape[0] != len(self.models):
            raise ConfigurationError("bank forward expects a (K, n, in) batch")
        weights, biases = self._stacked_params(fmt, sensitivity)
        for i in range(self.num_layers):
            if fmt is not None:
                add_dispatch()
            h_q = effective_quantize(h, fmt, sensitivity)
            add_dispatch()
            h = np.matmul(h_q, weights[i]) + biases[i][:, None, :]
            if i < self.num_layers - 1:
                h = relu(h)
        return h

    def predict(
        self,
        xs: np.ndarray,
        fmt: MXFormat | None = None,
        sensitivity: float = 1.0,
    ) -> np.ndarray:
        """Stacked argmax predictions ``(K, n)``."""
        return np.argmax(self.forward(xs, fmt, sensitivity), axis=-1)
