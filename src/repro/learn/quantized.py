"""MX precision-effect injection for the proxy models.

Real hardware quantizes weights and activations into MX blocks; the proxy
models reproduce that by adding the *measured* MX quantization error of each
tensor, scaled by the model's precision sensitivity:

``x_eff = x + sensitivity * (mx_quantize(x) - x)``

With sensitivity 1.0 this is exactly fake quantization; larger values model
architectures whose accuracy degrades faster than the raw numeric error
(the paper observes this for ViTs, section VII-B).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mx import MXFormat, quantize
from repro.numeric import ensure_float

__all__ = ["effective_quantize"]


def effective_quantize(
    x: np.ndarray,
    fmt: MXFormat | None,
    sensitivity: float = 1.0,
    axis: int = -1,
) -> np.ndarray:
    """Apply sensitivity-scaled MX quantization error to ``x``.

    Dtype-polymorphic: a float32 tensor is quantized entirely at single
    precision (the MX kernel preserves the operand dtype), a float64 one
    exactly as before -- no silent upcasts on this, the hottest path of an
    end-to-end run.

    Args:
        x: Tensor to quantize.
        fmt: MX format; ``None`` returns ``x`` unchanged (FP32 execution).
        sensitivity: Error multiplier (1.0 = exact fake quantization).
        axis: Blocking axis.
    """
    if fmt is None:
        return ensure_float(x)
    if sensitivity < 0:
        raise ConfigurationError("sensitivity must be non-negative")
    x = ensure_float(x)
    # Computed as x + sensitivity * (quantize(x) - x), accumulated in place
    # on the freshly allocated quantized array (this is the hottest function
    # in an end-to-end run; every temporary counts).
    error = quantize(x, fmt, axis=axis)
    error -= x
    error *= sensitivity
    error += x
    return error
