"""Elementary neural-network operations with explicit gradients.

Everything the MLP proxies need, implemented directly in numpy so the
training loop is self-contained (no autograd framework available or
required).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "he_init",
    "relu",
    "relu_grad",
    "softmax",
    "cross_entropy_loss",
    "cross_entropy_grad",
]


def he_init(
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """He-normal weight initialization for ReLU networks.

    The draw always consumes the float64 random stream (so the drawn
    values -- before rounding -- are identical under every numeric policy)
    and is then cast to ``dtype`` when one is given.
    """
    if fan_in < 1 or fan_out < 1:
        raise ConfigurationError("fan_in and fan_out must be >= 1")
    scale = np.sqrt(2.0 / fan_in)
    weights = rng.normal(scale=scale, size=(fan_in, fan_out))
    if dtype is not None:
        weights = weights.astype(dtype, copy=False)
    return weights


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at the pre-activation ``x``."""
    return (x > 0.0).astype(x.dtype)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer ``labels`` under ``logits``.

    The softmax/log run in the logits' dtype; the final mean accumulates
    in float64 under every policy (a float32 sum over thousands of batch
    losses would drift past test tolerances).  The 1e-12 clip floor is
    exactly representable in float32, so it is policy-invariant.
    """
    if len(logits) != len(labels):
        raise ConfigurationError("logits and labels must align")
    if len(labels) == 0:
        raise ConfigurationError("cannot compute loss of an empty batch")
    probs = softmax(logits)
    picked = probs[np.arange(len(labels)), labels]
    return float(
        -np.mean(np.log(np.clip(picked, 1e-12, None)), dtype=np.float64)
    )


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of the mean cross-entropy w.r.t. the logits."""
    if len(logits) != len(labels):
        raise ConfigurationError("logits and labels must align")
    if len(labels) == 0:
        raise ConfigurationError("cannot compute gradient of an empty batch")
    grad = softmax(logits)
    grad[np.arange(len(labels)), labels] -= 1.0
    return grad / len(labels)
