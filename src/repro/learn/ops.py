"""Elementary neural-network operations with explicit gradients.

Everything the MLP proxies need, implemented directly in numpy so the
training loop is self-contained (no autograd framework available or
required).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "add_dispatch",
    "batched_cross_entropy_grad",
    "batched_cross_entropy_loss",
    "cross_entropy_grad",
    "cross_entropy_loss",
    "dispatch_count",
    "he_init",
    "relu",
    "relu_grad",
    "reset_dispatch",
    "softmax",
]

# -- dispatch accounting ---------------------------------------------------
#
# One count per numpy-kernel invocation at a model-compute site.  The point
# of the batched executor is K cells per dispatch instead of one, so the
# counter is the direct measurement of that claim (bench_batched asserts
# the serial/batched ratio).  Not locked: batched rounds execute one at a
# time under the conductor lock, and the serial path is single-threaded.

_dispatch_calls = 0


def add_dispatch(n: int = 1) -> None:
    """Record ``n`` numpy-kernel dispatches on a model-compute hot path."""
    global _dispatch_calls
    _dispatch_calls += n


def dispatch_count() -> int:
    """Dispatches recorded since the last :func:`reset_dispatch`."""
    return _dispatch_calls


def reset_dispatch() -> None:
    """Zero the dispatch counter (benchmarks call this between legs)."""
    global _dispatch_calls
    _dispatch_calls = 0


def he_init(
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """He-normal weight initialization for ReLU networks.

    The draw always consumes the float64 random stream (so the drawn
    values -- before rounding -- are identical under every numeric policy)
    and is then cast to ``dtype`` when one is given.
    """
    if fan_in < 1 or fan_out < 1:
        raise ConfigurationError("fan_in and fan_out must be >= 1")
    scale = np.sqrt(2.0 / fan_in)
    weights = rng.normal(scale=scale, size=(fan_in, fan_out))
    if dtype is not None:
        weights = weights.astype(dtype, copy=False)
    return weights


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    add_dispatch()
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at the pre-activation ``x``."""
    add_dispatch()
    return (x > 0.0).astype(x.dtype)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized (any leading shape)."""
    add_dispatch()
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer ``labels`` under ``logits``.

    The softmax/log run in the logits' dtype; the final mean accumulates
    in float64 under every policy (a float32 sum over thousands of batch
    losses would drift past test tolerances).  The 1e-12 clip floor is
    exactly representable in float32, so it is policy-invariant.
    """
    if len(logits) != len(labels):
        raise ConfigurationError("logits and labels must align")
    if len(labels) == 0:
        raise ConfigurationError("cannot compute loss of an empty batch")
    probs = softmax(logits)
    picked = probs[np.arange(len(labels)), labels]
    add_dispatch()
    return float(
        -np.mean(np.log(np.clip(picked, 1e-12, None)), dtype=np.float64)
    )


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of the mean cross-entropy w.r.t. the logits."""
    if len(logits) != len(labels):
        raise ConfigurationError("logits and labels must align")
    if len(labels) == 0:
        raise ConfigurationError("cannot compute gradient of an empty batch")
    grad = softmax(logits)
    grad[np.arange(len(labels)), labels] -= 1.0
    add_dispatch()
    return grad / len(labels)


def batched_cross_entropy_loss(
    logits: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Per-slice mean cross-entropy of ``(K, n)`` labels under ``(K, n, C)``.

    Slice ``k`` of the result is bitwise :func:`cross_entropy_loss` of
    ``(logits[k], labels[k])``: the softmax, clip, log, and float64 mean
    all reduce along the trailing axes only, so stacking K cells changes
    nothing but the number of kernel dispatches.  ``take_along_axis``
    keeps the gather array-API-clean for a later GPU backend.
    """
    if logits.shape[:-1] != labels.shape:
        raise ConfigurationError("logits and labels must align")
    if labels.shape[-1] == 0:
        raise ConfigurationError("cannot compute loss of an empty batch")
    probs = softmax(logits)
    picked = np.take_along_axis(probs, labels[..., None], axis=-1)[..., 0]
    add_dispatch()
    return -np.mean(
        np.log(np.clip(picked, 1e-12, None)), axis=-1, dtype=np.float64
    )


def batched_cross_entropy_grad(
    logits: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Per-slice gradient of the mean cross-entropy w.r.t. the logits.

    Slice ``k`` is bitwise :func:`cross_entropy_grad` of
    ``(logits[k], labels[k])``; ``put_along_axis`` is the stacked
    spelling of the serial fancy-index subtraction.
    """
    if logits.shape[:-1] != labels.shape:
        raise ConfigurationError("logits and labels must align")
    if labels.shape[-1] == 0:
        raise ConfigurationError("cannot compute gradient of an empty batch")
    grad = softmax(logits)
    picked = np.take_along_axis(grad, labels[..., None], axis=-1)
    np.put_along_axis(grad, labels[..., None], picked - 1.0, axis=-1)
    add_dispatch()
    return grad / labels.shape[-1]
