"""SGD training loop with the paper's retraining hyperparameters.

Section VII-A: learning rate 1e-3, SGD, batch size 16.  The loop shuffles
each epoch and reports per-epoch mean loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batching import current_lane
from repro.errors import ConfigurationError
from repro.learn.mlp import MLPClassifier
from repro.learn.ops import (
    add_dispatch,
    batched_cross_entropy_grad,
    batched_cross_entropy_loss,
    relu,
    relu_grad,
)
from repro.learn.quantized import effective_quantize
from repro.mx import MXFormat

__all__ = [
    "TRAINER_VERSION",
    "TrainConfig",
    "train_sgd",
    "train_sgd_batched",
]

#: Version of the training-loop numerics.  Bump whenever a change to this
#: module (or anything it calls) can alter trained weights at a fixed seed;
#: the on-disk pretrained-model cache keys on it (:mod:`repro.learn.cache`).
TRAINER_VERSION = 1


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters (paper defaults).

    Attributes:
        learning_rate: SGD step size (paper: 1e-3).
        batch_size: Mini-batch size (paper: 16).
        epochs: Passes over the retraining set.
        fmt: MX precision of training compute (None = FP32).
        sensitivity: Model precision-sensitivity multiplier.
    """

    learning_rate: float = 1e-3
    batch_size: int = 16
    epochs: int = 1
    fmt: MXFormat | None = None
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")


def train_sgd(
    model: MLPClassifier,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    rng: np.random.Generator,
) -> list[float]:
    """Train ``model`` in place; returns per-epoch mean losses.

    The batch is cast once to the model's own dtype (set by the numeric
    policy at model construction); per-epoch loss means accumulate in
    float64 regardless of policy (they are Python floats from
    :func:`~repro.learn.ops.cross_entropy_loss`).

    Under the batched executor a lane is installed on this thread and the
    call routes through the lockstep conductor, which either runs it as
    one slice of :func:`train_sgd_batched` (bit-identical) or falls back
    to this exact serial body.
    """
    lane = current_lane()
    if lane is not None:
        return lane.train(model, x, y, config, rng)
    x = np.asarray(x, dtype=model.dtype)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ConfigurationError("features and labels must align")
    if len(x) == 0:
        raise ConfigurationError("cannot train on an empty dataset")

    losses: list[float] = []
    for _ in range(config.epochs):
        order = rng.permutation(len(x))
        # One gather per epoch; batches below are contiguous views into the
        # shuffled copies instead of per-batch fancy-index copies.
        x_epoch = x[order]
        y_epoch = y[order]
        epoch_losses: list[float] = []
        for start in range(0, len(x), config.batch_size):
            stop = start + config.batch_size
            loss = model.train_step(
                x_epoch[start:stop],
                y_epoch[start:stop],
                lr=config.learning_rate,
                fmt=config.fmt,
                sensitivity=config.sensitivity,
            )
            epoch_losses.append(loss)
        losses.append(float(np.mean(epoch_losses)))
    return losses


def _train_step_batched(
    weights: list[np.ndarray],
    biases: list[np.ndarray],
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
) -> np.ndarray:
    """One stacked SGD step; returns per-model pre-step losses ``(K,)``.

    ``weights``/``biases`` are per-layer ``(K, in, out)`` / ``(K, out)``
    stacks, updated in place (the list slots are rebound to the stepped
    arrays).  Every line is the stacked spelling of the corresponding
    :meth:`MLPClassifier.train_step` line, in the same order, so slice
    ``k`` evolves bitwise as model ``k`` would:

    - the MX fake-quantize kernel reduces along the trailing axis for
      activations and along the contraction axis (``axis=1`` of the
      stack, ``axis=0`` of each slice) for weights, so one stacked call
      equals K serial calls;
    - equal-shape batched matmul, broadcast bias add, relu, and the
      take/put-along-axis cross-entropy are all per-slice identical;
    - the backward pass differentiates through the *unquantized*
      pre-update weights, exactly as the serial step does.
    """
    fmt, sensitivity = config.fmt, config.sensitivity
    lr = config.learning_rate
    num_layers = len(weights)

    inputs: list[np.ndarray] = []
    pre_acts: list[np.ndarray] = []
    h = x
    for i in range(num_layers):
        if fmt is not None:
            add_dispatch(2)
        h_q = effective_quantize(h, fmt, sensitivity)
        if fmt is not None:
            w_q = effective_quantize(weights[i], fmt, sensitivity, axis=1)
        else:
            w_q = weights[i]
        inputs.append(h_q)
        add_dispatch()
        z = np.matmul(h_q, w_q) + biases[i][:, None, :]
        pre_acts.append(z)
        h = relu(z) if i < num_layers - 1 else z

    loss = batched_cross_entropy_loss(h, y)

    grad = batched_cross_entropy_grad(h, y)
    for i in reversed(range(num_layers)):
        if i < num_layers - 1:
            add_dispatch()
            grad = grad * relu_grad(pre_acts[i])
        add_dispatch(5)
        grad_w = np.matmul(inputs[i].transpose(0, 2, 1), grad)
        grad_b = grad.sum(axis=1)
        grad = np.matmul(grad, weights[i].transpose(0, 2, 1))
        weights[i] = weights[i] - lr * grad_w
        biases[i] = biases[i] - lr * grad_b
    return loss


def train_sgd_batched(
    models: list[MLPClassifier],
    xs: list[np.ndarray],
    ys: list[np.ndarray],
    config: TrainConfig,
    rngs: list[np.random.Generator],
) -> list[list[float]]:
    """Train K same-geometry models in lockstep; one numpy call per site.

    Member ``k`` trains on ``(xs[k], ys[k])`` with its own ``rngs[k]``
    driving the epoch shuffles, and ends bitwise identical to what
    ``train_sgd(models[k], xs[k], ys[k], config, rngs[k])`` would have
    produced -- the grouping precondition (identical feature/label shapes
    across members, shared geometry and dtype) is what makes the stacked
    kernels slice-exact, and the conductor only builds groups that satisfy
    it.  Returns per-model per-epoch mean losses.
    """
    if not (len(models) == len(xs) == len(ys) == len(rngs)):
        raise ConfigurationError("models, data, and rngs must align")
    if not models:
        raise ConfigurationError("cannot train an empty model group")
    dtype = models[0].dtype
    cast = [np.asarray(x, dtype=dtype) for x in xs]
    labels = [np.asarray(y) for y in ys]
    for x, y in zip(cast, labels):
        if len(x) != len(y):
            raise ConfigurationError("features and labels must align")
        if len(x) == 0:
            raise ConfigurationError("cannot train on an empty dataset")
        if x.shape != cast[0].shape or y.shape != labels[0].shape:
            raise ConfigurationError("batched members must share data shapes")

    num_layers = models[0].num_layers
    num = len(cast[0])
    count = len(models)
    x_all = np.stack(cast)
    y_all = np.stack(labels)
    weights = [
        np.stack([m.weights[i] for m in models]) for i in range(num_layers)
    ]
    biases = [
        np.stack([m.biases[i] for m in models]) for i in range(num_layers)
    ]

    losses: list[list[float]] = [[] for _ in range(count)]
    rows = np.arange(count)[:, None]
    for _ in range(config.epochs):
        # Each member's shuffle comes from its own generator, consuming
        # exactly the draws its serial loop would.
        orders = np.stack([rng.permutation(num) for rng in rngs])
        add_dispatch()
        x_epoch = x_all[rows, orders]
        y_epoch = y_all[rows, orders]
        epoch_losses: list[list[float]] = [[] for _ in range(count)]
        for start in range(0, num, config.batch_size):
            stop = start + config.batch_size
            # The serial loop hands train_step a contiguous view of the
            # shuffled copy; a mid-axis slice of the stack is strided, so
            # copy to match the serial operands' layout exactly.
            x_batch = np.ascontiguousarray(x_epoch[:, start:stop])
            y_batch = np.ascontiguousarray(y_epoch[:, start:stop])
            step_losses = _train_step_batched(
                weights, biases, x_batch, y_batch, config
            )
            for k in range(count):
                epoch_losses[k].append(float(step_losses[k]))
        for k in range(count):
            losses[k].append(float(np.mean(epoch_losses[k])))

    for k, model in enumerate(models):
        model.weights = [weights[i][k].copy() for i in range(num_layers)]
        model.biases = [biases[i][k].copy() for i in range(num_layers)]
        model.invalidate_quantization_cache()
    return losses
