"""SGD training loop with the paper's retraining hyperparameters.

Section VII-A: learning rate 1e-3, SGD, batch size 16.  The loop shuffles
each epoch and reports per-epoch mean loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.learn.mlp import MLPClassifier
from repro.mx import MXFormat

__all__ = ["TRAINER_VERSION", "TrainConfig", "train_sgd"]

#: Version of the training-loop numerics.  Bump whenever a change to this
#: module (or anything it calls) can alter trained weights at a fixed seed;
#: the on-disk pretrained-model cache keys on it (:mod:`repro.learn.cache`).
TRAINER_VERSION = 1


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters (paper defaults).

    Attributes:
        learning_rate: SGD step size (paper: 1e-3).
        batch_size: Mini-batch size (paper: 16).
        epochs: Passes over the retraining set.
        fmt: MX precision of training compute (None = FP32).
        sensitivity: Model precision-sensitivity multiplier.
    """

    learning_rate: float = 1e-3
    batch_size: int = 16
    epochs: int = 1
    fmt: MXFormat | None = None
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")


def train_sgd(
    model: MLPClassifier,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
    rng: np.random.Generator,
) -> list[float]:
    """Train ``model`` in place; returns per-epoch mean losses.

    The batch is cast once to the model's own dtype (set by the numeric
    policy at model construction); per-epoch loss means accumulate in
    float64 regardless of policy (they are Python floats from
    :func:`~repro.learn.ops.cross_entropy_loss`).
    """
    x = np.asarray(x, dtype=model.dtype)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ConfigurationError("features and labels must align")
    if len(x) == 0:
        raise ConfigurationError("cannot train on an empty dataset")

    losses: list[float] = []
    for _ in range(config.epochs):
        order = rng.permutation(len(x))
        # One gather per epoch; batches below are contiguous views into the
        # shuffled copies instead of per-batch fancy-index copies.
        x_epoch = x[order]
        y_epoch = y[order]
        epoch_losses: list[float] = []
        for start in range(0, len(x), config.batch_size):
            stop = start + config.batch_size
            loss = model.train_step(
                x_epoch[start:stop],
                y_epoch[start:stop],
                lr=config.learning_rate,
                fmt=config.fmt,
                sensitivity=config.sensitivity,
            )
            epoch_losses.append(loss)
        losses.append(float(np.mean(epoch_losses)))
    return losses
