"""Student models: small trainable proxies specialized at runtime.

The student runs inference on every frame (paper Figure 1, kernel 1) and is
continuously retrained on teacher-labeled samples (kernel 2).  It starts
from generic pretrained weights (workflow step 1) and adapts to whatever
domain the stream currently shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import zlib

import numpy as np

from repro import profiling
from repro.data.attributes import Domain, LabelDistribution
from repro.data.distributions import DomainModel
from repro.learn.cache import (
    load_pretrained,
    pretrain_cache_key,
    store_pretrained,
)
from repro.learn.mlp import MLPClassifier
from repro.learn.train import TrainConfig, train_sgd
from repro.models.zoo import get_proxy_config
from repro.mx import MXFormat
from repro.numeric import FLOAT64, active_policy, resolve_policy, use_policy

__all__ = ["StudentModel", "make_student"]

#: Generic pretraining: the student is pretrained "over the general dataset
#: without having any specific context that the system is actually used
#: for" (workflow step 1) -- here, the base (day/city/clear) domain with all
#: ten classes.  Deployment domains are rotated away from it, so the
#: student *needs* continuous learning to perform, exactly as in the paper.
_PRETRAIN_SAMPLES = 800
_PRETRAIN_EPOCHS = 8
_PRETRAIN_LR = 5e-2
_PRETRAIN_BATCH = 32


def _pretrain_cache_key(model_name: str) -> str:
    """Disk-cache key component for everything else the weights depend on."""
    return pretrain_cache_key(
        _PRETRAIN_SAMPLES,
        _PRETRAIN_EPOCHS,
        _PRETRAIN_LR,
        _PRETRAIN_BATCH,
        get_proxy_config(model_name).hidden_sizes,
    )


@dataclass
class StudentModel:
    """The continuously retrained inference model.

    Attributes:
        name: The paper model this proxy stands in for.
        mlp: The live classifier (mutated by retraining).
        inference_fmt: Precision of inference execution.
        training_fmt: Precision of retraining compute.
        sensitivity: Precision-sensitivity multiplier from the zoo.
    """

    name: str
    mlp: MLPClassifier
    inference_fmt: MXFormat | None = None
    training_fmt: MXFormat | None = None
    sensitivity: float = 1.0

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference at the deployment precision."""
        return self.mlp.predict(x, self.inference_fmt, self.sensitivity)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy at the deployment precision (0 on empty input)."""
        return self.mlp.accuracy(x, y, self.inference_fmt, self.sensitivity)

    def retrain(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        rng: np.random.Generator,
        learning_rate: float = 1e-3,
        batch_size: int = 16,
    ) -> list[float]:
        """Retraining at the training precision; returns per-epoch losses."""
        config = TrainConfig(
            learning_rate=learning_rate,
            batch_size=batch_size,
            epochs=epochs,
            fmt=self.training_fmt,
            sensitivity=self.sensitivity,
        )
        return train_sgd(self.mlp, x, y, config, rng)

    def snapshot(self):
        """Capture current weights (for candidate-model evaluation)."""
        return self.mlp.snapshot()

    def restore(self, state) -> None:
        """Roll back to a snapshot."""
        self.mlp.restore(state)

    def clone(self) -> "StudentModel":
        """Independent copy (baselines fork the same initial student)."""
        return StudentModel(
            name=self.name,
            mlp=self.mlp.clone(),
            inference_fmt=self.inference_fmt,
            training_fmt=self.training_fmt,
            sensitivity=self.sensitivity,
        )


@lru_cache(maxsize=None)
def _pretrained_mlp(
    model_name: str, geometry_seed: int, seed: int, policy_name: str
) -> MLPClassifier:
    """The shared pretrained student per (model, geometry, seed, policy).

    Pretraining is the *offline* step of the paper's workflow, so it always
    runs at float64 regardless of the active policy -- the float32 student
    is the float64-pretrained one cast once at deployment, exactly as a
    cloud-trained model is quantized for the edge.  (It also keeps the two
    policies' deployed weights within one rounding of each other, so their
    runs are directly comparable instead of starting from independently
    diverged pretrainings.)  ``policy_name`` keys the memo and the disk
    entry; the disk tier stores the already-cast weights.
    """
    # The argument, not the ambient context, is the policy of record --
    # re-install it so the disk-cache key and the returned dtype always
    # agree with the memo key, whatever the caller's environment says.
    with profiling.scope(profiling.PRETRAIN), use_policy(policy_name):
        policy = resolve_policy(policy_name)
        cache_key = _pretrain_cache_key(model_name)
        cached = load_pretrained(
            "student", model_name, geometry_seed, seed, cache_key
        )
        if cached is not None:
            return cached
        domain_model = DomainModel(geometry_seed=geometry_seed)
        config = get_proxy_config(model_name)
        rng = np.random.default_rng(
            (seed, zlib.crc32(model_name.encode()) & 0xFFFF, 1)
        )
        with use_policy(FLOAT64):
            base_domain = Domain(labels=LabelDistribution.ALL)
            x, y = domain_model.sample(base_domain, _PRETRAIN_SAMPLES, rng)
            mlp = MLPClassifier.create(
                domain_model.feature_dim,
                config.hidden_sizes,
                domain_model.num_classes,
                rng,
            )
            train_sgd(
                mlp, x, y,
                TrainConfig(
                    learning_rate=_PRETRAIN_LR,
                    batch_size=_PRETRAIN_BATCH,
                    epochs=_PRETRAIN_EPOCHS,
                ),
                rng,
            )
        if policy.dtype != mlp.dtype:
            mlp = mlp.astype(policy.dtype)
        store_pretrained(
            "student", model_name, geometry_seed, seed, mlp, cache_key
        )
        return mlp


def make_student(
    model_name: str,
    domain_model: DomainModel | None = None,
    inference_fmt: MXFormat | None = None,
    training_fmt: MXFormat | None = None,
    seed: int = 0,
) -> StudentModel:
    """Build a freshly pretrained student proxy for a paper model.

    Each call returns an independent copy of the cached pretrained weights,
    so concurrent systems can retrain their own students.
    """
    domain_model = domain_model or DomainModel()
    config = get_proxy_config(model_name)
    mlp = _pretrained_mlp(
        model_name, domain_model.geometry_seed, seed, active_policy().name
    )
    cloned = mlp.clone()
    # Cross-camera sharing (opt-in): within a cluster, the first member's
    # pretrain becomes the cluster base and later members warm-start from
    # the cluster's freshest weights.  No active runtime -> untouched.
    # (Imported here, not at module top: repro.share reaches this module
    # through the scenario/learn import chain, and a module-level import
    # back into repro.share.runtime would complete that cycle.)
    from repro.share.runtime import active_cluster_runtime

    runtime = active_cluster_runtime()
    if runtime is not None:
        runtime.adopt_student(model_name, cloned)
    return StudentModel(
        name=model_name,
        mlp=cloned,
        inference_fmt=inference_fmt,
        training_fmt=training_fmt,
        sensitivity=config.precision_sensitivity,
    )
