"""On-disk cache for pretrained proxy MLPs.

Pretraining a student or teacher proxy is deterministic in (model name,
data-geometry seed, pretraining seed) but costs seconds of SGD -- which
every worker process of the parallel experiment runner would otherwise pay
again.  This module persists the trained parameters as ``.npz`` files so a
pretraining is computed once per machine instead of once per process.

Cache keys include :data:`repro.learn.train.TRAINER_VERSION`, this
module's :data:`CACHE_VERSION`, and the active numeric policy's digest
namespace (float32 and float64 pretrained weights are distinct entries),
so stale entries are ignored (never migrated) whenever the pretraining
numerics change.  Writes are atomic
(temp file + rename), making concurrent writers race-safe: every writer
produces byte-identical content, and readers only ever see complete files.

The cache location comes from :func:`repro.cache.cache_dir`
(``$REPRO_CACHE_DIR`` when set, an empty value disabling caching entirely,
else ``~/.cache/repro-dacapo``).  All failures are soft: a missing,
corrupt, or unwritable cache silently falls back to recomputation, which
yields the exact same weights.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.cache import CACHE_ENV, cache_dir, write_atomic
from repro.learn.mlp import MLPClassifier
from repro.learn.train import TRAINER_VERSION
from repro.numeric import active_policy

__all__ = [
    "CACHE_ENV",
    "CACHE_VERSION",
    "cache_dir",
    "load_pretrained",
    "pretrain_cache_key",
    "store_pretrained",
]

#: Layout/key version of the cache files themselves.  v2: the numeric
#: policy's digest namespace entered the entry name, so float32 and
#: float64 pretrained weights are distinct entries that can never collide.
CACHE_VERSION = 2


def pretrain_cache_key(
    samples: int,
    epochs: int,
    lr: float,
    batch_size: int,
    hidden_sizes: tuple[int, ...],
) -> str:
    """Key component covering the pretraining recipe and proxy architecture.

    Both roles build their key through this one helper so the scheme cannot
    drift between student and teacher: every remaining input the trained
    weights depend on must be encoded here (or in the explicit key fields
    of :func:`load_pretrained`).
    """
    hidden = "x".join(str(h) for h in hidden_sizes)
    return f"{samples}e{epochs}lr{lr}b{batch_size}h{hidden}"


def _entry_path(
    role: str,
    model_name: str,
    geometry_seed: int,
    seed: int,
    pretrain_key: str,
) -> Path | None:
    base = cache_dir()
    if base is None:
        return None
    safe_key = "".join(
        c if c.isalnum() or c in "._-" else "_" for c in pretrain_key
    )
    policy = active_policy()
    name = (
        f"{role}-{model_name}-g{geometry_seed}-s{seed}"
        f"-v{CACHE_VERSION}-t{TRAINER_VERSION}"
        f"-{policy.digest_namespace}-p{safe_key}.npz"
    )
    return base / name


def load_pretrained(
    role: str,
    model_name: str,
    geometry_seed: int,
    seed: int,
    pretrain_key: str = "",
) -> MLPClassifier | None:
    """Fetch cached pretrained parameters, or None on any miss/failure.

    ``pretrain_key`` must encode every remaining input the trained weights
    depend on (pretraining hyperparameters, proxy architecture), so that
    changing any of them invalidates the entry rather than serving stale
    weights.
    """
    path = _entry_path(role, model_name, geometry_seed, seed, pretrain_key)
    if path is None:
        return None
    dtype = active_policy().dtype
    try:
        with np.load(path) as data:
            num_layers = int(data["num_layers"])
            weights = [
                np.ascontiguousarray(data[f"w{i}"], dtype=dtype)
                for i in range(num_layers)
            ]
            biases = [
                np.ascontiguousarray(data[f"b{i}"], dtype=dtype)
                for i in range(num_layers)
            ]
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        return None
    return MLPClassifier(weights=weights, biases=biases)


def store_pretrained(
    role: str,
    model_name: str,
    geometry_seed: int,
    seed: int,
    mlp: MLPClassifier,
    pretrain_key: str = "",
) -> None:
    """Persist pretrained parameters; failures are silently ignored."""
    path = _entry_path(role, model_name, geometry_seed, seed, pretrain_key)
    if path is None:
        return
    arrays: dict[str, np.ndarray] = {
        "num_layers": np.array(mlp.num_layers)
    }
    for i, (w, b) in enumerate(zip(mlp.weights, mlp.biases)):
        arrays[f"w{i}"] = w
        arrays[f"b{i}"] = b
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(path, lambda handle: np.savez(handle, **arrays))
    except OSError:
        return
