"""Trainable proxy models standing in for the paper's DNNs.

The accelerator decides *how many* samples each kernel can process; these
numpy models decide *what that does to accuracy*.  A student is a small MLP
classifier trained with SGD (learning rate 1e-3, batch 16 -- the paper's
retraining hyperparameters); a teacher is a larger MLP pretrained across all
domains, whose predictions label the retraining data (imperfectly, as in the
real system).

MX precision effects are injected with the *actual* MX quantizer from
:mod:`repro.mx`, scaled by the per-model precision sensitivity from the
model zoo (ViT proxies are more sensitive, per the paper's section VII-B
observation).
"""

from repro.learn.ops import (
    cross_entropy_grad,
    cross_entropy_loss,
    he_init,
    relu,
    relu_grad,
    softmax,
)
from repro.learn.executor import mx_forward, mx_predict
from repro.learn.mlp import MLPClassifier
from repro.learn.quantized import effective_quantize
from repro.learn.train import TrainConfig, train_sgd
from repro.learn.metrics import accuracy, geometric_mean, windowed_accuracy
from repro.learn.student import StudentModel, make_student
from repro.learn.teacher import TeacherModel, make_teacher, pretraining_corpus

__all__ = [
    "MLPClassifier",
    "StudentModel",
    "TeacherModel",
    "TrainConfig",
    "accuracy",
    "cross_entropy_grad",
    "cross_entropy_loss",
    "effective_quantize",
    "geometric_mean",
    "he_init",
    "make_student",
    "make_teacher",
    "mx_forward",
    "mx_predict",
    "pretraining_corpus",
    "relu",
    "relu_grad",
    "softmax",
    "train_sgd",
    "windowed_accuracy",
]
