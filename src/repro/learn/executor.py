"""Functional MX execution of proxy models through the real numerics.

The fast path in :class:`~repro.learn.mlp.MLPClassifier` injects MX effects
with :func:`~repro.learn.quantized.effective_quantize`.  This module
provides the *reference* path: executing every layer with
:func:`~repro.mx.mx_matmul` -- quantized operands, FP32 accumulation --
exactly as the DPE datapath computes it.  At sensitivity 1.0 the two paths
are bit-identical (asserted in ``tests/learn/test_executor.py``), which is
the justification for using the fast path in the system simulator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.learn.mlp import BatchedMLPBank, MLPClassifier
from repro.learn.ops import relu
from repro.mx import MXFormat, mx_matmul

__all__ = [
    "batched_forward",
    "batched_predict",
    "mx_forward",
    "mx_predict",
]


def mx_forward(
    model: MLPClassifier, x: np.ndarray, fmt: MXFormat
) -> np.ndarray:
    """Forward pass computed with MX GEMMs (the DPE functional path).

    Activations are blocked along the feature axis and weights along the
    contraction axis, matching the accelerator's operand layout.  The
    batch is cast to the model's own dtype, so the reference path runs at
    the same precision as the fast path it is compared against.
    """
    h = np.asarray(x, dtype=model.dtype)
    if h.ndim != 2:
        raise ConfigurationError("mx_forward expects a 2-D batch")
    for i, (w, b) in enumerate(zip(model.weights, model.biases)):
        h = mx_matmul(h, w, fmt) + b
        if i < model.num_layers - 1:
            h = relu(h)
    return h


def mx_predict(
    model: MLPClassifier, x: np.ndarray, fmt: MXFormat
) -> np.ndarray:
    """Argmax predictions through the MX functional path."""
    return np.argmax(mx_forward(model, x, fmt), axis=-1)


def batched_forward(
    models: list[MLPClassifier],
    xs: np.ndarray,
    fmt: MXFormat | None = None,
    sensitivity: float = 1.0,
) -> np.ndarray:
    """Stacked logits ``(K, n, C)`` for K same-geometry models.

    The functional entry to the batched inference path: one transient
    :class:`~repro.learn.mlp.BatchedMLPBank` forward.  Slice ``k`` is
    bitwise ``models[k].forward(xs[k], fmt, sensitivity)``; the lockstep
    conductor keeps persistent banks instead, to reuse the stacked-weight
    cache across rounds.
    """
    return BatchedMLPBank(list(models)).forward(xs, fmt, sensitivity)


def batched_predict(
    models: list[MLPClassifier],
    xs: np.ndarray,
    fmt: MXFormat | None = None,
    sensitivity: float = 1.0,
) -> np.ndarray:
    """Stacked argmax predictions ``(K, n)`` for K same-geometry models."""
    return np.argmax(batched_forward(models, xs, fmt, sensitivity), axis=-1)
