"""Frozen reference digests: the bit-identity contract per numeric policy.

A *reference digest* is a sha256 over everything a :class:`RunResult`'s
consumers can observe -- frame timestamps, per-frame correctness and drop
flags, and the full phase trace -- so two runs share a digest iff they are
bit-identical.  Each :class:`~repro.numeric.NumericPolicy` owns one frozen
digest file (``tests/reference/digests_<policy>.json``):

- ``digests_float64.json`` was generated on the tree *before* the numeric-
  policy refactor; the default policy must keep matching it forever (the
  refactor changed no float64 bits).
- ``digests_float32.json`` freezes the opt-in fast path, proving float32
  runs are deterministic across processes, runs, and worker counts.

Sections, by cost:

- ``smoke`` -- 6 systems on one short scenario + its raw stream; cheap
  enough for tier-1 (``tests/test_reference_digests.py``).
- ``full`` -- the 29-entry fixed-seed set carried since PR 1 (6 systems x
  2 scenarios x 2 seeds at 600 s, the full-length 1200 s DaCapo cell, and
  4 raw streams); checked when ``REPRO_FULL_DIGESTS=1``.
- ``fig9`` -- per-cell digests *and accuracies* of the full Figure 9 grid
  (108 cells at 1200 s).  The stored accuracies back the float32
  acceptance bound: every cell within :data:`FIG9_ACCURACY_BOUND_PP`
  percentage points of its float64 counterpart.

Regenerate a policy's file with::

    PYTHONPATH=src REPRO_DTYPE=float32 python -m repro.reference \
        --out tests/reference/digests_float32.json

(only ever regenerate the float32 file after an intentional numerics
change; the float64 file is the pre-refactor ground truth).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.parallel import SystemCell, run_cells
from repro.core.results import RunResult
from repro.data.scenarios import build_scenario
from repro.data.stream import FrameWindow
from repro.numeric import active_policy

__all__ = [
    "FIG9_ACCURACY_BOUND_PP",
    "REFERENCE_VERSION",
    "compute_section",
    "reference_cells",
    "reference_path",
    "run_digest",
    "stream_digest",
]

#: Schema version of the digest files.
REFERENCE_VERSION = 1

#: Maximum per-cell |accuracy(float32) - accuracy(float64)| on the full
#: Figure 9 grid, in percentage points (acceptance bound).
FIG9_ACCURACY_BOUND_PP = 0.5

_SMOKE_SYSTEMS = (
    "OrinLow-Ekya",
    "OrinHigh-Ekya",
    "OrinHigh-EOMU",
    "DaCapo-Ekya",
    "DaCapo-Spatial",
    "DaCapo-Spatiotemporal",
)
_FULL_SCENARIOS = ("S1", "S4")
_FULL_SEEDS = (0, 1)
_PAIR = "resnet18_wrn50"

_FIG9_SYSTEMS = _SMOKE_SYSTEMS
_FIG9_SCENARIOS = ("S1", "S2", "S3", "S4", "S5", "S6")
_FIG9_PAIRS = ("resnet18_wrn50", "vit_b32_b16", "resnet34_wrn101")


def _array_bytes(array: np.ndarray) -> bytes:
    """Dtype-tagged contiguous bytes (the dtype is part of the identity)."""
    array = np.ascontiguousarray(array)
    return str(array.dtype).encode() + b"|" + array.tobytes()


def run_digest(result: RunResult) -> str:
    """Hex sha256 over every observable field of one run."""
    hasher = hashlib.sha256()
    hasher.update(
        f"{result.system}|{result.scenario}|{result.pair}|"
        f"{result.duration_s.hex()}".encode()
    )
    hasher.update(_array_bytes(result.times))
    hasher.update(_array_bytes(np.asarray(result.correct)))
    hasher.update(_array_bytes(np.asarray(result.dropped)))
    for phase in result.phases:
        hasher.update(
            f"{phase.kind.name}|{phase.start_s.hex()}|{phase.end_s.hex()}|"
            f"{phase.samples}|{int(phase.drift_detected)}".encode()
        )
    return hasher.hexdigest()


def stream_digest(window: FrameWindow) -> str:
    """Hex sha256 over a materialized stream's raw arrays."""
    hasher = hashlib.sha256()
    for array in (window.features, window.labels, window.times):
        hasher.update(_array_bytes(np.asarray(array)))
    return hasher.hexdigest()


def _cell_key(cell: SystemCell) -> str:
    return (
        f"{cell.system}|{cell.pair}|{cell.scenario}"
        f"|seed{cell.seed}|{cell.duration_s:g}s"
    )


def _stream_key(scenario: str, seed: int, duration_s: float) -> str:
    return f"stream|{scenario}|seed{seed}|{duration_s:g}s"


def reference_cells(section: str) -> list[SystemCell]:
    """The fixed-seed grid one section runs."""
    if section == "smoke":
        return [
            SystemCell(system, _PAIR, "S4", 0, 300.0)
            for system in _SMOKE_SYSTEMS
        ]
    if section == "full":
        cells = [
            SystemCell(system, _PAIR, scenario, seed, 600.0)
            for system in _SMOKE_SYSTEMS
            for scenario in _FULL_SCENARIOS
            for seed in _FULL_SEEDS
        ]
        cells.append(
            SystemCell("DaCapo-Spatiotemporal", _PAIR, "S4", 0, 1200.0)
        )
        return cells
    if section == "fig9":
        return [
            SystemCell(system, pair, scenario, 0, 1200.0)
            for pair in _FIG9_PAIRS
            for system in _FIG9_SYSTEMS
            for scenario in _FIG9_SCENARIOS
        ]
    raise ValueError(f"unknown reference section {section!r}")


def _section_streams(section: str) -> list[tuple[str, int, float]]:
    """(scenario, seed, duration) triples whose raw streams a section pins."""
    if section == "smoke":
        return [("S4", 0, 300.0)]
    if section == "full":
        return [
            (scenario, seed, 1200.0)
            for scenario in _FULL_SCENARIOS
            for seed in _FULL_SEEDS
        ]
    return []


def compute_section(section: str, jobs: int = 1) -> dict[str, dict]:
    """Digests (and accuracies) for one section under the active policy."""
    cells = reference_cells(section)
    results = run_cells(cells, jobs=jobs)
    entries: dict[str, dict] = {}
    for cell, result in zip(cells, results):
        entries[_cell_key(cell)] = {
            "digest": run_digest(result),
            "accuracy": result.average_accuracy(),
        }
    for scenario, seed, duration_s in _section_streams(section):
        stream = build_scenario(scenario, duration_s=duration_s)
        entries[_stream_key(scenario, seed, duration_s)] = {
            "digest": stream_digest(stream.materialize(seed))
        }
    return entries


def reference_path(policy_name: str, root: Path | None = None) -> Path:
    """The checked-in digest file for one policy."""
    if root is None:
        root = Path(__file__).resolve().parents[2] / "tests" / "reference"
    return root / f"digests_{policy_name}.json"


def main(argv: list[str] | None = None) -> int:
    """Regenerate the active policy's digest file."""
    parser = argparse.ArgumentParser(
        prog="repro.reference",
        description="regenerate frozen reference digests",
    )
    parser.add_argument(
        "--sections", nargs="+", default=["smoke", "full", "fig9"],
        choices=["smoke", "full", "fig9"],
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    policy = active_policy()
    out = args.out or reference_path(policy.name)
    payload = {
        "version": REFERENCE_VERSION,
        "policy": policy.name,
        "digest_namespace": policy.digest_namespace,
    }
    for section in args.sections:
        payload[section] = compute_section(section, jobs=args.jobs)
        print(f"[{policy.name}] {section}: {len(payload[section])} entries")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
