"""Shared on-disk cache root for every persisted artifact tier.

Two artifact families live under one directory so a single environment
variable governs them both:

- pretrained proxy MLPs (:mod:`repro.learn.cache`), stored as ``.npz``
  archives in the root itself;
- materialized scenario streams (:mod:`repro.data.artifacts`), stored as
  memmap-openable ``.npy`` files under ``streams/``.

The location is ``$REPRO_CACHE_DIR`` when set (an *empty* value disables
every disk tier), else ``~/.cache/repro-dacapo``.  The variable is re-read
on every access so tests can repoint the cache per-case with a plain
``monkeypatch.setenv``.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable

__all__ = ["CACHE_ENV", "cache_dir", "write_atomic"]

#: Environment variable overriding the cache directory ("" disables).
CACHE_ENV = "REPRO_CACHE_DIR"


def cache_dir() -> Path | None:
    """The active cache directory, or None when disk caching is disabled."""
    root = os.environ.get(CACHE_ENV)
    if root is not None:
        return Path(root) if root else None
    return Path.home() / ".cache" / "repro-dacapo"


def write_atomic(path: Path, write: Callable) -> None:
    """Write a cache file via temp-file + rename.

    ``write`` receives a binary file handle.  Readers only ever see
    complete files, and -- since every cache entry in this project is
    content-deterministic -- concurrent writers race benignly.  ``OSError``
    propagates; cache tiers treat it as a soft failure.
    """
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
