"""Quantization-error metrics used for precision studies.

The paper's workflow step 2 ("performance estimation") examines every
supported MX precision and its accuracy impact before committing to MX9 for
retraining and MX6 for inference/labeling.  These helpers quantify that
impact on arbitrary tensors and back the precision-ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.mx.formats import FORMATS, MXFormat
from repro.mx.quantize import quantize
from repro.numeric import ensure_float

__all__ = ["max_abs_error", "mse", "sqnr", "quantization_report"]


def max_abs_error(values: np.ndarray, fmt: MXFormat, axis: int = -1) -> float:
    """Largest absolute deviation introduced by fake-quantizing ``values``."""
    values = ensure_float(values)
    return float(np.max(np.abs(values - quantize(values, fmt, axis=axis))))


def mse(values: np.ndarray, fmt: MXFormat, axis: int = -1) -> float:
    """Mean squared quantization error.

    The squared errors are formed in the operand dtype; the mean is an
    accumulation site and always reduces in float64 (a float32 sum over a
    large tensor would bury the smaller squared errors).
    """
    values = ensure_float(values)
    err = values - quantize(values, fmt, axis=axis)
    return float(np.mean(err * err, dtype=np.float64))


def sqnr(values: np.ndarray, fmt: MXFormat, axis: int = -1) -> float:
    """Signal-to-quantization-noise ratio in dB (inf for exact round trips).

    Signal power reduces in float64 under every policy (accumulation
    site), mirroring :func:`mse`.
    """
    values = ensure_float(values)
    signal = float(np.mean(values * values, dtype=np.float64))
    noise = mse(values, fmt, axis=axis)
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * float(np.log10(signal / noise))


def quantization_report(
    values: np.ndarray, axis: int = -1
) -> dict[str, dict[str, float]]:
    """Per-format error summary: ``{format_name: {metric: value}}``.

    Covers all three supported formats so callers can reproduce the paper's
    observation that MX4 degrades accuracy considerably while MX6/MX9 track
    FP32 closely.
    """
    report: dict[str, dict[str, float]] = {}
    for fmt in FORMATS:
        report[fmt.name] = {
            "max_abs_error": max_abs_error(values, fmt, axis=axis),
            "mse": mse(values, fmt, axis=axis),
            "sqnr_db": sqnr(values, fmt, axis=axis),
            "bits_per_value": fmt.bits_per_value,
        }
    return report
