"""Dot products and GEMMs computed the way the DPE hardware computes them.

A DPE multiplies two MX-encoded 16-value blocks: integer mantissa products
are accumulated through the hierarchical MAC tree and the FP32 generator
applies the combined block/sub-block scales before accumulating into an FP32
partial sum (paper Figure 7).  Because both the mantissa products and the
power-of-two scales are exact in float64, computing with the *dequantized*
values gives bit-identical results to the integer datapath -- a fact the test
suite checks explicitly.  The public helpers therefore fake-quantize operands
and use ordinary float accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.mx.formats import MXFormat
from repro.mx.quantize import quantize
from repro.numeric import ensure_float

__all__ = ["mx_dot", "mx_matmul"]


def mx_dot(
    a: np.ndarray,
    b: np.ndarray,
    fmt_a: MXFormat,
    fmt_b: MXFormat | None = None,
) -> float:
    """Dot product of two vectors after MX quantization of each operand.

    Args:
        a: First operand, 1-D.
        b: Second operand, 1-D, same length as ``a``.
        fmt_a: MX format applied to ``a``.
        fmt_b: MX format applied to ``b``; defaults to ``fmt_a``.

    Returns:
        The FP32-accumulated dot product of the quantized operands.
    """
    a = ensure_float(a)
    b = ensure_float(b)
    if a.ndim != 1 or b.ndim != 1:
        raise QuantizationError("mx_dot expects 1-D operands")
    if a.shape != b.shape:
        raise QuantizationError(
            f"operand length mismatch: {a.shape[0]} vs {b.shape[0]}"
        )
    fmt_b = fmt_b or fmt_a
    qa = quantize(a, fmt_a)
    qb = quantize(b, fmt_b)
    return float(np.dot(qa, qb))


def mx_matmul(
    a: np.ndarray,
    b: np.ndarray,
    fmt_a: MXFormat,
    fmt_b: MXFormat | None = None,
) -> np.ndarray:
    """GEMM with MX-quantized operands and FP32 accumulation.

    Blocks are formed along the contraction axis of each operand (the last
    axis of ``a`` and the first axis of ``b``), matching how the systolic
    array streams dot-product operands.  Operands keep their float dtype
    (mixed float32/float64 pairs promote in the final GEMM only).
    """
    a = ensure_float(a)
    b = ensure_float(b)
    if a.ndim != 2 or b.ndim != 2:
        raise QuantizationError("mx_matmul expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise QuantizationError(
            f"inner dimension mismatch: {a.shape} @ {b.shape}"
        )
    fmt_b = fmt_b or fmt_a
    qa = quantize(a, fmt_a, axis=1)
    qb = quantize(b, fmt_b, axis=0)
    return qa @ qb
