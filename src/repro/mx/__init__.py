"""MX block-floating-point arithmetic (paper Figure 6 and section V-B).

MX (MicroeXponent) is the block-floating-point family DaCapo adopts from
Rouhani et al. (ISCA 2023).  A block of 16 address-adjacent values shares an
8-bit exponent; each sub-block of 2 values additionally carries a 1-bit
microexponent that shifts the sub-block one binade down when both of its
values are strictly smaller than the shared exponent, recovering one bit of
precision.  Mantissas are sign-magnitude, truncated to 2 (MX4), 4 (MX6) or
7 (MX9) bits.

The public API:

- :data:`MX4`, :data:`MX6`, :data:`MX9` -- the three formats the DaCapo
  accelerator supports, plus :func:`format_by_name` lookup.
- :func:`quantize_blocks` / :func:`dequantize` -- exact encode/decode to the
  packed :class:`MXTensor` representation.
- :func:`quantize` -- fake-quantization (encode then decode) used to inject
  precision effects into the learning substrate.
- :func:`mx_dot` / :func:`mx_matmul` -- dot products and GEMMs computed the
  way the DPE hardware computes them (integer mantissa products, FP32
  accumulation).
"""

from repro.mx.formats import (
    FORMATS,
    MX4,
    MX6,
    MX9,
    MXFormat,
    format_by_name,
)
from repro.mx.quantize import (
    MXTensor,
    dequantize,
    quantize,
    quantize_blocks,
)
from repro.mx.dot import mx_dot, mx_matmul
from repro.mx.error import max_abs_error, mse, quantization_report, sqnr
from repro.mx.packing import pack, unpack

__all__ = [
    "FORMATS",
    "MX4",
    "MX6",
    "MX9",
    "MXFormat",
    "MXTensor",
    "dequantize",
    "format_by_name",
    "max_abs_error",
    "mse",
    "mx_dot",
    "mx_matmul",
    "pack",
    "quantization_report",
    "quantize",
    "quantize_blocks",
    "sqnr",
    "unpack",
]
