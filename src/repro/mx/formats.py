"""Definitions of the MX number formats supported by the DaCapo DPE.

The paper's accelerator supports three precisions, switchable at runtime
(section V-B):

========  =============  ==================  ====================
Format    Mantissa bits  Bits per value      DPE cycles per dot
========  =============  ==================  ====================
MX4       2              4                   1
MX6       4              6                   4
MX9       7              9                   16
========  =============  ==================  ====================

"Bits per value" amortizes the shared 8-bit block exponent over the 16-value
block (0.5 bit/value) and the 1-bit sub-block microexponent over the 2-value
sub-block (0.5 bit/value), which is exactly how the formats earn their names:
``1 (sign) + mantissa + 1 (amortized exponents)``.

The DPE executes a 16-wide dot product with sixteen 2-bit multipliers
arranged in a hierarchical MAC tree.  MX4 mantissas fit a single 2-bit
multiplier, so all 16 products issue in one cycle; MX6 (4-bit) fuses four
multipliers per product and serializes over 4 cycles; MX9 (7-bit, padded to
8) fuses all sixteen and serializes over 16 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Smallest and largest exponents representable by the 8-bit shared exponent.
#: We mirror IEEE-754 single precision's normal range so any normal FP32
#: input has a representable block exponent.
MIN_SHARED_EXPONENT = -126
MAX_SHARED_EXPONENT = 127


@dataclass(frozen=True)
class MXFormat:
    """A concrete MX precision configuration.

    Attributes:
        name: Human-readable format name (``"MX4"``, ``"MX6"``, ``"MX9"``).
        mantissa_bits: Stored magnitude bits per value, excluding the sign.
        block_size: Values sharing one 8-bit exponent (paper default 16).
        subblock_size: Values sharing one 1-bit microexponent (default 2).
        exponent_bits: Width of the shared exponent field.
        microexponent_bits: Width of the per-sub-block microexponent field.
    """

    name: str
    mantissa_bits: int
    block_size: int = 16
    subblock_size: int = 2
    exponent_bits: int = 8
    microexponent_bits: int = 1

    def __post_init__(self) -> None:
        if self.mantissa_bits < 1:
            raise ConfigurationError("mantissa_bits must be >= 1")
        if self.block_size < 1:
            raise ConfigurationError("block_size must be >= 1")
        if self.subblock_size < 1 or self.block_size % self.subblock_size:
            raise ConfigurationError(
                "subblock_size must divide block_size "
                f"(got {self.subblock_size} vs {self.block_size})"
            )

    @property
    def subblocks_per_block(self) -> int:
        """Number of microexponent-carrying sub-blocks per block."""
        return self.block_size // self.subblock_size

    @property
    def bits_per_value(self) -> float:
        """Storage cost per value, amortizing shared metadata over the block."""
        shared = self.exponent_bits / self.block_size
        micro = self.microexponent_bits / self.subblock_size
        return 1 + self.mantissa_bits + shared + micro

    @property
    def block_bits(self) -> int:
        """Total packed bits for one full block, metadata included."""
        per_value = (1 + self.mantissa_bits) * self.block_size
        metadata = self.exponent_bits + (
            self.microexponent_bits * self.subblocks_per_block
        )
        return per_value + metadata

    @property
    def block_bytes(self) -> int:
        """Packed block size rounded up to whole bytes (memory layout unit)."""
        return (self.block_bits + 7) // 8

    @property
    def max_mantissa(self) -> int:
        """Largest storable mantissa magnitude (sign-magnitude encoding)."""
        return (1 << self.mantissa_bits) - 1

    def bytes_for(self, num_values: int) -> int:
        """Packed bytes needed to store ``num_values`` values.

        Values are stored in whole blocks; a trailing partial block is padded
        to a full block, exactly as the hardware memory interface lays it out.
        """
        if num_values < 0:
            raise ConfigurationError("num_values must be non-negative")
        blocks = (num_values + self.block_size - 1) // self.block_size
        return blocks * self.block_bytes

    def __str__(self) -> str:
        return self.name


#: 2-bit mantissas: lowest precision, 1 DPE cycle per 16-wide dot product.
MX4 = MXFormat("MX4", mantissa_bits=2)

#: 4-bit mantissas: the paper's choice for inference and labeling.
MX6 = MXFormat("MX6", mantissa_bits=4)

#: 7-bit mantissas: the paper's choice for retraining.
MX9 = MXFormat("MX9", mantissa_bits=7)

#: All formats the DaCapo DPE supports, in increasing precision order.
FORMATS: tuple[MXFormat, ...] = (MX4, MX6, MX9)

_BY_NAME = {fmt.name: fmt for fmt in FORMATS}


def format_by_name(name: str) -> MXFormat:
    """Look up one of the supported formats by name (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ConfigurationError(f"unknown MX format {name!r}; known: {known}")
