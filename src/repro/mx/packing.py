"""Bit-exact packing of MX tensors into the hardware memory layout.

The programmable memory interface stores each 16-value block as a packed
bitstream: the 8-bit shared exponent (biased), eight 1-bit microexponents,
then sixteen sign-magnitude mantissas of ``1 + mantissa_bits`` bits each,
padded to whole bytes.  :func:`pack` and :func:`unpack` are exact inverses
for any encoded :class:`~repro.mx.quantize.MXTensor`, and the byte counts
match :meth:`~repro.mx.formats.MXFormat.bytes_for` -- the accounting the
DRAM-traffic model relies on.

The packed layout is numeric-policy-neutral: an MXTensor holds integer
mantissas/exponents only, so a block encoded from a float32 tensor packs
to the same bytes as its float64-encoded counterpart (every MX value is
exact in either dtype); decode back to a chosen float dtype via
:func:`repro.mx.quantize.dequantize`'s ``dtype`` parameter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.mx.formats import MIN_SHARED_EXPONENT, MXFormat
from repro.mx.quantize import MXTensor

__all__ = ["pack", "unpack"]

#: Bias applied to shared exponents so they store as unsigned bytes.
_EXPONENT_BIAS = -MIN_SHARED_EXPONENT  # 126


def _bits_of(value: int, width: int) -> list[int]:
    """Most-significant-bit-first bit list of a non-negative integer."""
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def _int_from_bits(bits: np.ndarray) -> int:
    """Integer from an MSB-first bit array."""
    out = 0
    for bit in bits:
        out = (out << 1) | int(bit)
    return out


def pack(tensor: MXTensor) -> bytes:
    """Serialize an encoded tensor into the packed hardware layout."""
    fmt = tensor.fmt
    mantissas = tensor.mantissas.reshape(-1, fmt.block_size)
    exponents = tensor.shared_exponents.reshape(-1)
    micros = tensor.microexponents.reshape(-1, fmt.subblocks_per_block)

    bits: list[int] = []
    for block in range(len(exponents)):
        biased = int(exponents[block]) + _EXPONENT_BIAS
        if not 0 <= biased < (1 << fmt.exponent_bits):
            raise QuantizationError(
                f"shared exponent {exponents[block]} outside packable range"
            )
        bits.extend(_bits_of(biased, fmt.exponent_bits))
        for micro in micros[block]:
            bits.extend(_bits_of(int(micro), fmt.microexponent_bits))
        for value in mantissas[block]:
            sign = 1 if value < 0 else 0
            magnitude = abs(int(value))
            if magnitude > fmt.max_mantissa:
                raise QuantizationError(
                    f"mantissa {value} exceeds {fmt.name} range"
                )
            bits.append(sign)
            bits.extend(_bits_of(magnitude, fmt.mantissa_bits))
        # Pad each block to whole bytes (the block is the layout unit).
        while len(bits) % 8:
            bits.append(0)
    return np.packbits(np.array(bits, dtype=np.uint8)).tobytes()


def unpack(
    payload: bytes,
    fmt: MXFormat,
    shape: tuple[int, ...],
    axis: int = -1,
) -> MXTensor:
    """Deserialize :func:`pack` output back into an :class:`MXTensor`.

    Args:
        payload: Packed bytes.
        fmt: The MX format used when packing.
        shape: Logical tensor shape (pre-padding), as stored on the tensor.
        axis: Blocking axis used when packing.

    Raises:
        QuantizationError: If the payload size does not match the shape.
    """
    axis = axis % len(shape)
    length = shape[axis]
    blocks_per_row = -(-length // fmt.block_size)
    lead = int(np.prod(shape)) // length
    total_blocks = lead * blocks_per_row
    expected = total_blocks * fmt.block_bytes
    if len(payload) != expected:
        raise QuantizationError(
            f"payload holds {len(payload)} bytes, expected {expected}"
        )

    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    block_bits = fmt.block_bytes * 8

    mantissas = np.zeros((total_blocks, fmt.block_size), dtype=np.int32)
    exponents = np.zeros(total_blocks, dtype=np.int32)
    micros = np.zeros(
        (total_blocks, fmt.subblocks_per_block), dtype=np.uint8
    )
    for block in range(total_blocks):
        cursor = block * block_bits
        exponents[block] = (
            _int_from_bits(bits[cursor:cursor + fmt.exponent_bits])
            - _EXPONENT_BIAS
        )
        cursor += fmt.exponent_bits
        for sub in range(fmt.subblocks_per_block):
            micros[block, sub] = bits[cursor]
            cursor += fmt.microexponent_bits
        for lane in range(fmt.block_size):
            sign = int(bits[cursor])
            cursor += 1
            magnitude = _int_from_bits(
                bits[cursor:cursor + fmt.mantissa_bits]
            )
            cursor += fmt.mantissa_bits
            mantissas[block, lane] = -magnitude if sign else magnitude

    lead_shape = []
    moved = list(shape)
    moved.append(moved.pop(axis))
    lead_shape = moved[:-1]
    return MXTensor(
        fmt=fmt,
        mantissas=mantissas.reshape(*lead_shape, blocks_per_row,
                                    fmt.block_size),
        shared_exponents=exponents.reshape(*lead_shape, blocks_per_row),
        microexponents=micros.reshape(*lead_shape, blocks_per_row,
                                      fmt.subblocks_per_block),
        shape=tuple(shape),
        axis=axis,
    )
