"""FP32 <-> MX conversion, following the paper's Figure 6 step by step.

Encoding a block of 16 values:

1. Take each value's binary exponent (``floor(log2 |v|)``).
2. The *shared exponent* ``E`` is the maximum exponent in the block, clamped
   to the 8-bit range.
3. For each sub-block of 2 values, the *microexponent* bit is set when every
   exponent in the sub-block is strictly below ``E``; the sub-block is then
   scaled one binade lower (``E - 1``), recovering one mantissa bit.
4. Mantissas are quantized to ``m`` magnitude bits (round-to-nearest-even,
   saturating) against the sub-block scale ``2 ** (E_sub - m + 1)``.

Decoding multiplies the integer mantissa back by its sub-block scale.  Both
directions are exact integer/power-of-two arithmetic, so encode->decode is a
pure function of the input bits -- there is no hidden floating-point fuzz
beyond the quantization itself.

:func:`quantize` (fake quantization, the learning substrate's hot path) runs
a fused encode+decode: one pass over the block layout with in-place rounding
/ clipping / rescaling and no integer round-trip, bit-identical to
``dequantize(quantize_blocks(...))`` because every arithmetic step is the
same power-of-two scaling in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.mx.formats import (
    MAX_SHARED_EXPONENT,
    MIN_SHARED_EXPONENT,
    MXFormat,
)
from repro.numeric import ensure_float

__all__ = ["MXTensor", "quantize_blocks", "dequantize", "quantize"]


@dataclass(frozen=True)
class MXTensor:
    """A tensor encoded in an MX format.

    The payload is stored unpacked for simulation convenience (one numpy
    element per field) but :attr:`nbytes` reports the packed hardware size.

    Attributes:
        fmt: The MX format this tensor is encoded in.
        mantissas: Signed integer mantissas, shape ``(*lead, blocks, block_size)``.
        shared_exponents: Per-block shared exponents, shape ``(*lead, blocks)``.
        microexponents: Per-sub-block 0/1 bits, shape
            ``(*lead, blocks, subblocks_per_block)``.
        shape: Logical (unpadded) shape of the original tensor.
        axis: The axis of ``shape`` along which blocks were formed.
    """

    fmt: MXFormat
    mantissas: np.ndarray
    shared_exponents: np.ndarray
    microexponents: np.ndarray
    shape: tuple[int, ...]
    axis: int

    @property
    def num_values(self) -> int:
        """Number of logical (unpadded) values represented."""
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def num_blocks(self) -> int:
        """Number of hardware blocks, padding included."""
        return int(np.prod(self.shared_exponents.shape))

    @property
    def nbytes(self) -> int:
        """Packed storage size in bytes, as laid out by the memory interface."""
        return self.num_blocks * self.fmt.block_bytes


def _normalize_axis(axis: int, ndim: int) -> int:
    if not -ndim <= axis < ndim:
        raise QuantizationError(f"axis {axis} out of range for ndim {ndim}")
    return axis % ndim


def _binary_exponents(values: np.ndarray) -> np.ndarray:
    """Per-element ``floor(log2 |v|)``, with zeros mapped to the minimum.

    Uses ``frexp`` (``|v| = f * 2**e`` with ``f`` in ``[0.5, 1)``), so the
    binary exponent is exactly ``e - 1`` without log-precision concerns.
    """
    _, exp = np.frexp(values)
    exponents = exp.astype(np.int32, copy=False)
    exponents -= 1
    exponents[values == 0.0] = MIN_SHARED_EXPONENT
    return exponents


def _prepare_blocks(
    values: np.ndarray, fmt: MXFormat, axis: int
) -> tuple[np.ndarray, int, np.ndarray, int]:
    """Validate input and reshape it into the block layout.

    Dtype-polymorphic: float32 and float64 inputs keep their dtype through
    the whole encode (non-float inputs are cast to float64 as before);
    every downstream scale is built in the operand dtype, so a float32
    block never silently upcasts to float64 mid-kernel.

    Returns ``(arr, axis, grouped, length)`` where ``grouped`` has shape
    ``(*lead, blocks, block_size)`` (zero-padded along the final block) and
    ``length`` is the unpadded extent along the blocking axis.
    """
    arr = ensure_float(values)
    if arr.size and not np.isfinite(arr).all():
        raise QuantizationError("MX cannot encode NaN or Inf values")
    if arr.ndim == 0:
        arr = arr.reshape(1)
    axis = _normalize_axis(axis, arr.ndim)
    moved = arr if axis == arr.ndim - 1 else np.moveaxis(arr, axis, -1)
    length = moved.shape[-1]
    if length == 0:
        raise QuantizationError("cannot quantize along an empty axis")

    blocks = -(-length // fmt.block_size)
    padded_len = blocks * fmt.block_size
    if padded_len != length:
        padded = np.zeros(
            (*moved.shape[:-1], padded_len), dtype=arr.dtype
        )
        padded[..., :length] = moved
        moved = padded
    grouped = moved.reshape(*moved.shape[:-1], blocks, fmt.block_size)
    return arr, axis, grouped, length


def _encode_core(
    grouped: np.ndarray,
    fmt: MXFormat,
    rounding: str,
    rng: np.random.Generator | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Single-pass block encode on the grouped layout.

    Returns ``(quantized, scales, shared, micro)`` where ``quantized`` holds
    the rounded, saturated mantissa *values* as float64 in the sub-block
    layout ``(*lead, blocks, subblocks, subblock_size)`` and ``scales`` are
    the per-sub-block power-of-two scales.  ``quantized`` is freshly
    allocated, so callers may mutate it in place.
    """
    exponents = _binary_exponents(grouped)
    shared = exponents.max(axis=-1)
    shared = np.clip(shared, MIN_SHARED_EXPONENT, MAX_SHARED_EXPONENT)
    shared = shared.astype(np.int32, copy=False)

    sub_shape = (*grouped.shape[:-1], fmt.subblocks_per_block, fmt.subblock_size)
    sub_exponents = exponents.reshape(sub_shape)
    sub_max = sub_exponents.max(axis=-1)
    micro = (sub_max < shared[..., None]).astype(np.uint8)

    # Effective sub-block exponent: one binade lower when the microexponent
    # bit is set, which is what buys back a bit of precision (Figure 6).
    scale_exp = shared[..., None] - micro.astype(np.int32)
    scale_exp -= fmt.mantissa_bits - 1
    # Scales in the operand dtype (powers of two are exact in either), so
    # a float32 encode stays float32 end to end instead of upcasting here.
    scales = np.ldexp(grouped.dtype.type(1.0), scale_exp)

    scaled = grouped.reshape(sub_shape) / scales[..., None]
    if rounding == "nearest":
        quantized = np.round(scaled, out=scaled)
    elif rounding == "stochastic":
        if rng is None:
            raise QuantizationError(
                "stochastic rounding requires an rng argument"
            )
        floor = np.floor(scaled)
        quantized = floor + (rng.random(scaled.shape) < (scaled - floor))
    else:
        raise QuantizationError(
            f"unknown rounding mode {rounding!r}; "
            "expected 'nearest' or 'stochastic'"
        )
    limit = float(fmt.max_mantissa)
    # clip == minimum(maximum(x, lo), hi); the two in-place ufunc calls skip
    # np.clip's scalar-bound promotion machinery on this hot path.
    np.maximum(quantized, -limit, out=quantized)
    np.minimum(quantized, limit, out=quantized)
    return quantized, scales, shared, micro


def quantize_blocks(
    values: np.ndarray,
    fmt: MXFormat,
    axis: int = -1,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
) -> MXTensor:
    """Encode ``values`` into an :class:`MXTensor`.

    Args:
        values: Real-valued array.  NaN/Inf are rejected, mirroring the
            hardware which has no encodings for them.
        fmt: Target MX format.
        axis: Axis along which 16-value blocks are formed (address-adjacency
            axis).  A trailing partial block is zero-padded.
        rounding: ``"nearest"`` (round-to-nearest-even, the default) or
            ``"stochastic"`` (FAST-style stochastic rounding, unbiased in
            expectation -- useful for low-precision training studies).
        rng: Randomness source, required for stochastic rounding.

    Returns:
        The encoded tensor.

    Raises:
        QuantizationError: On non-finite input, an empty axis, or an
            unknown rounding mode.
    """
    arr, axis, grouped, _ = _prepare_blocks(values, fmt, axis)
    quantized, _, shared, micro = _encode_core(grouped, fmt, rounding, rng)
    mantissas = quantized.reshape(grouped.shape).astype(np.int32)

    return MXTensor(
        fmt=fmt,
        mantissas=mantissas,
        shared_exponents=shared,
        microexponents=micro,
        shape=arr.shape,
        axis=axis,
    )


def dequantize(tensor: MXTensor, dtype: np.dtype = np.float64) -> np.ndarray:
    """Decode an :class:`MXTensor` to ``dtype``, dropping block padding.

    Every representable MX value (mantissa magnitude < 2**8 times a power
    of two) is exact in float32 and float64 alike, so decoding to either
    dtype yields the same real numbers.
    """
    fmt = tensor.fmt
    dtype = np.dtype(dtype)
    effective = tensor.shared_exponents[..., None] - tensor.microexponents.astype(
        np.int32
    )
    scale_exp = effective - (fmt.mantissa_bits - 1)
    scales = np.ldexp(dtype.type(1.0), scale_exp)
    sub_shape = (
        *tensor.mantissas.shape[:-1],
        fmt.subblocks_per_block,
        fmt.subblock_size,
    )
    sub_mantissas = tensor.mantissas.reshape(sub_shape).astype(dtype)
    decoded = (sub_mantissas * scales[..., None]).reshape(tensor.mantissas.shape)

    flat = decoded.reshape(*decoded.shape[:-2], -1)
    length = tensor.shape[tensor.axis] if tensor.shape else 1
    flat = flat[..., :length]
    moved_shape = list(tensor.shape)
    moved_shape.append(moved_shape.pop(tensor.axis))
    flat = flat.reshape(moved_shape)
    return np.moveaxis(flat, -1, tensor.axis)


def quantize(values: np.ndarray, fmt: MXFormat, axis: int = -1) -> np.ndarray:
    """Fake-quantize: encode to ``fmt`` and immediately decode.

    This is the workhorse used by the learning substrate to expose MX
    precision effects to the proxy models without carrying packed tensors
    around.  The encode and decode are fused: the rounded mantissa values
    are rescaled in place, skipping the :class:`MXTensor` materialization
    and its float64 -> int32 -> float64 round-trip.  Mantissa magnitudes
    never exceed ``fmt.max_mantissa`` (< 2**53), so dropping the integer
    cast is exact and the result is bit-identical to
    ``dequantize(quantize_blocks(values, fmt, axis))``.
    """
    arr, axis, grouped, length = _prepare_blocks(values, fmt, axis)
    quantized, scales, _, _ = _encode_core(grouped, fmt, "nearest", None)
    # The integer cast normalized negative zeros (round(-0.1) -> -0.0 ->
    # int32 0 -> +0.0); adding +0.0 reproduces that exactly (IEEE-754:
    # -0.0 + 0.0 == +0.0, every other finite value is unchanged).
    np.add(quantized, 0.0, out=quantized)
    decoded = np.multiply(quantized, scales[..., None], out=quantized)

    flat = decoded.reshape(*grouped.shape[:-2], -1)
    flat = flat[..., :length]
    if axis == arr.ndim - 1:
        return flat.reshape(arr.shape)
    moved_shape = list(arr.shape)
    moved_shape.append(moved_shape.pop(axis))
    flat = flat.reshape(moved_shape)
    return np.moveaxis(flat, -1, axis)
