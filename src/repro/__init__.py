"""repro: a reproduction of DaCapo (ISCA 2024).

DaCapo is a hardware/algorithm co-designed continuous-learning system for
video analytics on autonomous systems.  This package implements the paper's
full stack in Python:

- :mod:`repro.mx` -- MX block-floating-point arithmetic (MX4/MX6/MX9).
- :mod:`repro.accelerator` -- the spatially-partitionable, precision-flexible
  DPE systolic-array accelerator model (timing, memory, power).
- :mod:`repro.models` -- architectural specs of the six evaluated DNNs.
- :mod:`repro.platform` -- GPU roofline baselines (Jetson Orin, RTX 3090) and
  the DaCapo platform wrapper.
- :mod:`repro.data` -- synthetic BDD100K-like drifting scenario generator.
- :mod:`repro.learn` -- trainable numpy proxy models (student/teacher).
- :mod:`repro.core` -- continuous-learning kernels, the spatiotemporal
  resource-allocation algorithm (paper Algorithm 1), baselines, and the
  end-to-end system simulator.
- :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
