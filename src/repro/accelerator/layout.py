"""Programmable memory-interface layout programs (paper section V-A).

When the spatial allocator commits a partition, the memory interface is
reprogrammed so each sub-accelerator's operands land in the right buffers
with the right majorness: weights and outputs flow vertically in both
directions (buffers at the top for T-SA, at the bottom for B-SA), inputs
stream horizontally, and training additionally needs column-major
(transposed) copies of activations and output gradients for the backward
GEMMs (section V-C).

:func:`program_layout` builds the declarative plan the interface would
execute; it is what the paper means by "once our resource allocation
algorithm determines the row assignments ... it also reprograms the memory
interface".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.accelerator.partition import Partition
from repro.errors import PartitionError
from repro.mx import MXFormat

__all__ = ["BufferSite", "Majorness", "OperandPlacement", "LayoutProgram",
           "program_layout"]


class BufferSite(enum.Enum):
    """Physical buffer location on the chip edge."""

    TOP = "top"
    BOTTOM = "bottom"
    WEST = "west"


class Majorness(enum.Enum):
    """Storage order of a tensor in its buffer."""

    ROW_MAJOR = "row_major"
    COLUMN_MAJOR = "column_major"


@dataclass(frozen=True)
class OperandPlacement:
    """Where and how one operand class is staged.

    Attributes:
        operand: ``"input"``, ``"weight"``, or ``"output"``.
        site: Buffer location.
        majorness: Storage order.
        fmt: MX format of the stored blocks (outputs are FP32 before the
            PCU re-blocks them; the placement records the post-PCU format).
    """

    operand: str
    site: BufferSite
    majorness: Majorness
    fmt: MXFormat


@dataclass(frozen=True)
class LayoutProgram:
    """The full layout plan for one sub-accelerator and kernel.

    Attributes:
        sub_accelerator: ``"T-SA"`` or ``"B-SA"``.
        kernel: ``"inference"``, ``"labeling"``, or ``"retraining"``.
        placements: One placement per staged operand.
    """

    sub_accelerator: str
    kernel: str
    placements: tuple[OperandPlacement, ...]

    def placement(self, operand: str) -> OperandPlacement:
        """Look up the placement of one operand class."""
        for candidate in self.placements:
            if candidate.operand == operand:
                return candidate
        raise PartitionError(
            f"{self.sub_accelerator}/{self.kernel}: no operand {operand!r}"
        )


def program_layout(
    partition: Partition,
    kernel: str,
    fmt: MXFormat,
) -> LayoutProgram:
    """Build the memory-interface program for a kernel on its partition.

    Inference runs on B-SA (weight/output buffers at the bottom edge);
    labeling and retraining run on T-SA (top edge).  Retraining adds the
    column-major activation/output copies required for the backward pass.

    Raises:
        PartitionError: If the kernel's sub-accelerator has no rows.
    """
    if kernel == "inference":
        sub, edge = partition.bsa, BufferSite.BOTTOM
    elif kernel in ("labeling", "retraining"):
        sub, edge = partition.tsa, BufferSite.TOP
    else:
        raise PartitionError(
            f"unknown kernel {kernel!r}; expected inference, labeling, "
            "or retraining"
        )
    if sub.is_empty:
        raise PartitionError(
            f"{sub.name} has no rows; cannot program layout for {kernel}"
        )

    placements = [
        OperandPlacement("input", BufferSite.WEST, Majorness.ROW_MAJOR, fmt),
        OperandPlacement("weight", edge, Majorness.ROW_MAJOR, fmt),
        OperandPlacement("output", edge, Majorness.ROW_MAJOR, fmt),
    ]
    if kernel == "retraining":
        # Transposed copies for dX = dY @ W^T and dW = X^T @ dY.
        placements.append(
            OperandPlacement(
                "input_transposed", edge, Majorness.COLUMN_MAJOR, fmt
            )
        )
        placements.append(
            OperandPlacement(
                "output_transposed", edge, Majorness.COLUMN_MAJOR, fmt
            )
        )
    return LayoutProgram(
        sub_accelerator=sub.name,
        kernel=kernel,
        placements=tuple(placements),
    )
