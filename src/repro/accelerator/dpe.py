"""Dot-Product Engine (DPE) model -- paper Figure 7.

A DPE consumes two MX-compressed 16-value blocks per dot-product and drives
them through a hierarchical tree of sixteen 2-bit multipliers:

- **MX4** (2-bit mantissas): every multiplier handles one product; all 16
  products issue in parallel -> 1 cycle per block dot-product.
- **MX6** (4-bit): four 2-bit multipliers fuse per product, four products at
  a time -> 4 cycles.
- **MX9** (7-bit, padded to 8): all sixteen multipliers fuse into a single
  8-bit product -> 16 cycles.

The FP32 generator rescales the integer accumulation into floating point;
the functional result therefore equals a float dot product of the
dequantized operands (verified against :mod:`repro.mx` in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mx import MXFormat, quantize
from repro.numeric import ensure_float

__all__ = ["DPE_LANES", "cycles_per_dot", "DotProductEngine"]

#: Vector width of one DPE dot product (the MX block size).
DPE_LANES = 16

#: Width of the elementary multipliers in the hierarchical MAC tree.
_BASE_MULTIPLIER_BITS = 2


def cycles_per_dot(fmt: MXFormat) -> int:
    """Cycles one DPE needs for a 16-wide dot product in ``fmt``.

    Derived from the multiplier-fusion arithmetic of Figure 7: each product
    needs ``ceil(bits/2) ** 2`` 2-bit partial products, and the tree provides
    sixteen of them per cycle.
    """
    if fmt.block_size != DPE_LANES:
        raise ConfigurationError(
            f"DPE supports block size {DPE_LANES}, got {fmt.block_size}"
        )
    # Mantissa bits padded up to the next multiple of the base multiplier.
    segments = -(-fmt.mantissa_bits // _BASE_MULTIPLIER_BITS)
    partial_products_per_value = segments * segments
    total = partial_products_per_value * DPE_LANES
    return -(-total // DPE_LANES)  # tree throughput: 16 partials / cycle


@dataclass(frozen=True)
class DotProductEngine:
    """Functional + timing model of one DPE.

    The timing side is :meth:`cycles`; the functional side, :meth:`dot`,
    quantizes both operand blocks and accumulates in float (bit-equivalent
    to the integer datapath, see ``tests/mx/test_dot.py``).
    """

    lanes: int = DPE_LANES

    def cycles(self, fmt: MXFormat) -> int:
        """Cycles for one ``lanes``-wide dot product at ``fmt``."""
        return cycles_per_dot(fmt)

    def dot(
        self,
        a: np.ndarray,
        b: np.ndarray,
        fmt_a: MXFormat,
        fmt_b: MXFormat | None = None,
    ) -> float:
        """Functional dot product of one operand block pair.

        Accepts either policy dtype without upcasting: a float32 operand
        pair is quantized and accumulated at single precision, exactly as
        the FP32 generator hardware would.
        """
        a = ensure_float(a)
        b = ensure_float(b)
        if a.shape != (self.lanes,) or b.shape != (self.lanes,):
            raise ConfigurationError(
                f"DPE operands must be vectors of {self.lanes} values"
            )
        fmt_b = fmt_b or fmt_a
        return float(np.dot(quantize(a, fmt_a), quantize(b, fmt_b)))

    def dots_for_depth(self, depth: int) -> int:
        """Number of block dot-products to contract a ``depth``-long vector."""
        if depth < 1:
            raise ConfigurationError("contraction depth must be >= 1")
        return -(-depth // self.lanes)
