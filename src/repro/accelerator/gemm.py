"""GEMM timing on a sub-accelerator (SCALE-Sim-style analytical model).

The paper's RTL prototype is output-stationary ("While we can support both
weight and output stationary designs, we employ output stationary",
section V-A); both dataflows are modeled here:

- **Output stationary** (default): each DPE owns one output element and
  contracts a length-``K`` dot product in ``ceil(K/16)`` block dot-products
  of ``cycles_per_dot(fmt)`` cycles, over ``ceil(M/R) * ceil(N/C)`` output
  tiles, plus an ``R + C - 2`` wavefront fill/drain skew per tile.
- **Weight stationary**: a ``ceil(K/(16*R)) x ceil(N/C)`` grid of weight
  tiles stays resident while all ``M`` activation rows stream through each
  tile; per tile that costs ``M * cycles_per_dot(fmt)`` streaming cycles
  (each row contracts one 16-wide block dot against the resident weights)
  plus the same skew.  For ``M`` large relative to the tile grid the two
  dataflows converge; weight-stationary wins when weights are reused by
  many rows, output-stationary when outputs dominate.

Training executes, per forward GEMM, two additional backward GEMMs
(input gradients ``dX = dY @ W^T`` and weight gradients ``dW = X^T @ dY``),
which is also where the paper's 3x training FLOPs accounting comes from.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, PartitionError
from repro.accelerator.dpe import DPE_LANES, cycles_per_dot
from repro.accelerator.systolic import SubAccelerator
from repro.models.layers import Gemm
from repro.mx import MXFormat

__all__ = ["gemm_compute_cycles", "backward_gemms", "DATAFLOWS"]

#: Supported dataflow names.
DATAFLOWS = ("output_stationary", "weight_stationary")


def gemm_compute_cycles(
    gemm: Gemm,
    fmt: MXFormat,
    sub: SubAccelerator,
    dataflow: str = "output_stationary",
) -> int:
    """Compute-side cycles for one GEMM on one sub-accelerator.

    Raises:
        PartitionError: If the sub-accelerator has no rows.
        ConfigurationError: For an unknown dataflow.
    """
    if sub.is_empty:
        raise PartitionError(f"{sub.name} has no rows; cannot execute GEMMs")
    skew = sub.rows + sub.cols - 2
    if dataflow == "output_stationary":
        tiles_m = -(-gemm.m // sub.rows)
        tiles_n = -(-gemm.n // sub.cols)
        dots = -(-gemm.k // DPE_LANES)
        tile_cycles = dots * cycles_per_dot(fmt) + skew
        return tiles_m * tiles_n * tile_cycles
    if dataflow == "weight_stationary":
        tiles_k = -(-gemm.k // (DPE_LANES * sub.rows))
        tiles_n = -(-gemm.n // sub.cols)
        tile_cycles = gemm.m * cycles_per_dot(fmt) + skew
        return tiles_k * tiles_n * tile_cycles
    raise ConfigurationError(
        f"unknown dataflow {dataflow!r}; expected one of {DATAFLOWS}"
    )


def backward_gemms(gemm: Gemm) -> tuple[Gemm, Gemm]:
    """The two backward GEMMs induced by a forward ``M x K x N`` GEMM.

    Returns:
        ``(dX, dW)`` where ``dX`` is ``M x N x K`` (``dY @ W^T``) and ``dW``
        is ``K x M x N`` (``X^T @ dY``).
    """
    return Gemm(gemm.m, gemm.n, gemm.k), Gemm(gemm.k, gemm.m, gemm.n)
