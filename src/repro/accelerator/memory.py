"""Off-chip memory model and MX-aware byte accounting.

DaCapo attaches LPDDR5 at 204.8 GB/s (Table IV, matching the Jetson Orin for
a fair comparison) and keeps a 96 KB on-chip SRAM.  The programmable memory
interface lays tensors out as packed MX blocks, so traffic is computed from
:meth:`repro.mx.MXFormat.bytes_for`.

The timing model is a roofline: compute and (double-buffered) memory streams
overlap, so a GEMM costs ``max(compute_cycles, memory_cycles)``.  Tiles whose
working set exceeds the SRAM incur re-fetch traffic, modeled as a traffic
multiplier on the ideal stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.layers import Gemm
from repro.mx import MXFormat

__all__ = ["MemoryInterface", "gemm_traffic_bytes"]

#: DaCapo prototype memory system (paper Table IV).
DEFAULT_DRAM_BANDWIDTH = 204.8e9  # bytes/second
DEFAULT_SRAM_BYTES = 96 * 1024

#: FP32 output words drained before precision conversion.
_OUTPUT_BYTES_PER_VALUE = 4


def gemm_traffic_bytes(gemm: Gemm, fmt: MXFormat) -> int:
    """Ideal DRAM traffic for one GEMM: stream A and B once, drain C once.

    Inputs and weights move as packed MX blocks; outputs drain as FP32 before
    the precision-conversion unit re-blocks them (section V-C).
    """
    input_bytes = fmt.bytes_for(gemm.m * gemm.k)
    weight_bytes = fmt.bytes_for(gemm.k * gemm.n)
    output_bytes = gemm.m * gemm.n * _OUTPUT_BYTES_PER_VALUE
    return input_bytes + weight_bytes + output_bytes


@dataclass(frozen=True)
class MemoryInterface:
    """DRAM bandwidth + SRAM capacity model.

    Attributes:
        dram_bandwidth: Sustained off-chip bandwidth in bytes/second.
        sram_bytes: On-chip buffer capacity shared by the two SAs.
    """

    dram_bandwidth: float = DEFAULT_DRAM_BANDWIDTH
    sram_bytes: int = DEFAULT_SRAM_BYTES

    def __post_init__(self) -> None:
        if self.dram_bandwidth <= 0:
            raise ConfigurationError("dram_bandwidth must be positive")
        if self.sram_bytes <= 0:
            raise ConfigurationError("sram_bytes must be positive")

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` at full bandwidth."""
        if num_bytes < 0:
            raise ConfigurationError("byte count must be non-negative")
        return num_bytes / self.dram_bandwidth

    def transfer_cycles(self, num_bytes: float, frequency_hz: float) -> float:
        """The same transfer expressed in accelerator cycles."""
        return self.transfer_seconds(num_bytes) * frequency_hz

    def refetch_factor(self, gemm: Gemm, fmt: MXFormat) -> float:
        """Traffic multiplier when a GEMM's working set overflows the SRAM.

        With weights resident, streaming A row-panels needs the B operand
        (weights) on chip; if the packed weight panel exceeds half the SRAM
        (the other half double-buffers activations), the weight matrix is
        re-streamed once per additional panel-sized chunk.
        """
        weight_bytes = fmt.bytes_for(gemm.k * gemm.n)
        budget = self.sram_bytes / 2
        if weight_bytes <= budget:
            return 1.0
        return float(-(-weight_bytes // budget))

    def gemm_memory_cycles(
        self, gemm: Gemm, fmt: MXFormat, frequency_hz: float
    ) -> float:
        """Memory-side cycles for one GEMM, re-fetch traffic included."""
        ideal = gemm_traffic_bytes(gemm, fmt)
        weight_bytes = fmt.bytes_for(gemm.k * gemm.n)
        extra = (self.refetch_factor(gemm, fmt) - 1.0) * weight_bytes
        return self.transfer_cycles(ideal + extra, frequency_hz)
