"""Array-scaling and chiplet models (paper section VII-A).

The prototype is a deliberately tiny 16x16 chip; the paper notes DaCapo
"could scale the number of DPEs to larger configurations (e.g., 32x32) or
multiple DaCapo chiplets could be packaged together if there is a need".
This module provides both scaling paths:

- :func:`scaled_array` -- a monolithic RxC configuration, with power/area
  scaled from the Table IV component model (DPE array scales with the DPE
  count; SRAM, vector units, and conversion scale with rows; the memory
  interface is shared).
- :class:`ChipletPackage` -- N chips behind one package; kernel throughput
  scales with chip count derated by an inter-chiplet coordination factor,
  power scales linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.power import Component, PowerModel, component_table
from repro.accelerator.systolic import SystolicArray
from repro.errors import ConfigurationError

__all__ = ["scaled_array", "scaled_power_model", "ChipletPackage"]

_BASE_ROWS = 16
_BASE_COLS = 16


def scaled_array(
    rows: int, cols: int, frequency_hz: float = 500e6
) -> SystolicArray:
    """A monolithic DaCapo configuration of ``rows x cols`` DPEs."""
    return SystolicArray(rows=rows, cols=cols, frequency_hz=frequency_hz)


def scaled_power_model(rows: int, cols: int) -> PowerModel:
    """Table IV's component model scaled to a ``rows x cols`` array.

    The DPE array's power/area scale with the DPE count; SRAM, vector
    units, and precision conversion scale with the row count (per-row
    buffering and drain bandwidth); the memory interface is shared.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError("array dimensions must be >= 1")
    dpe_scale = (rows * cols) / (_BASE_ROWS * _BASE_COLS)
    row_scale = rows / _BASE_ROWS
    scaled: list[Component] = []
    for component in component_table():
        if component.name == "dpe_array":
            factor = dpe_scale
        elif component.name == "memory_interface":
            factor = 1.0
        else:
            factor = row_scale
        scaled.append(
            Component(
                component.name,
                power_w=component.power_w * factor,
                area_mm2=component.area_mm2 * factor,
            )
        )
    return PowerModel(components=tuple(scaled))


@dataclass(frozen=True)
class ChipletPackage:
    """Several DaCapo chips packaged together.

    Attributes:
        chips: Number of chiplets.
        coordination_efficiency: Throughput retained per chip when work is
            spread across the package (inter-chiplet synchronization and
            data distribution overhead).
    """

    chips: int
    coordination_efficiency: float = 0.9

    def __post_init__(self) -> None:
        if self.chips < 1:
            raise ConfigurationError("package needs at least one chip")
        if not 0 < self.coordination_efficiency <= 1:
            raise ConfigurationError(
                "coordination efficiency must be in (0, 1]"
            )

    def throughput_scale(self) -> float:
        """Aggregate throughput relative to a single chip."""
        if self.chips == 1:
            return 1.0
        return self.chips * self.coordination_efficiency

    def power_w(self) -> float:
        """Package power (chips are replicated, including their leakage)."""
        return self.chips * PowerModel().total_power_w

    def area_mm2(self) -> float:
        """Total silicon area across the package."""
        return self.chips * PowerModel().total_area_mm2
