"""Power, area, and energy model of the DaCapo chip (paper Table IV).

The paper synthesizes the RTL in TSMC 28nm with Synopsys DC + CACTI and
reports 2.501 mm^2 and 0.236 W at 500 MHz.  We reproduce those totals with a
per-component breakdown in the proportions typical for this class of design
(MAC array dominant, SRAM second); the component split is our modeling
choice, the totals are the paper's.

Energy for a run is ``static_power * wall_time + dynamic_power * busy_time``
per component, which the simulator aggregates from utilization traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "DACAPO_AREA_MM2",
    "DACAPO_POWER_W",
    "Component",
    "PowerModel",
    "component_table",
]

#: Table IV totals.
DACAPO_POWER_W = 0.236
DACAPO_AREA_MM2 = 2.501
DACAPO_FREQUENCY_HZ = 500e6
DACAPO_TECHNOLOGY_NM = 28

#: Fraction of total power that is leakage (static) at 28nm.
_STATIC_FRACTION = 0.25


@dataclass(frozen=True)
class Component:
    """One chip component's share of power and area.

    Attributes:
        name: Component name (e.g. ``"dpe_array"``).
        power_w: Peak total power (dynamic at full utilization + static).
        area_mm2: Silicon area.
    """

    name: str
    power_w: float
    area_mm2: float

    @property
    def static_power_w(self) -> float:
        """Leakage power, always burning."""
        return self.power_w * _STATIC_FRACTION

    @property
    def dynamic_power_w(self) -> float:
        """Switching power at 100% utilization."""
        return self.power_w * (1.0 - _STATIC_FRACTION)


def component_table() -> tuple[Component, ...]:
    """Per-component breakdown summing exactly to the Table IV totals."""
    return (
        Component("dpe_array", power_w=0.150, area_mm2=1.600),
        Component("sram_96kb", power_w=0.040, area_mm2=0.450),
        Component("vector_units", power_w=0.020, area_mm2=0.200),
        Component("precision_conversion", power_w=0.012, area_mm2=0.120),
        Component("memory_interface", power_w=0.014, area_mm2=0.131),
    )


@dataclass(frozen=True)
class PowerModel:
    """Chip-level power/energy accounting.

    Attributes:
        components: The component breakdown (defaults to Table IV).
    """

    components: tuple[Component, ...] = component_table()

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("power model needs at least one component")

    @property
    def total_power_w(self) -> float:
        """Peak chip power (all components fully utilized)."""
        return sum(c.power_w for c in self.components)

    @property
    def total_area_mm2(self) -> float:
        """Total chip area."""
        return sum(c.area_mm2 for c in self.components)

    @property
    def static_power_w(self) -> float:
        """Chip leakage power."""
        return sum(c.static_power_w for c in self.components)

    @property
    def dynamic_power_w(self) -> float:
        """Chip switching power at full utilization."""
        return sum(c.dynamic_power_w for c in self.components)

    def average_power_w(self, utilization: float) -> float:
        """Average power at a given array utilization in ``[0, 1]``."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        return self.static_power_w + self.dynamic_power_w * utilization

    def energy_j(self, wall_time_s: float, busy_time_s: float) -> float:
        """Energy for a run with the array busy ``busy_time_s`` seconds.

        Raises:
            ConfigurationError: If ``busy_time_s`` exceeds ``wall_time_s``.
        """
        if wall_time_s < 0 or busy_time_s < 0:
            raise ConfigurationError("times must be non-negative")
        if busy_time_s > wall_time_s * (1 + 1e-9):
            raise ConfigurationError("busy time cannot exceed wall time")
        return (
            self.static_power_w * wall_time_s
            + self.dynamic_power_w * busy_time_s
        )
