"""Precision-Conversion Unit (PCU) model -- paper section V-C.

Each sub-accelerator owns a PCU that groups the FP32 outputs drained from
the array into MX blocks of 16.  Inference and labeling need only the
default row-major conversion; retraining additionally produces a
column-major (transposed) copy for the gradient/weight-update GEMMs, which
doubles the conversion work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mx import MXFormat

__all__ = ["PrecisionConversionUnit"]

#: Values converted per cycle: one MX block per cycle through the max-tree +
#: shifter pipeline (Figure 6 datapath).
_VALUES_PER_CYCLE = 16


@dataclass(frozen=True)
class PrecisionConversionUnit:
    """Throughput model of one PCU.

    Attributes:
        values_per_cycle: Conversion throughput (one block per cycle).
    """

    values_per_cycle: int = _VALUES_PER_CYCLE

    def __post_init__(self) -> None:
        if self.values_per_cycle < 1:
            raise ConfigurationError("values_per_cycle must be >= 1")

    def cycles(
        self, num_values: int, fmt: MXFormat, for_training: bool = False
    ) -> int:
        """Cycles to convert ``num_values`` FP32 outputs into ``fmt`` blocks.

        Args:
            num_values: FP32 values drained from the sub-accelerator.
            fmt: Target MX format (conversion cost is format-independent,
                 the argument documents intent and guards block size).
            for_training: When True the column-major copy for transposed
                 operands is produced as well, doubling the work.
        """
        if num_values < 0:
            raise ConfigurationError("num_values must be non-negative")
        if fmt.block_size != self.values_per_cycle:
            raise ConfigurationError(
                "PCU block width must match the MX block size"
            )
        passes = 2 if for_training else 1
        return passes * -(-num_values // self.values_per_cycle)
