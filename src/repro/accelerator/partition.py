"""Spatial partition descriptor: the T-SA / B-SA row split.

This is the object the offline spatial allocator produces (paper workflow
step 3) and the runtime scheduler consumes: B-SA rows are pinned to
inference; T-SA rows time-share retraining and labeling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.accelerator.systolic import SubAccelerator, SystolicArray

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """A committed two-way split of the array.

    Attributes:
        array: The physical array being partitioned.
        rows_tsa: Rows assigned to the Top Sub-Accelerator (``Rtsa``).
    """

    array: SystolicArray
    rows_tsa: int

    def __post_init__(self) -> None:
        if not 0 <= self.rows_tsa <= self.array.rows:
            raise PartitionError(
                f"rows_tsa={self.rows_tsa} outside [0, {self.array.rows}]"
            )

    @property
    def rows_bsa(self) -> int:
        """Rows assigned to the Bottom Sub-Accelerator (``Rbsa``)."""
        return self.array.rows - self.rows_tsa

    @property
    def tsa(self) -> SubAccelerator:
        """The retraining/labeling sub-accelerator."""
        return SubAccelerator(
            "T-SA", self.rows_tsa, self.array.cols, self.array.frequency_hz
        )

    @property
    def bsa(self) -> SubAccelerator:
        """The inference sub-accelerator."""
        return SubAccelerator(
            "B-SA", self.rows_bsa, self.array.cols, self.array.frequency_hz
        )

    def describe(self) -> str:
        """Short human-readable split description."""
        return (
            f"T-SA {self.rows_tsa} rows / B-SA {self.rows_bsa} rows "
            f"of {self.array.rows}x{self.array.cols}"
        )
