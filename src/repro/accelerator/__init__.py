"""The DaCapo accelerator model (paper sections IV and V).

A 16x16 array of Dot-Product Engines (DPEs), partitionable row-wise into a
Top Sub-Accelerator (T-SA, retraining + labeling) and a Bottom Sub-
Accelerator (B-SA, inference).  Each DPE executes 16-wide dot products over
MX-compressed operands; MX4/MX6/MX9 serialize over 1/4/16 cycles through the
hierarchical 2-bit multiplier tree (Figure 7).

The model is analytical at the SCALE-Sim level (the abstraction the paper's
own system simulator uses): output-stationary GEMM tiling for compute
cycles, a DRAM bandwidth roofline for memory cycles, and a per-component
power/area model matching Table IV.
"""

from repro.accelerator.dpe import DPE_LANES, DotProductEngine, cycles_per_dot
from repro.accelerator.systolic import SystolicArray, SubAccelerator
from repro.accelerator.partition import Partition
from repro.accelerator.memory import MemoryInterface
from repro.accelerator.conversion import PrecisionConversionUnit
from repro.accelerator.gemm import backward_gemms, gemm_compute_cycles
from repro.accelerator.layout import LayoutProgram, program_layout
from repro.accelerator.power import (
    DACAPO_AREA_MM2,
    DACAPO_POWER_W,
    PowerModel,
    component_table,
)
from repro.accelerator.scaling import (
    ChipletPackage,
    scaled_array,
    scaled_power_model,
)
from repro.accelerator.simulator import AcceleratorSimulator, clear_timing_caches

__all__ = [
    "AcceleratorSimulator",
    "clear_timing_caches",
    "DACAPO_AREA_MM2",
    "DACAPO_POWER_W",
    "DPE_LANES",
    "DotProductEngine",
    "MemoryInterface",
    "Partition",
    "PowerModel",
    "PrecisionConversionUnit",
    "SubAccelerator",
    "SystolicArray",
    "ChipletPackage",
    "backward_gemms",
    "component_table",
    "cycles_per_dot",
    "gemm_compute_cycles",
    "LayoutProgram",
    "program_layout",
    "scaled_array",
    "scaled_power_model",
]
