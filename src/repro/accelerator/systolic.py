"""Systolic-array geometry and its row-granular sub-accelerators.

The DaCapo prototype is a 16x16 array of DPEs at 500 MHz (paper Table IV).
Rows can be grouped into two stacked sub-accelerators (T-SA on top, B-SA on
the bottom); weights and outputs flow vertically in both directions so the
two partitions run independent GEMMs without interference (section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError

__all__ = ["SystolicArray", "SubAccelerator"]

#: DaCapo prototype geometry (paper section VII-A).
DEFAULT_ROWS = 16
DEFAULT_COLS = 16
DEFAULT_FREQUENCY_HZ = 500e6


@dataclass(frozen=True)
class SubAccelerator:
    """A contiguous group of DPE rows operating as one systolic array.

    Attributes:
        name: ``"T-SA"`` or ``"B-SA"`` (or ``"FULL"`` when unpartitioned).
        rows: DPE rows assigned to this sub-accelerator.
        cols: DPE columns (always the full array width).
        frequency_hz: Clock frequency.
    """

    name: str
    rows: int
    cols: int = DEFAULT_COLS
    frequency_hz: float = DEFAULT_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.rows < 0 or self.cols < 1:
            raise PartitionError(
                f"{self.name}: invalid geometry {self.rows}x{self.cols}"
            )
        if self.frequency_hz <= 0:
            raise PartitionError(f"{self.name}: frequency must be positive")

    @property
    def num_dpes(self) -> int:
        """DPEs available to this sub-accelerator."""
        return self.rows * self.cols

    @property
    def is_empty(self) -> bool:
        """True when no rows are assigned (the SA cannot compute)."""
        return self.rows == 0

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / self.frequency_hz


@dataclass(frozen=True)
class SystolicArray:
    """The full DPE array, before partitioning.

    Attributes:
        rows / cols: Array geometry (prototype: 16x16).
        frequency_hz: Clock (prototype: 500 MHz).
    """

    rows: int = DEFAULT_ROWS
    cols: int = DEFAULT_COLS
    frequency_hz: float = DEFAULT_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise PartitionError(
                f"invalid array geometry {self.rows}x{self.cols}"
            )
        if self.frequency_hz <= 0:
            raise PartitionError("frequency must be positive")

    @property
    def num_dpes(self) -> int:
        """Total DPEs in the array."""
        return self.rows * self.cols

    def full(self) -> SubAccelerator:
        """The whole array viewed as a single sub-accelerator."""
        return SubAccelerator(
            "FULL", self.rows, self.cols, self.frequency_hz
        )

    def split(self, rows_tsa: int) -> tuple[SubAccelerator, SubAccelerator]:
        """Partition into (T-SA, B-SA) with ``rows_tsa`` rows on top.

        Raises:
            PartitionError: If ``rows_tsa`` is outside ``[0, rows]``.
        """
        if not 0 <= rows_tsa <= self.rows:
            raise PartitionError(
                f"rows_tsa must be within [0, {self.rows}], got {rows_tsa}"
            )
        tsa = SubAccelerator("T-SA", rows_tsa, self.cols, self.frequency_hz)
        bsa = SubAccelerator(
            "B-SA", self.rows - rows_tsa, self.cols, self.frequency_hz
        )
        return tsa, bsa
