"""Accelerator simulator facade: model-level timing on a sub-accelerator.

Combines the GEMM compute model, the DRAM roofline, and the precision-
conversion unit into per-model forward/training timings.  This is the layer
the performance estimator (paper workflow step 2) queries.

Modeling notes:

- Compute and memory streams are double-buffered, so a GEMM costs
  ``max(compute, memory)`` cycles; the PCU is pipelined with the output
  drain and folded into the same max.
- Non-GEMM work (normalization, activations, pooling, softmax) runs on the
  vector units concurrently with the array; a fixed overhead factor covers
  the fraction that does not overlap.
- Training runs each forward GEMM plus its two backward GEMMs at the
  training precision, with the PCU producing the transposed copies
  (section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.conversion import PrecisionConversionUnit
from repro.accelerator.gemm import backward_gemms, gemm_compute_cycles
from repro.accelerator.memory import MemoryInterface
from repro.accelerator.systolic import SubAccelerator
from repro.errors import PartitionError
from repro.models.graph import ModelGraph
from repro.models.layers import Gemm
from repro.mx import MXFormat

__all__ = ["AcceleratorSimulator", "Timing", "clear_timing_caches"]

#: Non-overlapped vector-unit work as a fraction of array cycles.
VECTOR_OVERHEAD = 0.05

#: Timing memos.  Every key component (simulator, GEMM shape, MX format,
#: sub-accelerator, model graph) is a frozen dataclass, so keys capture the
#: full simulator configuration -- two simulators with different memory/PCU/
#: dataflow settings never share entries.  Timings are pure functions of
#: their key, so entries stay valid for the life of the process.
_GEMM_TIMING_CACHE: dict = {}
_MODEL_TIMING_CACHE: dict = {}


def clear_timing_caches() -> None:
    """Drop all memoized timings (for tests and benchmarks)."""
    _GEMM_TIMING_CACHE.clear()
    _MODEL_TIMING_CACHE.clear()


@dataclass(frozen=True)
class Timing:
    """Timing of a unit of work on a sub-accelerator.

    Attributes:
        cycles: Bottleneck (wall-clock) cycles.
        compute_cycles: Array-busy cycles (drives dynamic energy).
        memory_cycles: DRAM-stream cycles.
    """

    cycles: float
    compute_cycles: float
    memory_cycles: float

    @property
    def utilization(self) -> float:
        """Array busy fraction over the bottleneck time."""
        if self.cycles == 0:
            return 0.0
        return min(1.0, self.compute_cycles / self.cycles)

    def __add__(self, other: "Timing") -> "Timing":
        return Timing(
            self.cycles + other.cycles,
            self.compute_cycles + other.compute_cycles,
            self.memory_cycles + other.memory_cycles,
        )


_ZERO = Timing(0.0, 0.0, 0.0)


@dataclass(frozen=True)
class AcceleratorSimulator:
    """Timing queries against one memory system and PCU configuration.

    Attributes:
        memory: Off-chip memory model.
        pcu: Precision-conversion unit model.
        vector_overhead: Non-overlapped vector-unit cycle fraction.
    """

    memory: MemoryInterface = MemoryInterface()
    pcu: PrecisionConversionUnit = PrecisionConversionUnit()
    vector_overhead: float = VECTOR_OVERHEAD
    dataflow: str = "output_stationary"

    def gemm_timing(
        self,
        gemm: Gemm,
        fmt: MXFormat,
        sub: SubAccelerator,
        for_training: bool = False,
    ) -> Timing:
        """Roofline timing of a single GEMM (memoized)."""
        key = (self, gemm, fmt, sub, for_training)
        timing = _GEMM_TIMING_CACHE.get(key)
        if timing is None:
            compute = gemm_compute_cycles(gemm, fmt, sub, self.dataflow)
            mem = self.memory.gemm_memory_cycles(gemm, fmt, sub.frequency_hz)
            convert = self.pcu.cycles(gemm.m * gemm.n, fmt, for_training)
            bottleneck = max(compute, mem, convert)
            timing = Timing(bottleneck, compute, mem)
            _GEMM_TIMING_CACHE[key] = timing
        return timing

    def forward_timing(
        self,
        model: ModelGraph,
        fmt: MXFormat,
        sub: SubAccelerator,
        batch: int = 1,
    ) -> Timing:
        """Timing of one forward pass of ``model`` for a batch (memoized)."""
        if sub.is_empty:
            raise PartitionError(f"{sub.name} has no rows assigned")
        key = (self, model, fmt, sub, batch, False)
        timing = _MODEL_TIMING_CACHE.get(key)
        if timing is None:
            total = _ZERO
            for gemm in model.gemms(batch):
                total = total + self.gemm_timing(gemm, fmt, sub)
            overhead = total.cycles * self.vector_overhead
            timing = Timing(
                total.cycles + overhead,
                total.compute_cycles,
                total.memory_cycles,
            )
            _MODEL_TIMING_CACHE[key] = timing
        return timing

    def training_timing(
        self,
        model: ModelGraph,
        fmt: MXFormat,
        sub: SubAccelerator,
        batch: int,
    ) -> Timing:
        """Timing of one training step, forward + both backward GEMMs (memoized)."""
        if sub.is_empty:
            raise PartitionError(f"{sub.name} has no rows assigned")
        key = (self, model, fmt, sub, batch, True)
        timing = _MODEL_TIMING_CACHE.get(key)
        if timing is None:
            total = _ZERO
            for gemm in model.gemms(batch):
                total = total + self.gemm_timing(
                    gemm, fmt, sub, for_training=True
                )
                for grad in backward_gemms(gemm):
                    total = total + self.gemm_timing(
                        grad, fmt, sub, for_training=True
                    )
            overhead = total.cycles * self.vector_overhead
            timing = Timing(
                total.cycles + overhead,
                total.compute_cycles,
                total.memory_cycles,
            )
            _MODEL_TIMING_CACHE[key] = timing
        return timing

    def forward_latency_s(
        self,
        model: ModelGraph,
        fmt: MXFormat,
        sub: SubAccelerator,
        batch: int = 1,
    ) -> float:
        """Seconds per forward pass of a batch."""
        return sub.seconds(self.forward_timing(model, fmt, sub, batch).cycles)

    def inference_throughput(
        self,
        model: ModelGraph,
        fmt: MXFormat,
        sub: SubAccelerator,
        batch: int = 1,
    ) -> float:
        """Sustained forward samples/second at the given batch size."""
        latency = self.forward_latency_s(model, fmt, sub, batch)
        return batch / latency

    def training_throughput(
        self,
        model: ModelGraph,
        fmt: MXFormat,
        sub: SubAccelerator,
        batch: int,
    ) -> float:
        """Sustained training samples/second at the given batch size."""
        timing = self.training_timing(model, fmt, sub, batch)
        return batch / sub.seconds(timing.cycles)

    def layer_report(
        self,
        model: ModelGraph,
        fmt: MXFormat,
        sub: SubAccelerator,
        batch: int = 1,
    ) -> list[dict]:
        """Per-layer timing breakdown of one forward pass.

        Returns one row per compute-bearing layer with its GEMM count,
        bottleneck cycles, and whether it is compute- or memory-bound --
        the visibility a performance engineer needs to size partitions.
        """
        if sub.is_empty:
            raise PartitionError(f"{sub.name} has no rows assigned")
        rows: list[dict] = []
        for layer in model.layers:
            gemms = layer.gemms(batch)
            if not gemms:
                continue
            total = _ZERO
            for gemm in gemms:
                total = total + self.gemm_timing(gemm, fmt, sub)
            rows.append(
                {
                    "layer": layer.name,
                    "gemms": len(gemms),
                    "macs": layer.macs(batch),
                    "cycles": total.cycles,
                    "bound": (
                        "compute"
                        if total.compute_cycles >= total.memory_cycles
                        else "memory"
                    ),
                    "utilization": total.utilization,
                }
            )
        return rows
