"""The resident fleet service: a supervised daemon over live camera streams.

Everything below :mod:`repro.sweep` is *batch*: a sweep starts, finishes,
and emits a document.  A production fleet is a **resident process** -- a
daemon that owns a pool of camera streams, admits new scenarios while
running, retires finished ones, and keeps running across faults.  This
package is that daemon, in four pieces:

- :mod:`repro.service.pacing` -- a real-time frame clock: windows of
  stream time *arrive* at stream rate (scaled by a ``--speedup`` factor so
  tests run fast) instead of as fast as numpy can generate them, and every
  stream tracks its deadline slack per window.
- :mod:`repro.service.degrade` -- the explicit degradation ladder invoked
  when window work misses its real-time deadline: skip the retrain window,
  then serve the stale student, then shed frames with per-stream drop
  accounting.  Every transition is journaled and reported; none is an
  exception.
- :mod:`repro.service.session` -- the long-lived session journal: the
  :class:`~repro.exec.scheduler.SweepJournal` fsync/torn-tail machinery
  extended to a multi-record stream (admit / window / degrade / retire /
  event), so SIGKILLing the daemon and restarting it resumes every
  admitted stream from its last completed window with bit-identical
  results for completed windows.
- :mod:`repro.service.control` + :mod:`repro.service.daemon` -- the
  supervisor loop dispatching per-window work through the existing
  :class:`~repro.exec.scheduler.Scheduler` (any backend, ``queue:N``
  included), plus a stdlib-only HTTP/JSON control plane exposing live
  state and admit/retire/drain commands.

CLI: ``python -m repro serve <spec> [--backend queue:N] [--control PORT]
[--speedup X]`` -- see the README "Fleet service" section.
"""

from repro.service.daemon import FleetService, ServiceConfig, StreamState
from repro.service.degrade import (
    DegradationLadder,
    DegradeLevel,
    Transition,
)
from repro.service.pacing import FrameClock, StreamPacer
from repro.service.session import (
    SESSION_VERSION,
    SessionJournal,
    session_fingerprint,
    session_path,
)

__all__ = [
    "DegradationLadder",
    "DegradeLevel",
    "FleetService",
    "FrameClock",
    "SESSION_VERSION",
    "ServiceConfig",
    "SessionJournal",
    "StreamPacer",
    "StreamState",
    "Transition",
    "session_fingerprint",
    "session_path",
]
