"""Real-time window pacing: frames arrive at stream rate, not numpy rate.

A camera does not deliver its footage as fast as the simulator can
generate it -- a 60-second window of 30 fps video takes 60 seconds to
*exist*.  The batch layers ignore that (a sweep consumes stream time as
fast as compute allows); the resident service must not, because the whole
continuous-learning question -- can retraining keep up with the camera? --
only exists against a real clock.

:class:`FrameClock` is the service-wide clock: ``monotonic``-based, with a
``speedup`` factor so a 20-minute scenario can be paced through in
seconds under test.  ``speedup=0`` is *eager* mode: no real-time pacing at
all -- a stream's next window becomes available the moment the previous
one completes.  Eager mode is how the crash-recovery harness gets fully
deterministic sessions (no wall-clock-dependent degradation decisions);
it is also the natural "reprocess this archive footage" shape.

:class:`StreamPacer` is one stream's view of that clock: window ``i``
(stream time ``[i*W, (i+1)*W)``) has fully *arrived* once the wall clock
reaches ``epoch + (i+1)*W/speedup``, and its *deadline* is the arrival of
window ``i+1`` -- the work for a window must complete before the next
window lands, or the stream is falling behind the camera and the
degradation ladder (:mod:`repro.service.degrade`) takes over.  ``slack``
(deadline minus now) is tracked per stream and exported on the control
plane, so an operator can see headroom shrink before windows start
missing.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["FrameClock", "StreamPacer", "window_count", "window_span"]


def window_count(duration_s: float, window_s: float) -> int:
    """How many windows a stream of ``duration_s`` decomposes into.

    The final window may be short (``duration_s`` need not divide evenly);
    a stream shorter than one window is still one window.
    """
    if duration_s <= 0 or window_s <= 0:
        raise ConfigurationError(
            "stream duration and window length must be positive, got "
            f"duration={duration_s!r} window={window_s!r}"
        )
    return max(1, math.ceil(duration_s / window_s - 1e-9))


def window_span(
    index: int, duration_s: float, window_s: float
) -> tuple[float, float]:
    """The ``[start, end)`` stream-time interval of window ``index``."""
    start = index * window_s
    end = min((index + 1) * window_s, duration_s)
    return start, end


class FrameClock:
    """The service's monotonic clock with a stream-time speedup factor.

    Args:
        speedup: Stream seconds per wall second.  ``1.0`` is real time
            (a 60 s window arrives over 60 s of wall clock); ``60.0``
            paces a minute of stream per wall second (tests, CI);
            ``0`` disables pacing entirely (*eager* mode -- windows are
            released by completion, not by the clock, and deadlines do
            not exist).
        clock: Injectable time source (seconds, monotonic).  Tests drive
            the pacing and degradation machinery deterministically by
            substituting a manual clock.
    """

    def __init__(
        self,
        speedup: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if speedup < 0:
            raise ConfigurationError(
                f"speedup must be >= 0 (0 = eager), got {speedup!r}"
            )
        self.speedup = speedup
        self._clock = clock

    @property
    def eager(self) -> bool:
        """True when real-time pacing is disabled (``speedup == 0``)."""
        return self.speedup == 0

    def now(self) -> float:
        """Current wall time on the injected clock."""
        return self._clock()

    def wall_per_stream_s(self, stream_s: float) -> float:
        """Wall seconds it takes ``stream_s`` stream seconds to arrive."""
        if self.eager:
            return 0.0
        return stream_s / self.speedup

    def pacer(
        self, duration_s: float, window_s: float, epoch: float | None = None
    ) -> "StreamPacer":
        """A per-stream pacer admitted at ``epoch`` (default: now)."""
        return StreamPacer(
            clock=self,
            duration_s=float(duration_s),
            window_s=float(window_s),
            epoch=self.now() if epoch is None else epoch,
        )


@dataclass
class StreamPacer:
    """One admitted stream's arrival schedule and deadline slack.

    Attributes:
        clock: The shared :class:`FrameClock`.
        duration_s: Total stream length (stream seconds).
        window_s: Window length (stream seconds).
        epoch: Wall time the stream was admitted (its window 0 starts
            arriving immediately after).
        last_slack_s: Deadline slack observed at the most recent window
            completion (positive = finished with headroom, negative =
            late).  ``None`` until the first window completes; stays
            ``None`` forever in eager mode.
    """

    clock: FrameClock
    duration_s: float
    window_s: float
    epoch: float
    last_slack_s: float | None = field(default=None)

    @property
    def windows(self) -> int:
        """Total windows this stream decomposes into."""
        return window_count(self.duration_s, self.window_s)

    def span(self, index: int) -> tuple[float, float]:
        """The ``[start, end)`` stream-time interval of window ``index``."""
        return window_span(index, self.duration_s, self.window_s)

    def arrival(self, index: int) -> float:
        """Wall time window ``index`` has fully arrived (eager: epoch)."""
        if self.clock.eager:
            return self.epoch
        _, end = self.span(index)
        return self.epoch + self.clock.wall_per_stream_s(end)

    def deadline(self, index: int) -> float:
        """Wall time window ``index``'s work must complete by.

        The deadline is the *next* window's arrival: once window ``i+1``
        has landed while ``i`` is still computing, the stream is behind
        the camera.  The final window gets one more window-length of wall
        time (there is no successor to collide with).  Eager mode has no
        deadlines (``inf``).
        """
        if self.clock.eager:
            return float("inf")
        return self.arrival(index) + self.clock.wall_per_stream_s(
            self.window_s
        )

    def due(self, index: int, now: float) -> bool:
        """Whether window ``index`` has arrived by wall time ``now``."""
        if index >= self.windows:
            return False
        if self.clock.eager:
            return True
        return now >= self.arrival(index)

    def slack(self, index: int, now: float) -> float:
        """Wall seconds of headroom before window ``index``'s deadline."""
        return self.deadline(index) - now

    def record_completion(self, index: int, now: float) -> float | None:
        """Note window ``index`` completing at ``now``; returns its slack.

        Eager mode returns ``None`` -- without deadlines, slack is
        meaningless and must not leak timing noise into journals.
        """
        if self.clock.eager:
            return None
        slack = self.slack(index, now)
        self.last_slack_s = slack
        return slack
