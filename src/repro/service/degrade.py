"""The degradation ladder: what to shed, deliberately, when behind.

When compute is oversubscribed -- the real-time deadline for a window is
shorter than the retrain/label work it needs -- *something* must give.
The failure modes of a naive service are crashing (an exception
propagates) or silently stalling (an unbounded backlog grows while the
camera keeps transmitting).  The ladder makes the shedding explicit,
ordered, and accounted:

====================  =====================================================
Level                 Meaning
====================  =====================================================
``NORMAL``            Every arriving window is dispatched for fresh
                      compute (retrain + label + inference).
``SKIP_RETRAIN``      One deadline missed: the arriving window's
                      retrain/label work is *deferred* -- not dispatched
                      while the late window is still in flight.  The
                      deferred window is still computed fresh (late) once
                      the stream catches up; only its timeliness is
                      sacrificed.
``STALE_STUDENT``     Sustained misses: arriving windows are *served by
                      the stale student* -- no compute is dispatched at
                      all; the window is journaled with the accuracy of
                      the last fresh window (exactly what a deployed
                      model that stopped retraining delivers).
``SHED``              The backlog is still growing even with no new
                      compute admitted: arriving windows are *shed* --
                      their frames are counted dropped (per-stream drop
                      accounting), nothing is served, nothing is
                      dispatched.
====================  =====================================================

Escalation is one level per missed deadline (a window arriving while an
earlier window of the same stream is incomplete); recovery is one level
per caught-up completion (a fresh window completing with no remaining
backlog).  Both directions are clamped, every transition is returned as a
:class:`Transition` for the session journal and the control plane, and no
path raises -- the ladder's contract is that oversubscription degrades
output quality, never liveness.

The ladder is pure bookkeeping over events fed to it by the supervisor
(:mod:`repro.service.daemon`), so its behavior under any miss/hit
sequence is deterministic and unit-testable without a clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = ["DegradationLadder", "DegradeLevel", "Transition"]


class DegradeLevel(IntEnum):
    """Ladder rungs, in escalation order."""

    NORMAL = 0
    SKIP_RETRAIN = 1
    STALE_STUDENT = 2
    SHED = 3


#: What the supervisor does with an arriving window at each level.
LEVEL_ACTIONS: dict[DegradeLevel, str] = {
    DegradeLevel.NORMAL: "dispatch",
    DegradeLevel.SKIP_RETRAIN: "defer",
    DegradeLevel.STALE_STUDENT: "stale",
    DegradeLevel.SHED: "shed",
}


@dataclass(frozen=True)
class Transition:
    """One journaled ladder transition.

    Attributes:
        stream: The stream key the transition belongs to.
        window: The window index whose arrival/completion triggered it.
        from_level: Level before.
        to_level: Level after.
        reason: ``"deadline-miss"``, ``"caught-up"``, or
            ``"dispatch-failed"`` (the scheduler exhausted its retries for
            a window -- an infrastructure failure absorbed as degradation
            rather than raised).
    """

    stream: str
    window: int
    from_level: DegradeLevel
    to_level: DegradeLevel
    reason: str

    def as_record(self) -> dict:
        """The JSON shape the session journal and control plane carry."""
        return {
            "stream": self.stream,
            "window": self.window,
            "from": self.from_level.name,
            "to": self.to_level.name,
            "reason": self.reason,
        }


class DegradationLadder:
    """Per-stream degradation state machine (see the module docstring).

    Args:
        stream: Stream key (stamped into transitions).
        enabled: ``False`` pins the ladder at ``NORMAL`` -- misses are
            tolerated as plain lateness (pure backpressure, every window
            still computed fresh).  The deterministic crash-recovery
            harness runs this way.
    """

    def __init__(self, stream: str, enabled: bool = True) -> None:
        self.stream = stream
        self.enabled = enabled
        self.level = DegradeLevel.NORMAL
        self.misses = 0
        self.recoveries = 0

    def action(self) -> str:
        """The supervisor's move for the next arriving window."""
        return LEVEL_ACTIONS[self.level]

    def _shift(
        self, window: int, to: DegradeLevel, reason: str
    ) -> Transition | None:
        if to == self.level:
            return None
        transition = Transition(
            stream=self.stream,
            window=window,
            from_level=self.level,
            to_level=to,
            reason=reason,
        )
        self.level = to
        return transition

    def on_miss(
        self, window: int, reason: str = "deadline-miss"
    ) -> Transition | None:
        """A window arrived while an earlier one was incomplete.

        Escalates one level (clamped at ``SHED``).  Returns the
        transition to journal, or ``None`` when disabled or already at
        the top of the ladder.
        """
        self.misses += 1
        if not self.enabled:
            return None
        to = DegradeLevel(min(self.level + 1, DegradeLevel.SHED))
        return self._shift(window, to, reason)

    def on_recover(self, window: int) -> Transition | None:
        """A fresh window completed with no backlog remaining.

        De-escalates one level (clamped at ``NORMAL``).  Returns the
        transition to journal, or ``None`` when already recovered.
        """
        self.recoveries += 1
        if not self.enabled:
            return None
        to = DegradeLevel(max(self.level - 1, DegradeLevel.NORMAL))
        return self._shift(window, to, "caught-up")
