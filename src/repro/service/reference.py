"""Frozen per-window digests: the service's bit-identity contract.

The batch layers pin whole-run digests
(``tests/reference/digests_<policy>.json``); the resident service's unit
of durability is the *window*, so it pins per-window digests instead:
for every stream of the reference fleet (the three cameras of
``examples/fleet_service.toml``) and every window index, the sha256 of
the prefix run's :class:`~repro.core.results.RunResult`.  Because a
window's compute is a pure prefix run, these digests are independent of
backend, worker count, pacing, crashes, and restarts -- which is exactly
what the kill/restart harness and CI's service chaos leg assert: every
*fresh* window a daemon journals, under any fault schedule, must carry
the frozen digest for its (stream, index).

``tests/reference/digests_service.json`` is the float64 freeze.
Regenerate only after an intentional numerics change::

    PYTHONPATH=src python -m repro.service.reference \
        --out tests/reference/digests_service.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.exec.shard import SystemCell, cell_key, run_cell
from repro.numeric import active_policy
from repro.reference import run_digest
from repro.service.pacing import window_count, window_span

__all__ = [
    "SERVICE_REFERENCE_WINDOW_S",
    "service_reference_cells",
    "service_reference_digests",
    "service_reference_path",
]

#: Window length the frozen service digests were generated with.
SERVICE_REFERENCE_WINDOW_S = 60.0


def service_reference_cells() -> list[SystemCell]:
    """The reference fleet: ``examples/fleet_service.toml``'s streams."""
    return [
        SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S1", 0, 120.0),
        SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 0, 120.0),
        SystemCell("DaCapo-Spatiotemporal", "resnet18_wrn50", "S4", 1, 120.0),
    ]


def service_reference_digests(
    cells=None, window_s: float = SERVICE_REFERENCE_WINDOW_S
) -> dict[str, str]:
    """``{"<stream key>|w<index>": digest}`` for every window, computed.

    Each entry is the digest of the window's prefix run -- the same value
    a healthy daemon journals for that window's ``fresh`` record.
    """
    policy = active_policy().name
    if cells is None:
        cells = service_reference_cells()
    entries: dict[str, str] = {}
    for cell in cells:
        key = cell_key(policy, cell)
        for index in range(window_count(cell.duration_s, window_s)):
            _, end = window_span(index, cell.duration_s, window_s)
            prefix = replace(cell, duration_s=float(end))
            entries[f"{key}|w{index}"] = run_digest(run_cell(prefix))
    return entries


def service_reference_path(root: Path | None = None) -> Path:
    """The checked-in service digest file (float64 only)."""
    if root is None:
        root = Path(__file__).resolve().parents[3] / "tests" / "reference"
    return root / "digests_service.json"


def main(argv: list[str] | None = None) -> int:
    """Regenerate the frozen service digest file."""
    parser = argparse.ArgumentParser(
        prog="repro.service.reference",
        description="regenerate frozen per-window service digests",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    policy = active_policy()
    out = args.out or service_reference_path()
    payload = {
        "policy": policy.name,
        "window_s": SERVICE_REFERENCE_WINDOW_S,
        "windows": service_reference_digests(),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(payload['windows'])} windows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
